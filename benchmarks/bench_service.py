"""Bench: the resident simulation daemon vs a cold ``repro run``.

The service's reason to exist is amortisation: a cold CLI invocation
pays interpreter start-up, the checker + instrumenter, the precise
baseline run and the approximate run for *every* query, while the
daemon pays all of that once at boot and answers subsequent queries
from warm workers and the run store.

This bench measures both sides honestly:

* **cold** — full ``python -m repro run`` subprocesses on the FFT
  sources (the exact workflow a script without the daemon would use),
  averaged over a few invocations;
* **warm** — per-request latency of ``ServiceClient.submit`` against a
  resident daemon whose store already holds the queried cells (the
  steady state of a campaign: every repeated cell is a hit).

The warm path is asserted **>= 5x** faster than the cold one (the
acceptance bar; in practice a store hit is sub-millisecond against a
cold run of seconds, so the observed ratio is orders of magnitude
larger).  Results are recorded in ``extra_info`` and as
``BENCH_service.json`` at the repository root.

Environment knobs:

* ``REPRO_BENCH_COLD_RUNS`` — cold subprocess invocations (default 2).
* ``REPRO_BENCH_WARM_RUNS`` — warm submits averaged (default 20).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

from repro.apps import app_by_name
from repro.experiments.harness import clear_caches
from repro.service import ServiceClient, ServiceConfig, SimulationServer

COLD_RUNS = int(os.environ.get("REPRO_BENCH_COLD_RUNS", "2"))
WARM_RUNS = int(os.environ.get("REPRO_BENCH_WARM_RUNS", "20"))

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
_RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_service.json")

FFT = app_by_name("fft")


def _cold_repro_run(seed: int) -> float:
    """One full cold CLI simulation; returns its wall-clock seconds."""
    sources = list(FFT.source_paths().values())
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    command = [
        sys.executable,
        "-m",
        "repro",
        "run",
        *sources,
        "--module",
        FFT.entry_module,
        "--entry",
        FFT.entry_function,
        "--config",
        "medium",
        "--seed",
        str(seed),
        "--quiet-output",
        "--args",
        *[str(arg) for arg in FFT.default_args],
    ]
    t0 = time.perf_counter()
    completed = subprocess.run(
        command, capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=600
    )
    elapsed = time.perf_counter() - t0
    assert completed.returncode == 0, completed.stderr
    return elapsed


def test_bench_service_warm_vs_cold_run(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    seeds = list(range(1, WARM_RUNS + 1))
    try:
        cold_seconds = sum(_cold_repro_run(seed) for seed in seeds[:COLD_RUNS])
        cold_mean = cold_seconds / COLD_RUNS

        clear_caches()
        config = ServiceConfig(
            port=0, workers=2, warm_apps=("fft",), cache_dir=cache_dir
        )
        with SimulationServer(config) as server:
            host, port = server.address
            with ServiceClient(host, port) as client:
                # Populate the store (and the daemon's warm state): the
                # batch misses fan across the worker pool.
                first_pass = client.submit_batch(
                    [
                        {"app": "fft", "config": "medium", "fault_seed": seed}
                        for seed in seeds
                    ]
                )
                assert all(not result.cached for result in first_pass)

                def warm_pass():
                    return [
                        client.submit("fft", "medium", fault_seed=seed)
                        for seed in seeds
                    ]

                t0 = time.perf_counter()
                warm_results = benchmark.pedantic(warm_pass, rounds=1, iterations=1)
                warm_seconds = time.perf_counter() - t0
                warm_mean = warm_seconds / len(seeds)
                hit_ratio = client.metrics()["derived"]["hit_ratio"]
    finally:
        clear_caches()
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Steady state: every repeated cell is a store hit, and the daemon's
    # answers agree with the first (executed) pass bit for bit.
    assert all(result.cached for result in warm_results)
    assert [r.qos for r in warm_results] == [r.qos for r in first_pass]
    assert hit_ratio > 0

    speedup = cold_mean / warm_mean if warm_mean else float("inf")
    results = {
        "cold_run_seconds_mean": round(cold_mean, 4),
        "cold_runs": COLD_RUNS,
        "warm_submit_seconds_mean": round(warm_mean, 6),
        "warm_submits": len(seeds),
        "speedup": round(speedup, 1),
        "hit_ratio": hit_ratio,
        "answers_identical": True,
    }
    benchmark.extra_info.update(results)
    with open(_RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\nservice warm submit ({len(seeds)} hits): {warm_mean * 1000:.2f} ms/query, "
        f"cold `repro run`: {cold_mean:.2f}s -> {speedup:.0f}x"
    )

    assert speedup >= 5.0, (
        f"warm daemon submits should be >= 5x faster than cold `repro run`, "
        f"got {speedup:.2f}x ({cold_mean:.3f}s -> {warm_mean:.3f}s)"
    )
