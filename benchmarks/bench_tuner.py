"""Bench: the online QoS autotuner vs uniform Table-2 levels.

Two claims back the budget-based submit redesign, measured honestly:

* **frontier quality** — converging a controller under a QoS budget
  finds a heterogeneous per-mechanism configuration whose modeled
  energy is at or below the cheapest *uniform* Table-2 level that
  also meets the budget (the best a pre-v2 client could pick), while
  the measured mean QoS stays within budget;
* **amortisation** — the controller's probes are ordinary run-store
  cells, so budget submits against a daemon whose store is warm are
  answered at store-hit speed: a whole convergence replays in
  milliseconds per observation instead of a simulation each.

Results land in ``extra_info`` and ``BENCH_tuner.json`` at the
repository root.

Environment knobs:

* ``REPRO_BENCH_TUNER_BUDGET`` — the QoS error budget (default 0.05).
"""

import json
import os
import shutil
import tempfile
import time

from repro import store as run_store
from repro.apps import app_by_name
from repro.energy.model import SERVER, estimate_energy
from repro.experiments.harness import clear_caches, mean_qos
from repro.hardware.config import AGGRESSIVE, MEDIUM, MILD
from repro.service import ServiceClient, ServiceConfig, SimulationServer
from repro.tuner import MAX_OBSERVATIONS, TRIAL_SAMPLES, OnlineTuner, converge
from repro.tuner.search import compose_config, levels_energy

BUDGET = float(os.environ.get("REPRO_BENCH_TUNER_BUDGET", "0.05"))

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
_RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_tuner.json")

FFT = app_by_name("fft")

# Most aggressive first: the first level whose measured QoS meets the
# budget is the cheapest uniform choice a fixed-config client has.
UNIFORM_LADDER = (("aggressive", AGGRESSIVE), ("medium", MEDIUM), ("mild", MILD))


def _cheapest_uniform(stats, budget):
    """The lowest-energy uniform Table-2 level meeting ``budget``."""
    for name, config in UNIFORM_LADDER:
        if mean_qos(FFT, config, runs=TRIAL_SAMPLES) <= budget:
            return name, estimate_energy(stats, config, SERVER).total
    return "baseline", 1.0


def test_bench_tuner_budget_vs_uniform(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-tuner-")
    run_store.configure(cache_dir)
    try:
        # -- frontier quality: one cold convergence under the budget.
        t0 = time.perf_counter()
        tuner = converge(OnlineTuner(FFT, BUDGET))
        cold_seconds = time.perf_counter() - t0
        state = tuner.state
        assert state.converged and state.observations <= MAX_OBSERVATIONS

        stats = tuner.baseline_stats()
        levels = state.levels_dict()
        tuned_energy = levels_energy(stats, levels)
        measured = mean_qos(
            FFT, compose_config(levels, name="tuned:FFT"), runs=TRIAL_SAMPLES
        )
        uniform_name, uniform_energy = _cheapest_uniform(stats, BUDGET)

        # -- amortisation: a daemon on the now-warm store answers the
        # same convergence from store hits.
        clear_caches()
        config = ServiceConfig(
            port=0, workers=2, warm_apps=("fft",), cache_dir=cache_dir
        )
        with SimulationServer(config) as server:
            host, port = server.address
            with ServiceClient(host, port) as client:

                def warm_pass():
                    return [
                        client.submit("fft", qos_budget=BUDGET)
                        for _ in range(state.observations)
                    ]

                t0 = time.perf_counter()
                answers = benchmark.pedantic(warm_pass, rounds=1, iterations=1)
                warm_seconds = time.perf_counter() - t0
    finally:
        clear_caches()
        run_store.reset_active_store()
        shutil.rmtree(cache_dir, ignore_errors=True)

    # The daemon's controller replays the offline convergence
    # bit-identically: same budget, same probe schedule, same state.
    assert answers[-1].tuner["state_digest"] == state.digest

    cold_per_obs = cold_seconds / state.observations
    warm_per_obs = warm_seconds / state.observations
    speedup = cold_per_obs / warm_per_obs if warm_per_obs else float("inf")
    savings = (uniform_energy - tuned_energy) / uniform_energy * 100.0

    results = {
        "app": FFT.name,
        "qos_budget": BUDGET,
        "levels": levels,
        "tuned_energy": round(tuned_energy, 6),
        "uniform_level": uniform_name,
        "uniform_energy": round(uniform_energy, 6),
        "energy_savings_vs_uniform_pct": round(savings, 2),
        "measured_qos": measured,
        "within_budget": measured <= BUDGET,
        "observations": state.observations,
        "explored": state.explored,
        "pruned_static": state.pruned,
        "cold_converge_seconds": round(cold_seconds, 3),
        "warm_submit_seconds_mean": round(warm_per_obs, 6),
        "speedup": round(speedup, 1),
    }
    benchmark.extra_info.update(results)
    with open(_RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\ntuner budget {BUDGET}: energy {tuned_energy:.4f} vs uniform "
        f"{uniform_name} {uniform_energy:.4f} ({savings:+.1f}%), qos "
        f"{measured:.4f}, {state.observations} obs; warm submit "
        f"{warm_per_obs * 1000:.1f} ms vs cold {cold_per_obs * 1000:.0f} ms "
        f"-> {speedup:.0f}x"
    )

    assert measured <= BUDGET + 1e-12, "tuned config violates its budget"
    assert tuned_energy <= uniform_energy + 1e-9, (
        "tuned config should not cost more than the cheapest uniform level"
    )
    assert state.pruned > 0, "static bounds pruned nothing"
    assert speedup >= 3.0, (
        f"warm budget submits should amortise the convergence, got "
        f"{speedup:.2f}x ({cold_per_obs:.3f}s -> {warm_per_obs:.3f}s)"
    )
