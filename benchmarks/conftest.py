"""Shared benchmark configuration.

The benchmark suite regenerates every table and figure of the paper.
Heavy drivers run once per benchmark (``pedantic`` with one round) —
they are measurements of the reproduction pipeline, not microbenchmarks.
Run with ``pytest benchmarks/ --benchmark-only -s`` to also see the
regenerated tables.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavy driver with a single timed invocation."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
