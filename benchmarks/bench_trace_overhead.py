"""Bench: observability overhead — disabled tracing must stay <10%.

Two measurements back OBSERVABILITY.md's overhead table:

* **Micro** — the hot SRAM access path with ``tracer=None`` against a
  replica of the same loop with the tracer plumbing deleted (the
  pre-observability code).  The only delta is the dormant ``is not
  None`` branch on the faulted sub-path.  Interleaved min-of-N timing
  of two Python classes has a noise floor of several percent on a busy
  machine (two *identical* classes show +-7% run to run), so the budget
  is asserted on the best of up to three independent estimator passes:
  noise cannot fail all three, while a real hot-path regression (work
  added before the ``flips == 0`` early-out) inflates every pass.
* **Macro** — a full MonteCarlo run untraced vs traced into a
  :class:`NullSink` vs traced into the default memory ring, recorded in
  ``extra_info`` for the bench trajectory (enabled tracing is allowed
  to cost real time; only *disabled* tracing has a budget).

Environment knobs:

* ``REPRO_BENCH_TRACE_ACCESSES`` — micro loop length (default 50000).
* ``REPRO_BENCH_TRACE_REPEATS`` — min-of-N rounds per pass (default 40).
"""

import gc
import os
import time

from repro.apps import app_by_name
from repro.experiments.harness import RunKey, run_app
from repro.hardware import AGGRESSIVE, bits
from repro.hardware.config import HardwareConfig
from repro.hardware.rng import FaultRandom
from repro.hardware.sram import ApproxSRAM
from repro.observability import MemorySink, NullSink, Tracer

ACCESSES = int(os.environ.get("REPRO_BENCH_TRACE_ACCESSES", "50000"))
REPEATS = int(os.environ.get("REPRO_BENCH_TRACE_REPEATS", "40"))
OVERHEAD_BUDGET = 0.10
ESTIMATOR_PASSES = 3


class _PreTraceSRAM:
    """The SRAM unit exactly as it was before the observability layer.

    Kept in the benchmark (not the package) so the micro comparison
    always measures today's unit against the branch-free original.
    """

    def __init__(self, config: HardwareConfig, rng: FaultRandom) -> None:
        self._config = config
        self._rng = rng
        self.approx_reads = 0
        self.approx_writes = 0
        self.precise_reads = 0
        self.precise_writes = 0
        self.read_upsets = 0
        self.write_failures = 0
        self.approx_byte_accesses = 0
        self.precise_byte_accesses = 0

    def read(self, value, kind, approximate):
        width = bits.bits_for_kind(kind)
        if not approximate:
            self.precise_reads += 1
            self.precise_byte_accesses += width // 8 or 1
            return value
        self.approx_reads += 1
        self.approx_byte_accesses += width // 8 or 1
        return self._corrupt(value, kind, width, self._config.sram_read_upset, is_read=True)

    def _corrupt(self, value, kind, width, probability, is_read):
        if probability <= 0.0:
            return value
        flips = self._rng.binomial_hits(width, probability)
        if flips == 0:
            return value
        if is_read:
            self.read_upsets += flips
        else:
            self.write_failures += flips
        pattern = bits.value_to_bits(value, kind)
        for _ in range(flips):
            pattern ^= 1 << self._rng.bit_index(width)
        return bits.bits_to_value(pattern, kind)


def _drive(unit, accesses):
    read = unit.read
    value = 1.234567
    for _ in range(accesses):
        value = read(value, "float", True)
        if value != value:  # keep the value finite across corruptions
            value = 1.234567
    return value


def _interleaved_min_seconds(factories, accesses, repeats):
    """min-of-N per factory, rounds interleaved so drift hits both.

    GC is paused during the timed regions: a collection landing in one
    side's loop but not the other's dwarfs the branch being measured.
    """
    best = [float("inf")] * len(factories)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for index, make_unit in enumerate(factories):
                unit = make_unit()
                t0 = time.perf_counter()
                _drive(unit, accesses)
                best[index] = min(best[index], time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def _one_estimator_pass():
    baseline, current = _interleaved_min_seconds(
        [
            lambda: _PreTraceSRAM(AGGRESSIVE, FaultRandom(1)),
            lambda: ApproxSRAM(AGGRESSIVE, FaultRandom(1), tracer=None),
        ],
        ACCESSES,
        REPEATS,
    )
    return current / baseline - 1.0


def test_bench_disabled_tracing_branch_cost(benchmark):
    """tracer=None vs the pre-trace replica on the raw SRAM hot loop."""

    def best_of_passes():
        overheads = []
        for _ in range(ESTIMATOR_PASSES):
            overheads.append(_one_estimator_pass())
            if overheads[-1] < OVERHEAD_BUDGET:
                break  # budget demonstrated; no need to keep measuring
        return overheads

    overheads = benchmark.pedantic(best_of_passes, rounds=1, iterations=1)
    best = min(overheads)
    benchmark.extra_info.update(
        accesses=ACCESSES,
        repeats=REPEATS,
        passes=len(overheads),
        overhead_pcts=[round(100.0 * o, 2) for o in overheads],
        best_overhead_pct=round(100.0 * best, 2),
    )
    print(
        f"\nSRAM hot loop x{ACCESSES}, min-of-{REPEATS}: overhead per pass "
        + ", ".join(f"{100.0 * o:+.2f}%" for o in overheads)
        + f" -> best {100.0 * best:+.2f}%"
    )
    assert best < OVERHEAD_BUDGET, (
        f"disabled tracing costs {100.0 * best:.1f}% on the SRAM hot loop "
        f"in the best of {len(overheads)} passes "
        f"(budget {100.0 * OVERHEAD_BUDGET:.0f}%)"
    )


def test_bench_trace_macro_overhead(benchmark):
    """Full-app wall-clock: untraced vs NullSink vs the memory ring."""
    spec = app_by_name("montecarlo")

    def timed(tracer_factory):
        best = float("inf")
        for _ in range(3):
            tracer = tracer_factory()
            t0 = time.perf_counter()
            result = run_app(
                RunKey(spec=spec, config=AGGRESSIVE, fault_seed=1, workload_seed=0),
                tracer=tracer,
            )
            best = min(best, time.perf_counter() - t0)
        return best, result

    untraced, plain = timed(lambda: None)
    null_sink, _ = timed(lambda: Tracer(NullSink()))
    memory, traced = benchmark.pedantic(
        timed, args=(lambda: Tracer(MemorySink()),), rounds=1, iterations=1
    )

    # Tracing observes without perturbing: identical outputs and stats.
    assert traced.output == plain.output
    assert traced.stats == plain.stats

    benchmark.extra_info.update(
        untraced_seconds=round(untraced, 3),
        null_sink_seconds=round(null_sink, 3),
        memory_sink_seconds=round(memory, 3),
        null_sink_pct=round(100.0 * (null_sink / untraced - 1.0), 1),
        memory_sink_pct=round(100.0 * (memory / untraced - 1.0), 1),
    )
    print(
        f"\nMonteCarlo @ Aggressive: untraced {untraced:.3f}s, "
        f"NullSink {null_sink:.3f}s "
        f"({100.0 * (null_sink / untraced - 1.0):+.1f}%), "
        f"MemorySink {memory:.3f}s "
        f"({100.0 * (memory / untraced - 1.0):+.1f}%)"
    )
