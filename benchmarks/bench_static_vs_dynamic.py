"""Bench: the motivation experiment — static checking vs dynamic checks.

Shape asserted (paper introduction): dynamic isolation checks "end up
consuming energy" — under an explicit monitor cost model (1 tag bit per
word, one precise tag-check micro-op per operation) the penalty exceeds
the Medium-level approximation savings for every application, so only
the static approach nets energy.
"""

from repro.experiments.static_vs_dynamic import (
    format_static_vs_dynamic,
    static_vs_dynamic_rows,
)
from repro.hardware.config import MEDIUM


def test_bench_static_vs_dynamic(benchmark):
    rows = benchmark.pedantic(static_vs_dynamic_rows, args=(MEDIUM,), rounds=1, iterations=1)
    print("\n" + format_static_vs_dynamic(rows))

    for row in rows:
        assert row["static"] < 1.0, row["app"]
        assert row["penalty"] > 0.0, row["app"]
        assert row["dynamic"] > row["static"], row["app"]
        # The monitor's cost outweighs what approximation saved.
        assert row["penalty"] > (1.0 - row["static"]), row["app"]
