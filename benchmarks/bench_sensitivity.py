"""Bench: Section 6.2 sensitivity studies.

Paper shapes asserted:

* DRAM decay errors have nearly negligible QoS impact in isolation;
* functional-unit voltage errors (timing) have the greatest impact;
* SRAM write failures hurt more than read upsets;
* the random-value FU error mode causes more QoS loss than single bit
  flips or last-value errors (paper: ~40% vs ~25%).
"""

from repro.experiments.sensitivity import (
    error_mode_rows,
    format_error_modes,
    format_strategy_isolation,
    strategy_isolation_rows,
)

RUNS = 4


def _mean(rows, key):
    return sum(row[key] for row in rows) / len(rows)


def test_bench_strategy_isolation(benchmark):
    rows = benchmark.pedantic(
        strategy_isolation_rows, args=(RUNS,), rounds=1, iterations=1
    )
    print("\n" + format_strategy_isolation(rows, RUNS))

    dram = _mean(rows, "dram")
    sram_read = _mean(rows, "sram_read")
    sram_write = _mean(rows, "sram_write")
    float_width = _mean(rows, "float_width")
    timing = _mean(rows, "timing")

    assert dram < 0.02  # "nearly negligible impact on application output"
    assert sram_write >= sram_read  # writes more detrimental than reads
    assert float_width < 0.12  # "at most 12% QoS loss"
    # "Functional unit voltage reduction had the greatest impact."
    assert timing == max(dram, sram_read, sram_write, float_width, timing)


def test_bench_error_modes(benchmark):
    rows = benchmark.pedantic(error_mode_rows, args=(RUNS,), rounds=1, iterations=1)
    print("\n" + format_error_modes(rows, RUNS))

    random_mode = _mean(rows, "random")
    bitflip = _mean(rows, "bitflip")
    lastvalue = _mean(rows, "lastvalue")

    # Random-value errors are the most damaging mode on average.
    assert random_mode > bitflip
    assert random_mode > lastvalue
