"""Bench: regenerate Figure 5 (output error at three approximation levels).

The paper averages 20 runs per bar; the bench uses 5 fault seeds to stay
fast (run ``python -m repro.experiments.figure5`` for the full version).

Paper shapes asserted:

* most applications show negligible error under Mild;
* FFT and SOR lose significant fidelity by Medium, while MonteCarlo,
  SparseMatMult, ImageJ and Raytracer stay robust under Medium — the
  exact split the paper reports;
* error grows with aggressiveness.
"""

from repro.experiments.figure5 import figure5_rows, format_figure5

RUNS = 5


def test_bench_figure5(benchmark):
    rows = benchmark.pedantic(figure5_rows, args=(RUNS,), rounds=1, iterations=1)
    print("\n" + format_figure5(rows, RUNS))

    by_app = {row["app"]: row for row in rows}

    # Mild: negligible error for most applications.
    mild_small = [r for r in rows if r["Mild"] <= 0.05]
    assert len(mild_small) >= 7

    # The paper's Medium split.
    assert by_app["SOR"]["Medium"] > 0.2
    for robust in ("MonteCarlo", "SparseMatMult", "ImageJ", "Raytracer"):
        assert by_app[robust]["Medium"] <= 0.10, robust

    # Error does not decrease with aggressiveness (allowing metric noise).
    for row in rows:
        assert row["Mild"] <= row["Medium"] + 0.05, row["app"]
        assert row["Medium"] <= row["Aggressive"] + 0.05, row["app"]
        for level in ("Mild", "Medium", "Aggressive"):
            assert 0.0 <= row[level] <= 1.0
