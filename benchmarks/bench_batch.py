"""Bench: serial vs batched fault injection on a cold seed campaign.

Runs a cold QoS campaign (lockstep apps x ``REPRO_BENCH_BATCH`` fault
seeds at Mild — the Figure 3/5 workload shape: thousands of
near-identical simulations differing only in fault seed) once through
the serial path and once through the batched fault-injection engine
(:func:`repro.experiments.harness.run_keys_batch`), which sweeps a whole
seed block in one instrumented execution.

Hygiene, mirroring ``bench_parallel.py``: before any timing the two
paths are asserted QoS-identical on a probe block, and after timing the
full campaigns are asserted bit-identical float for float — the batch
engine's determinism guarantee (pinned in depth by
``tests/test_batch_differential.py``), asserted rather than eyeballed.

The acceptance bar asserts >= 10x at a batch width >= 32 — only with
the numpy engine; the pure-Python fallback lanes are for correctness
and portability, not speed, so without numpy the timings are recorded
but the bar is not enforced.  Results land in the benchmark's
``extra_info`` and as ``BENCH_batch.json`` at the repository root,
including lanes-per-second for both paths.

Environment knobs (same family as ``bench_parallel.py``):

* ``REPRO_BENCH_BATCH`` — fault seeds per block (default 64; the
  acceptance bar applies at >= 32).
* ``REPRO_BENCH_FULL``  — set to 1 to add SOR (a longer lockstep app).
"""

import json
import os
import struct
import time

from repro.apps import app_by_name
from repro.experiments.harness import clear_caches, precise_output, run_key, run_keys_batch
from repro.experiments.runkey import RunKey
from repro.hardware.config import MILD
from repro.hardware.rng import BatchFaultRandom

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
BATCH = int(os.environ.get("REPRO_BENCH_BATCH", "64"))
# Apps whose control flow stays lane-uniform under Mild faults, so the
# batched execution actually sweeps all lanes at once.  Apps that branch
# on approximate data (e.g. MonteCarlo) diverge and fall back to serial
# reruns — correct, but not what a throughput benchmark should measure.
APP_NAMES = ("fft", "sparsematmult", "sor") if FULL else ("fft", "sparsematmult")

_RESULTS_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_batch.json")
)


def _campaign_keys(spec):
    return [
        RunKey(spec=spec, config=MILD, fault_seed=seed, workload_seed=0)
        for seed in range(1, BATCH + 1)
    ]


def _qos_list(spec, results):
    reference = precise_output(spec, 0)
    return [spec.qos(reference, result.output) for result in results]


def _bits(values):
    return [struct.pack("<d", value) for value in values]


def test_bench_batch_seed_campaign(benchmark):
    specs = [app_by_name(name) for name in APP_NAMES]
    engine = BatchFaultRandom([0, 1]).engine
    clear_caches()

    # Hygiene first: prove serial and batch QoS identical on a probe
    # block (this also warms the compiled-program caches, so the timed
    # passes below compare simulation cost, not compilation).
    for spec in specs:
        probe = _campaign_keys(spec)[:4]
        serial_probe = _qos_list(spec, [run_key(key) for key in probe])
        batch_probe = _qos_list(spec, run_keys_batch(probe))
        assert _bits(serial_probe) == _bits(batch_probe), spec.name

    t0 = time.perf_counter()
    serial_qos = {
        spec.name: _qos_list(spec, [run_key(key) for key in _campaign_keys(spec)])
        for spec in specs
    }
    serial_seconds = time.perf_counter() - t0

    def batch_pass():
        return {
            spec.name: _qos_list(spec, run_keys_batch(_campaign_keys(spec)))
            for spec in specs
        }

    t0 = time.perf_counter()
    batch_qos = benchmark.pedantic(batch_pass, rounds=1, iterations=1)
    batch_seconds = time.perf_counter() - t0

    # Full-campaign determinism: every per-seed float is bit-identical.
    for spec in specs:
        assert _bits(serial_qos[spec.name]) == _bits(batch_qos[spec.name]), spec.name

    lanes = len(specs) * BATCH
    speedup = serial_seconds / batch_seconds if batch_seconds else float("inf")
    results = {
        "engine": engine,
        "batch": BATCH,
        "apps": list(APP_NAMES),
        "lanes": lanes,
        "serial_seconds": round(serial_seconds, 3),
        "batch_seconds": round(batch_seconds, 3),
        "serial_lanes_per_second": round(lanes / serial_seconds, 1),
        "batch_lanes_per_second": round(lanes / batch_seconds, 1),
        "speedup": round(speedup, 2),
        "qos_identical": True,
    }
    benchmark.extra_info.update(results)
    with open(_RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\nSeed campaign ({len(specs)} apps x {BATCH} seeds, {engine} engine): "
        f"serial {serial_seconds:.2f}s ({lanes / serial_seconds:.1f} lanes/s), "
        f"batch {batch_seconds:.2f}s ({lanes / batch_seconds:.1f} lanes/s) "
        f"-> {speedup:.1f}x"
    )

    if engine == "numpy" and BATCH >= 32:
        assert speedup >= 10.0, (
            f"expected >= 10x from the batched engine at batch={BATCH}, "
            f"got {speedup:.2f}x ({serial_seconds:.2f}s -> {batch_seconds:.2f}s)"
        )
