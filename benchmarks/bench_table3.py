"""Bench: regenerate Table 3 (applications and annotation density).

Paper shapes asserted:

* only a fraction of declarations needs annotation (well under half on
  the paper's large apps; our ports are smaller and denser, so we allow
  up to 80% but require strictly partial annotation);
* endorsements are rare — except for ZXing, whose pixel-driven control
  flow makes it the outlier (247 in the paper; the most in ours too);
* FP proportion separates the FP-heavy kernels from ZXing/ImageJ
  (integer-dominated, paper: 1.7% / 0.0%).
"""

from repro.experiments.table3 import format_table3, table3_rows


def test_bench_table3(benchmark, once=None):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    print("\n" + format_table3(rows))

    by_app = {row["app"]: row for row in rows}

    # Partial annotation everywhere.
    for row in rows:
        assert 0.0 < row["annotated_fraction"] < 0.8, row["app"]
        assert row["declarations"] > 0

    # ZXing is an endorsement outlier — its "control flow frequently
    # depends on whether a particular pixel is black" (the paper's
    # explanation for its 247 static endorsements).  Dynamically it
    # endorses far above the suite median; statically it has the most
    # sites among the integer-dominated apps.
    dynamic = sorted(row["dynamic_endorsements"] for row in rows)
    median = dynamic[len(dynamic) // 2]
    assert by_app["ZXing"]["dynamic_endorsements"] > 5 * median
    assert by_app["ZXing"]["endorsements"] > by_app["ImageJ"]["endorsements"]

    # Integer-dominated apps: FP below 10%; FP-heavy apps above 20%.
    assert by_app["ZXing"]["fp_proportion"] < 0.10
    assert by_app["ImageJ"]["fp_proportion"] < 0.10
    for app in ("FFT", "SOR", "MonteCarlo", "Raytracer", "jMonkeyEngine"):
        assert by_app[app]["fp_proportion"] > 0.20, app

    # ZXing is by far the largest port, as in the paper.
    assert by_app["ZXing"]["loc"] == max(row["loc"] for row in rows)
