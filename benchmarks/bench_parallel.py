"""Bench: serial vs parallel wall-clock on the Figure 5 grid.

Runs the Figure 5 protocol (app x {Mild, Medium, Aggressive} x fault
seeds) once through the serial path and once through the process-pool
executor, records both wall-clocks in the benchmark's ``extra_info``
(the bench trajectory's first parallelism datapoints), and asserts the
two row sets are *bit-identical* — the executor's determinism guarantee,
asserted rather than eyeballed.

The speedup assertion scales with the machine: >= 2x at ``jobs=4`` needs
at least four usable cores; on two cores a weaker bound is asserted; on
one core the timings are recorded only (a process pool cannot beat the
serial path without parallel hardware).

Environment knobs:

* ``REPRO_BENCH_RUNS``  — fault seeds per bar (default 3; paper: 20).
* ``REPRO_BENCH_JOBS``  — worker count for the parallel path (default 4).
* ``REPRO_BENCH_FULL``  — set to 1 to sweep all nine apps at 20 seeds,
  i.e. the complete Figure 5 protocol.
"""

import os
import time

from repro.apps import ALL_APPS, app_by_name
from repro.experiments.figure5 import DEFAULT_RUNS, figure5_grid

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
RUNS = int(os.environ.get("REPRO_BENCH_RUNS", str(DEFAULT_RUNS if FULL else 3)))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
APPS = (
    ALL_APPS
    if FULL
    else [app_by_name("fft"), app_by_name("sor"), app_by_name("montecarlo")]
)


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_bench_parallel_figure5_grid(benchmark):
    t0 = time.perf_counter()
    serial_rows = figure5_grid(APPS, RUNS, jobs=None)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_rows = benchmark.pedantic(
        figure5_grid, args=(APPS, RUNS, JOBS), rounds=1, iterations=1
    )
    parallel_seconds = time.perf_counter() - t0

    # Determinism: the parallel fan-out reproduces the serial floats
    # exactly, bar by bar.
    assert parallel_rows == serial_rows

    cores = _usable_cores()
    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    benchmark.extra_info.update(
        serial_seconds=round(serial_seconds, 3),
        parallel_seconds=round(parallel_seconds, 3),
        speedup=round(speedup, 3),
        jobs=JOBS,
        runs=RUNS,
        apps=len(APPS),
        cores=cores,
    )
    print(
        f"\nFigure 5 grid ({len(APPS)} apps x 3 levels x {RUNS} seeds): "
        f"serial {serial_seconds:.2f}s, jobs={JOBS} {parallel_seconds:.2f}s "
        f"-> {speedup:.2f}x on {cores} core(s)"
    )

    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at jobs={JOBS} on {cores} cores, "
            f"got {speedup:.2f}x"
        )
    elif cores >= 2:
        assert speedup >= 1.2, (
            f"expected >= 1.2x speedup at jobs={JOBS} on {cores} cores, "
            f"got {speedup:.2f}x"
        )
