"""Bench: a fleet of two daemons vs one daemon on a cold campaign.

The fabric's reason to exist is horizontal scale: a cold campaign
(every cell a store miss) is embarrassingly parallel across run keys,
so sharding it over two nodes should approach twice one node's
throughput — the coordinator adds routing, not work.

Both sides are measured honestly and identically:

* **single** — one ``repro serve`` daemon with ``WORKERS`` warm
  workers and a fresh store, answering the campaign as one ``batch``;
* **fleet** — two such daemons (fresh stores) behind a
  :class:`~repro.fabric.FabricCoordinator`, answering the *same*
  campaign through the same :class:`~repro.service.ServiceClient`
  code path.

The headline number is cold-campaign **throughput** (items/second).
Bit-identity of the two answer sets is asserted unconditionally; the
speedup bar scales with the machine, following the
``bench_parallel.py`` precedent — on a single core there is no
parallelism to win (the workers time-slice), so only the full
multi-core environments enforce the ``>= 1.7x`` acceptance bar.
Results land in ``extra_info`` and ``BENCH_fabric.json``.

Environment knobs:

* ``REPRO_BENCH_FABRIC_ITEMS`` — campaign size (default 16).
* ``REPRO_BENCH_FABRIC_WORKERS`` — workers per daemon (default 2).
"""

import json
import os
import shutil
import tempfile
import time

from repro.experiments.harness import clear_caches
from repro.fabric import FabricConfig, FabricCoordinator
from repro.service import ServiceClient, ServiceConfig, SimulationServer

ITEMS = int(os.environ.get("REPRO_BENCH_FABRIC_ITEMS", "16"))
WORKERS = int(os.environ.get("REPRO_BENCH_FABRIC_WORKERS", "2"))

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
_RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_fabric.json")


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _campaign():
    return [
        {"app": "fft", "config": "medium", "fault_seed": seed}
        for seed in range(1, ITEMS + 1)
    ]


def _node(root: str, index: int) -> SimulationServer:
    server = SimulationServer(
        ServiceConfig(
            port=0,
            workers=WORKERS,
            warm_apps=("fft",),
            cache_dir=os.path.join(root, f"node{index}"),
            default_deadline_ms=0,
        )
    )
    server.start()
    return server


def _timed_batch(host: str, port: int):
    with ServiceClient(host, port, timeout=600.0) as client:
        t0 = time.perf_counter()
        results = client.submit_batch(_campaign())
        elapsed = time.perf_counter() - t0
    assert all(not result.cached for result in results), "campaign was not cold"
    return [result.qos for result in results], elapsed


def test_bench_fabric_fleet_vs_single_node(benchmark):
    root = tempfile.mkdtemp(prefix="repro-bench-fabric-")
    try:
        # Side 1 — one daemon, cold store.
        clear_caches()
        single = _node(root, 0)
        try:
            single_qos, single_seconds = _timed_batch(*single.address)
        finally:
            single.stop()

        # Side 2 — two fresh daemons behind a coordinator.
        clear_caches()
        nodes = [_node(root, index) for index in (1, 2)]
        coordinator = FabricCoordinator(
            FabricConfig(
                nodes=tuple("%s:%d" % node.address for node in nodes),
                port=0,
                hedge_ms=None,
            )
        )
        coordinator.start()
        try:

            def fleet_pass():
                return _timed_batch(*coordinator.address)

            fleet_qos, fleet_seconds = benchmark.pedantic(
                fleet_pass, rounds=1, iterations=1
            )
        finally:
            coordinator.stop()
            for node in nodes:
                node.stop()
    finally:
        clear_caches()
        shutil.rmtree(root, ignore_errors=True)

    # The fleet reproduces the single node (and thus the serial
    # harness, per tests/test_fabric_fleet.py) bit for bit.
    assert fleet_qos == single_qos

    cores = _usable_cores()
    speedup = single_seconds / fleet_seconds if fleet_seconds else float("inf")
    results = {
        "items": ITEMS,
        "workers_per_node": WORKERS,
        "cores": cores,
        "single_node_seconds": round(single_seconds, 3),
        "fleet_of_2_seconds": round(fleet_seconds, 3),
        "single_node_items_per_s": round(ITEMS / single_seconds, 3),
        "fleet_items_per_s": round(ITEMS / fleet_seconds, 3),
        "speedup": round(speedup, 3),
        "answers_identical": True,
    }
    benchmark.extra_info.update(results)
    with open(_RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\ncold campaign ({ITEMS} items): single node {single_seconds:.2f}s, "
        f"fleet of 2 {fleet_seconds:.2f}s -> {speedup:.2f}x on {cores} core(s)"
    )

    if cores >= 4:
        assert speedup >= 1.7, (
            f"a fleet of 2 should answer a cold campaign >= 1.7x faster than "
            f"one node on {cores} cores, got {speedup:.2f}x"
        )
    elif cores >= 2:
        assert speedup >= 1.1, (
            f"expected >= 1.1x cold-campaign speedup on {cores} cores, "
            f"got {speedup:.2f}x"
        )
