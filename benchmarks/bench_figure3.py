"""Bench: regenerate Figure 3 (fraction of approximate storage/compute).

Paper shapes asserted:

* many applications have DRAM approximation of 80% or higher (large
  approximate arrays);
* MonteCarlo and jMonkeyEngine have very little approximate DRAM — they
  keep their principal data in locals (the paper calls both out);
* FP-centric applications approximate nearly all FP operations;
* integer approximation is rare — ImageJ is the notable exception
  (approximate pixel coordinates), and no app approximates most of its
  integer work (induction variables stay precise).
"""

from repro.experiments.figure3 import figure3_rows, format_figure3


def test_bench_figure3(benchmark):
    rows = benchmark.pedantic(figure3_rows, rounds=1, iterations=1)
    print("\n" + format_figure3(rows))

    by_app = {row["app"]: row for row in rows}

    high_dram = [r for r in rows if r["dram_approx_fraction"] >= 0.8]
    assert len(high_dram) >= 4

    assert by_app["MonteCarlo"]["dram_approx_fraction"] < 0.05
    assert by_app["jMonkeyEngine"]["dram_approx_fraction"] < 0.05

    for app in ("FFT", "SOR", "LU", "SparseMatMult", "Raytracer"):
        assert by_app[app]["fp_approx_fraction"] > 0.7, app

    assert by_app["ImageJ"]["int_approx_fraction"] > 0.05
    for row in rows:
        assert row["int_approx_fraction"] < 0.5, row["app"]
        for key in (
            "dram_approx_fraction",
            "sram_approx_fraction",
            "int_approx_fraction",
            "fp_approx_fraction",
        ):
            assert 0.0 <= row[key] <= 1.0
