"""Bench: toolchain microbenchmarks (checker, instrumenter, simulator).

Not a paper table — these time the reproduction's own pipeline so
regressions in the checker or the instrumented-execution overhead are
visible.  The simulator-overhead benchmark quantifies the cost of the
AST-instrumentation design (DESIGN.md substitution 2).
"""

import textwrap

from repro.apps import app_by_name, load_sources
from repro.core.checker import check_modules
from repro.core.pipeline import compile_program
from repro.hardware.config import BASELINE, MEDIUM
from repro.runtime import Simulator

FFT_SOURCES = load_sources(app_by_name("fft"))

SMALL_PROGRAM = {
    "m": textwrap.dedent(
        """
        from repro import Approx, endorse

        def kernel(n: int) -> float:
            data: list[Approx[float]] = [0.0] * n
            for i in range(n):
                data[i] = 1.0 * i
            total: Approx[float] = 0.0
            for i in range(n):
                total = total + data[i]
            return endorse(total)
        """
    )
}


def test_bench_checker(benchmark):
    result = benchmark(check_modules, FFT_SOURCES)
    assert result.ok


def test_bench_full_compile(benchmark):
    program = benchmark(compile_program, SMALL_PROGRAM)
    assert program.namespaces


def test_bench_simulated_execution_baseline(benchmark):
    program = compile_program(SMALL_PROGRAM)

    def run():
        with Simulator(BASELINE, seed=0):
            return program.call("m", "kernel", 500)

    result = benchmark(run)
    assert result == sum(float(i) for i in range(500))


def test_bench_simulated_execution_medium(benchmark):
    program = compile_program(SMALL_PROGRAM)

    def run():
        with Simulator(MEDIUM, seed=0):
            return program.call("m", "kernel", 500)

    result = benchmark(run)
    assert result is not None


def test_bench_plain_python_reference(benchmark):
    """The un-instrumented reference point for the overhead ratio."""
    namespace = {}
    exec(SMALL_PROGRAM["m"], namespace)

    result = benchmark(namespace["kernel"], 500)
    assert result == sum(float(i) for i in range(500))
