"""Bench: cold vs warm campaign wall-clock against the run store.

Runs the Figure 5 protocol twice against the same persistent run store
(:mod:`repro.store`): once cold (empty store, every cell simulated and
written through) and once warm (all in-memory caches dropped, every
cell served from disk).  The two row sets are asserted *bit-identical*
— the store's round-trip fidelity guarantee, asserted rather than
eyeballed — and the warm pass is asserted >= 5x faster than the cold
one (the acceptance bar for the resumable-campaign layer; in practice
a warm pass does zero simulation and zero compilation, so the observed
ratio is orders of magnitude larger).

Results are recorded both in the benchmark's ``extra_info`` and as
``BENCH_store.json`` at the repository root.

Environment knobs (same family as ``bench_parallel.py``):

* ``REPRO_BENCH_RUNS`` — fault seeds per bar (default 2; paper: 20).
* ``REPRO_BENCH_JOBS`` — worker count; default 0 = serial, which keeps
  the cold/warm ratio free of pool spin-up noise on small machines.
* ``REPRO_BENCH_FULL`` — set to 1 for all nine apps at 20 seeds.
"""

import json
import os
import shutil
import tempfile
import time

from repro import store as store_mod
from repro.apps import ALL_APPS, app_by_name
from repro.experiments.figure5 import DEFAULT_RUNS, figure5_grid
from repro.experiments.harness import clear_caches

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
RUNS = int(os.environ.get("REPRO_BENCH_RUNS", str(DEFAULT_RUNS if FULL else 2)))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or None
APPS = (
    ALL_APPS
    if FULL
    else [app_by_name("fft"), app_by_name("sor"), app_by_name("montecarlo")]
)

_RESULTS_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_store.json")
)


def test_bench_store_cold_vs_warm(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        clear_caches()
        with store_mod.activated(cache_dir) as store:
            t0 = time.perf_counter()
            cold_rows = figure5_grid(APPS, RUNS, jobs=JOBS)
            cold_seconds = time.perf_counter() - t0
            entries = store.stats().entries

        # Drop every in-memory cache (compiled programs, precise
        # outputs, the store handle's decoded-entry memo) so the warm
        # pass measures the disk store, not process-local memoisation.
        clear_caches()

        def warm_pass():
            with store_mod.activated(cache_dir):
                return figure5_grid(APPS, RUNS, jobs=JOBS)

        t0 = time.perf_counter()
        warm_rows = benchmark.pedantic(warm_pass, rounds=1, iterations=1)
        warm_seconds = time.perf_counter() - t0
    finally:
        clear_caches()
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Round-trip fidelity: the warm campaign reproduces every QoS
    # number exactly from stored outputs.
    assert warm_rows == cold_rows

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    results = {
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "speedup": round(speedup, 1),
        "entries": entries,
        "apps": len(APPS),
        "runs": RUNS,
        "jobs": JOBS or 1,
        "rows_identical": True,
    }
    benchmark.extra_info.update(results)
    with open(_RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\nFigure 5 grid ({len(APPS)} apps x 3 levels x {RUNS} seeds, "
        f"{entries} store entries): cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s -> {speedup:.0f}x"
    )

    assert speedup >= 5.0, (
        f"warm store pass should be >= 5x faster than cold, got "
        f"{speedup:.2f}x ({cold_seconds:.2f}s -> {warm_seconds:.2f}s)"
    )
