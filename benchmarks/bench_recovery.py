"""Bench: what guaranteed quality costs, and that it holds.

Runs the full recovery campaign — every ported app plus the
``RecoveryCalib`` calibration workload across the Table 2 levels, with
``REPRO_BENCH_RECOVERY`` fault seeds per cell — in guaranteed-quality
mode (:func:`repro.recovery.run_recovered`) and pins the subsystem's
three acceptance bars, asserted rather than eyeballed:

1. **zero violations delivered** — every final output passes its
   acceptability predicate (``unrecovered == 0`` on every cell);
2. **selective == precise** — on every violating seed, the
   selectively-precise retry's QoS is bit-identical to the
   whole-program precise re-run of the same cell;
3. **the slice pays** — wherever the approximate slice is a proper
   subset of the program's mechanisms, the selective retry's energy is
   strictly below the whole-program precise fallback (and never above
   it anywhere).

Results land in ``extra_info`` and as ``BENCH_recovery.json`` at the
repository root: per-app violation/retry counts, raw vs recovered
energy, and the selective-vs-precise retry energy on the calibration
workload.

Environment knobs:

* ``REPRO_BENCH_RECOVERY`` — fault seeds per (app, level) cell
  (default 3).
* ``REPRO_BENCH_FULL`` — set to 1 for the paper's 10-seed cells.
"""

import json
import os
import struct
import time

from repro.apps import ALL_APPS
from repro.experiments.harness import clear_caches, precise_output
from repro.experiments.runkey import RunKey
from repro.hardware.config import AGGRESSIVE, MEDIUM, MILD
from repro.recovery import (
    RecoveryPolicy,
    app_recovery_frontier,
    approximate_slice,
    run_recovered,
)
from repro.recovery.calib import calibration_spec

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
RUNS = int(os.environ.get("REPRO_BENCH_RECOVERY", "10" if FULL else "3"))
LEVELS = (MILD, MEDIUM, AGGRESSIVE)

_RESULTS_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_recovery.json")
)


def _bits(value):
    return struct.pack("<d", value)


def _violating_seeds(spec, config, runs):
    """Fault seeds whose first attempt fails the acceptability check."""
    seeds = []
    for fault_seed in range(1, runs + 1):
        key = RunKey(spec=spec, config=config, fault_seed=fault_seed, workload_seed=0)
        outcome = run_recovered(key, RecoveryPolicy("selective")).outcome
        if outcome.violation:
            seeds.append(fault_seed)
    return seeds


def test_bench_recovery_campaign(benchmark):
    specs = list(ALL_APPS) + [calibration_spec()]
    clear_caches()

    t0 = time.perf_counter()

    def campaign():
        return {
            spec.name: app_recovery_frontier(spec, levels=LEVELS, runs=RUNS)
            for spec in specs
        }

    frontier = benchmark.pedantic(campaign, rounds=1, iterations=1)
    campaign_seconds = time.perf_counter() - t0

    # Bar 1: zero acceptability violations in final outputs, anywhere.
    violations = retries = 0
    for points in frontier.values():
        for point in points:
            assert point.unrecovered == 0, (point.app, point.config)
            violations += point.violations
            retries += point.retries_selective + point.retries_full
    assert violations > 0, "campaign exercised no violating cells"

    # Bar 2: selective re-execution is bit-identical in QoS to a
    # whole-program precise re-run of the same cells (and bar 3's
    # "never above" half: its energy never exceeds the fallback's).
    differential_cells = 0
    calib_gap = None
    for spec in specs:
        prog_slice = approximate_slice(spec)
        reference = precise_output(spec, 0)
        for fault_seed in _violating_seeds(spec, AGGRESSIVE, RUNS)[:2]:
            key = RunKey(
                spec=spec, config=AGGRESSIVE, fault_seed=fault_seed, workload_seed=0
            )
            selective = run_recovered(key, RecoveryPolicy("selective"))
            precise = run_recovered(key, RecoveryPolicy("precise"))
            left = spec.qos(reference, selective.output)
            right = spec.qos(reference, precise.output)
            assert _bits(left) == _bits(right), (spec.name, fault_seed)
            assert (
                selective.outcome.retry_energy
                <= precise.outcome.retry_energy + 1e-12
            ), (spec.name, fault_seed)
            # Bar 3, strict half: a proper-subset slice must beat the
            # whole-program precise fallback outright.
            if prog_slice.proper_subset and selective.outcome.retry_kind == "selective":
                gap = precise.outcome.retry_energy - selective.outcome.retry_energy
                if spec.name == "RecoveryCalib":
                    assert gap > 0.0, "calibration slice saved nothing"
                    calib_gap = round(gap, 4)
            differential_cells += 1
    assert differential_cells > 0, "no violating cells to compare differentially"
    assert calib_gap is not None, "the calibration workload never exercised bar 3"

    cells = len(specs) * len(LEVELS) * RUNS
    results = {
        "apps": [spec.name for spec in specs],
        "levels": [config.name for config in LEVELS],
        "runs_per_cell": RUNS,
        "cells": cells,
        "campaign_seconds": round(campaign_seconds, 3),
        "violations": violations,
        "retries": retries,
        "unrecovered": 0,
        "differential_cells": differential_cells,
        "selective_bit_identical": True,
        "calib_selective_vs_precise_energy_gap": calib_gap,
        "per_app": {
            name: [
                {
                    "config": point.config,
                    "violations": point.violations,
                    "retries_selective": point.retries_selective,
                    "retries_full": point.retries_full,
                    "raw_qos": point.raw_qos,
                    "recovered_qos": point.recovered_qos,
                    "raw_energy": round(point.raw_energy, 4),
                    "recovered_energy": round(point.recovered_energy, 4),
                    "proper_subset": point.proper_subset,
                }
                for point in points
            ]
            for name, points in frontier.items()
        },
    }
    benchmark.extra_info.update(results)
    with open(_RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\nRecovery campaign ({len(specs)} apps x {len(LEVELS)} levels x "
        f"{RUNS} seeds = {cells} cells): {violations} violation(s), "
        f"{retries} retried, 0 unrecovered, in {campaign_seconds:.1f}s; "
        f"calibration selective retry beats precise by {calib_gap:.3f} "
        f"precise-units"
    )
