"""Bench: regenerate Table 2 (approximation strategies and parameters)."""

from repro.experiments.table2 import format_table2, table2_rows


def test_bench_table2(benchmark):
    rows = benchmark(table2_rows)
    print("\n" + format_table2())

    # Paper values (the Medium column is taken from the literature).
    by_name = {row["quantity"]: row for row in rows}
    dram = by_name["DRAM refresh: per-second bit flip probability"]
    assert (dram["Mild"], dram["Medium"], dram["Aggressive"]) == ("10^-9", "10^-5", "10^-3")
    fp = by_name["Energy saved per FP operation"]
    assert (fp["Mild"], fp["Medium"], fp["Aggressive"]) == ("32%", "78%", "85%")
    mant = by_name["float mantissa bits"]
    assert (mant["Mild"], mant["Medium"], mant["Aggressive"]) == ("16", "8", "4")
    timing = by_name["Arithmetic timing error probability"]
    assert (timing["Mild"], timing["Medium"], timing["Aggressive"]) == (
        "10^-6",
        "10^-4",
        "10^-2",
    )
