"""Bench: offline per-application tuning (the paper's Sec. 6.2 suggestion).

Shape asserted: per-application heterogeneous configurations meet the
QoS budget while saving energy, and a sensitive app (SOR) ends up with
a more conservative functional-unit level than a robust one
(MonteCarlo/Raytracer) — the tuning the paper says a uniform level
cannot provide.
"""

from repro.apps import app_by_name
from repro.experiments.autotune import autotune_suite, format_tuning

BUDGET = 0.05
APPS = [app_by_name(name) for name in ("montecarlo", "sor", "raytracer")]


def test_bench_autotune(benchmark):
    results = benchmark.pedantic(
        autotune_suite,
        kwargs={"qos_budget": BUDGET, "runs": 3, "apps": APPS},
        rounds=1,
        iterations=1,
    )
    print("\n" + format_tuning(results, BUDGET))

    by_app = {result.app: result for result in results}
    for result in results:
        assert result.measured_qos <= BUDGET
        assert result.savings > 0.05

    # SOR is timing-sensitive (Figure 5): the tuner must keep its ALU
    # level below what the robust apps tolerate.
    assert by_app["SOR"].levels["timing"] <= by_app["MonteCarlo"].levels["timing"] or \
        by_app["SOR"].levels["timing"] <= by_app["Raytracer"].levels["timing"]
