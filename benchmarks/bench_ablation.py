"""Bench: ablations for design choices DESIGN.md calls out.

* Cache-line granularity: finer lines yield a higher (or equal)
  proportion of approximate DRAM — the paper's Section 4.1/6.1 remark.
* Energy split: DRAM-heavy savings shrink under the mobile split where
  memory is only ~25% of system power (Section 5.4).
"""

from repro.apps import app_by_name
from repro.experiments.ablation import (
    LINE_SIZES,
    energy_split_rows,
    format_energy_splits,
    format_line_sizes,
    line_size_rows,
)

#: A DRAM-heavy subset keeps the sweep quick while showing the effect.
SWEEP_APPS = [app_by_name(name) for name in ("fft", "sor", "imagej")]


def test_bench_line_size_sweep(benchmark):
    rows = benchmark.pedantic(line_size_rows, args=(SWEEP_APPS,), rounds=1, iterations=1)
    print("\n" + format_line_sizes(rows))

    for row in rows:
        fractions = [row[size] for size in LINE_SIZES]
        # Coarser lines never increase the approximate fraction.
        for finer, coarser in zip(fractions, fractions[1:]):
            assert coarser <= finer + 1e-9, row["app"]
        # The sweep spans a real effect for array-heavy apps.
        assert fractions[0] >= fractions[-1]


def test_bench_software_substrate(benchmark):
    """Ablation C: commodity-hardware substrate (FP truncation + elision).

    Shape: stencil/render workloads tolerate the software substrate;
    FFT's butterflies amplify stale elided operands, so it does not —
    evidence for the per-application tuning Section 6.2 proposes.
    """
    from repro.experiments.ablation import (
        format_software_substrate,
        software_substrate_rows,
    )

    apps = [app_by_name(name) for name in ("fft", "sor", "raytracer")]
    rows = benchmark.pedantic(
        software_substrate_rows, args=(apps, 3), rounds=1, iterations=1
    )
    print("\n" + format_software_substrate(rows))

    by_app = {row["app"]: row for row in rows}
    assert by_app["SOR"]["qos"] < 0.1
    assert by_app["Raytracer"]["qos"] < 0.1
    assert by_app["FFT"]["qos"] > by_app["SOR"]["qos"]
    for row in rows:
        assert 0.0 < row["savings"] < 0.2
        assert row["elided"] > 0


def test_bench_energy_split(benchmark):
    rows = benchmark.pedantic(energy_split_rows, rounds=1, iterations=1)
    print("\n" + format_energy_splits(rows))

    for row in rows:
        assert 0.0 < row["server"] < 0.6
        assert 0.0 < row["mobile"] < 0.6

    # DRAM-heavy apps (e.g. SOR, ImageJ) save less under the mobile
    # split; the suite-wide mean must drop too.
    server_mean = sum(row["server"] for row in rows) / len(rows)
    mobile_mean = sum(row["mobile"] for row in rows) / len(rows)
    assert server_mean != mobile_mean
