"""Bench: regenerate Figure 4 (estimated CPU/memory system energy).

Paper shapes asserted:

* overall savings land in the paper's 9%-48% band at every level;
* savings increase monotonically with aggressiveness per app;
* the majority of the savings comes from the zero-to-Mild transition;
* the FP-heavy Raytracer saves the most, the integer-dominated
  ZXing-class apps the least.
"""

from repro.experiments.figure4 import LEVELS, figure4_rows, format_figure4


def test_bench_figure4(benchmark):
    rows = benchmark.pedantic(figure4_rows, rounds=1, iterations=1)
    print("\n" + format_figure4(rows))

    for row in rows:
        baseline, mild, medium, aggressive = (row[label] for label, _ in LEVELS)
        assert baseline == 1.0
        assert baseline > mild > medium > aggressive

        savings_aggressive = 1.0 - aggressive
        assert 0.09 <= savings_aggressive <= 0.48, row["app"]

        # Majority of the savings from the zero->Mild step.
        first_step = baseline - mild
        assert first_step >= 0.5 * (baseline - aggressive), row["app"]

    by_app = {row["app"]: row for row in rows}
    best = min(rows, key=lambda r: r["3"])
    assert best["app"] == "Raytracer"
    worst = max(rows, key=lambda r: r["3"])
    assert worst["app"] in ("ZXing", "ImageJ")
