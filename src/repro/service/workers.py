"""The daemon's resident worker pool: warm, crash-isolated processes.

Each worker is a long-lived child process holding the expensive state a
cold ``repro run`` pays for on every invocation: the compiled-program
cache (built once at boot — with a ``fork`` start method the workers
inherit the parent's pre-warmed cache outright), the precise-output
memo, and an open run-store handle that every completed simulation is
written through.

Isolation and lifecycle:

* One manager thread per worker slot pulls tasks off the shared
  admission queue and speaks to its worker over a duplex pipe; a task
  is only ever in one worker, so a **worker death fails only the
  requests it was executing**.
* A dead worker is respawned (and re-warmed) on demand; the doomed
  request is re-dispatched up to ``retry_budget`` times — the same
  bounded policy as :mod:`repro.experiments.executor` — before it is
  failed with a ``worker_crashed`` error.
* Tasks whose deadline expired while queued are failed without ever
  occupying a worker.

The pool knows nothing about sockets or JSON: it consumes task objects
(duck-typed; see ``SimulationServer._Task``) exposing ``payload``,
``expired()`` and the completion callbacks.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["WorkerPool", "warm_specs_for"]

#: Sentinel shutting down one manager thread.
_STOP = object()

#: How long a freshly spawned worker may take to warm up and report
#: ready before the pool gives up on it.
_READY_TIMEOUT_S = 120.0


def warm_specs_for(warm_apps: Sequence[str]):
    """Resolve the ``warm_apps`` config knob to concrete AppSpecs."""
    from repro.apps import ALL_APPS, app_by_name

    if any(name == "all" for name in warm_apps):
        return list(ALL_APPS)
    return [app_by_name(name) for name in warm_apps]


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------


def _execute_service_task(payload: dict) -> dict:
    """Run one simulation request inside a worker; returns a wire dict.

    The QoS is computed exactly as :func:`repro.experiments.harness.
    qos_error` computes it — precise reference first, then the
    approximate run — so daemon answers are bit-identical to the serial
    harness.  With a store active (the pool opens one per worker) both
    runs write through, so every miss warms the campaign cache.
    """
    from repro.experiments.harness import precise_output, run_key
    from repro.service.protocol import CONFIGS, CRASH_APP, ERROR_INTERNAL
    from repro.apps import app_by_name
    from repro.experiments.runkey import RunKey

    if payload["app"] == CRASH_APP:
        # Deterministic crash probe (tests only; gated at admission).
        os._exit(13)

    spec = app_by_name(payload["app"])
    if "levels" in payload:
        # A tuner-resolved budget probe: compose the per-mechanism level
        # vector into a concrete config (protocol v2).
        from repro.tuner.search import compose_config

        config = compose_config(payload["levels"], name=f"tuned:{spec.name}")
    else:
        config = CONFIGS[payload["config"]]
    key = RunKey(
        spec=spec,
        config=config,
        fault_seed=payload["fault_seed"],
        workload_seed=payload["workload_seed"],
    )
    try:
        reference = precise_output(spec, key.workload_seed)
        recovery = None
        if payload.get("want_trace_summary"):
            from repro.observability.runner import traced_run

            traced = traced_run(key)
            output, stats = traced.output, traced.stats
            counters = traced.metrics.as_dict()["counters"]
            summary = {
                "events": len(traced.events),
                "dropped": traced.dropped,
                "counters": {k: v for k, v in counters.items() if v},
            }
        elif payload.get("recover"):
            # Guaranteed-quality mode (protocol v3): gate the output
            # through its acceptability check, retry on violation, and
            # report the delivered run's QoS plus the recovery block.
            from repro.recovery.reexec import RecoveryPolicy, run_recovered

            recovered = run_recovered(key, RecoveryPolicy(payload["recover"]))
            output, stats = recovered.result.output, recovered.result.stats
            recovery = recovered.outcome.to_dict()
            summary = None
        else:
            result = run_key(key)
            output, stats = result.output, result.stats
            summary = None
        qos = spec.qos(reference, output)
    except Exception as exc:  # a worker must survive any request
        return {
            "ok": False,
            "error": {
                "code": ERROR_INTERNAL,
                "message": f"{type(exc).__name__}: {exc}",
            },
        }
    result_payload = {
        "app": spec.name,
        "config": config.name,
        "fault_seed": key.fault_seed,
        "workload_seed": key.workload_seed,
        "qos": qos,
        "cached": False,
        "digest": key.digest,
        "total_faults": stats.total_faults,
        "ops": stats.ops_total,
        "endorsements": stats.endorsements,
        "trace_summary": summary,
    }
    if recovery is not None:
        result_payload["recovery"] = recovery
    return {"ok": True, "result": result_payload}


def _worker_main(
    conn, cache_dir: Optional[str], warm_app_names: Tuple[str, ...]
) -> None:
    """Worker process entry: warm caches, open the store, serve tasks."""
    from repro.experiments import harness

    if cache_dir is not None:
        from repro.store import configure

        configure(cache_dir)
    # A forked worker inherits whatever precise-output memo the parent
    # had built up.  Drop it: references must be (re)computed *through
    # the store*, because the server's inline hit path needs the
    # baseline entry on disk — a memo-served reference would never be
    # written and that key could never become a hit.
    harness._PRECISE_CACHE.clear()
    for spec in warm_specs_for(warm_app_names):
        harness.compiled_app(spec)
    conn.send({"ready": True, "pid": os.getpid()})
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        conn.send(_execute_service_task(payload))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _Worker:
    """One slot's process + pipe (parent end)."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)


class WorkerPool:
    """Fixed-size pool of warm worker processes fed by a shared queue."""

    def __init__(
        self,
        tasks: "queue.Queue",
        size: int,
        cache_dir: Optional[str],
        warm_apps: Sequence[str],
        retry_budget: int = 2,
        on_restart: Optional[Callable[[], None]] = None,
    ) -> None:
        self._tasks = tasks
        self._size = size
        self._cache_dir = cache_dir
        self._warm_apps = tuple(warm_apps)
        self._retry_budget = retry_budget
        self._on_restart = on_restart or (lambda: None)
        self._context = self._pick_context()
        self._workers: List[Optional[_Worker]] = [None] * size
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._in_flight = 0
        self._stopping = False

    @staticmethod
    def _pick_context():
        # fork inherits the parent's pre-warmed compiled-program cache;
        # spawn (the fallback) re-warms in _worker_main instead.
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn and warm every worker, then start the manager threads."""
        for slot in range(self._size):
            self._workers[slot] = self._spawn()
        for slot in range(self._size):
            thread = threading.Thread(
                target=self._manage, args=(slot,), name=f"repro-serve-worker-{slot}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop managers and terminate workers (pending tasks excepted:
        call only once the admission queue is drained)."""
        self._stopping = True
        for _ in self._threads:
            self._tasks.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=10)
        with self._lock:
            workers, self._workers = self._workers, [None] * self._size
        for worker in workers:
            if worker is not None:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):
                    pass
                worker.kill()

    # ------------------------------------------------------------------
    def alive_count(self) -> int:
        with self._lock:
            return sum(
                1 for worker in self._workers if worker is not None and worker.alive()
            )

    def in_flight_count(self) -> int:
        with self._lock:
            return self._in_flight

    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self._cache_dir, self._warm_apps),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn)
        if not parent_conn.poll(_READY_TIMEOUT_S):
            worker.kill()
            raise RuntimeError("worker did not report ready in time")
        ready = parent_conn.recv()
        if not (isinstance(ready, dict) and ready.get("ready")):
            worker.kill()
            raise RuntimeError(f"worker sent unexpected ready message: {ready!r}")
        return worker

    def _ensure_worker(self, slot: int) -> Optional[_Worker]:
        with self._lock:
            worker = self._workers[slot]
        if worker is not None and worker.alive():
            return worker
        if self._stopping:
            return None
        if worker is not None:
            worker.kill()
        try:
            fresh = self._spawn()
        except Exception:
            with self._lock:
                self._workers[slot] = None
            return None
        with self._lock:
            self._workers[slot] = fresh
        if worker is not None:
            self._on_restart()
        return fresh

    # ------------------------------------------------------------------
    def _manage(self, slot: int) -> None:
        while True:
            task = self._tasks.get()
            if task is _STOP:
                return
            if task.expired():
                task.fail_deadline(queued=True)
                continue
            self._run_task(slot, task)

    def _run_task(self, slot: int, task) -> None:
        with self._lock:
            self._in_flight += 1
        try:
            attempts = 0
            while True:
                worker = self._ensure_worker(slot)
                if worker is None:
                    task.fail_crash("worker could not be (re)started")
                    return
                try:
                    worker.conn.send(task.payload)
                    result = worker.conn.recv()
                    break
                except (EOFError, OSError):
                    # The worker died mid-request: fail over, bounded.
                    worker.kill()
                    with self._lock:
                        self._workers[slot] = None
                    self._on_restart()
                    attempts += 1
                    if attempts > self._retry_budget:
                        task.fail_crash(
                            f"worker died {attempts} time(s) executing this "
                            f"request (retry budget {self._retry_budget})"
                        )
                        return
        finally:
            with self._lock:
                self._in_flight -= 1
        if result.get("ok"):
            task.complete_ok(result["result"])
        else:
            task.fail_worker_error(result.get("error") or {})
