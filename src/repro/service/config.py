"""Service configuration: every capacity knob of the simulation daemon.

A :class:`ServiceConfig` is a frozen value object so a running daemon's
effective configuration can be dumped (``repro serve --dump-config``),
checked into a deployment, and fed back verbatim.  All limits are
validated eagerly — a daemon must fail at boot, not under load.

The knobs, and what they trade (see SERVICE.md, "Capacity tuning"):

* ``workers`` — resident simulation processes.  More workers raise
  miss throughput linearly until the machine's cores are saturated.
* ``queue_bound`` — admission-queue depth.  Requests beyond it are
  rejected with a backpressure error (429-style) instead of queueing
  unboundedly; the bound times mean service latency is the worst-case
  queueing delay a client can observe.
* ``default_deadline_ms`` — applied to requests that carry no deadline
  of their own; ``0`` disables the default (requests wait forever).
* ``retry_budget`` — how many times a request is re-dispatched after a
  worker crash before it fails (mirrors the executor's policy).
* ``drain_timeout_s`` — how long a SIGTERM shutdown waits for queued
  and in-flight requests before giving up and exiting anyway.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.service.protocol import PROTOCOL_VERSION

__all__ = ["ServiceConfig", "DEFAULT_PORT"]

#: Default TCP port of the simulation daemon (unassigned by IANA).
DEFAULT_PORT = 7737


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Effective configuration of one :class:`SimulationServer`."""

    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (tests, benchmarks).
    port: int = DEFAULT_PORT
    #: Resident warm worker processes serving store misses.
    workers: int = 2
    #: Admission-queue bound; requests beyond it are rejected.
    queue_bound: int = 64
    #: Deadline applied to requests without one (0 = none).
    default_deadline_ms: int = 30_000
    #: Re-dispatches after a worker crash before the request fails.
    retry_budget: int = 2
    #: Graceful-shutdown budget for draining queued/in-flight work.
    drain_timeout_s: float = 30.0
    #: Run-store directory (``None`` disables the store: every request
    #: is a miss and nothing persists — useful only for testing).
    cache_dir: Optional[str] = ".repro-cache"
    #: App names whose compiled programs are built once at boot and
    #: inherited by every worker; ``("all",)`` warms the whole suite.
    warm_apps: Tuple[str, ...] = ("all",)
    #: Highest protocol version this daemon speaks.  Pinning to ``1``
    #: makes the daemon behave like a pre-v2 node: budget submits are
    #: answered with an ``unsupported_op`` error envelope and no online
    #: tuner is instantiated (compatibility testing, staged rollouts).
    max_protocol: int = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        if self.default_deadline_ms < 0:
            raise ValueError("default_deadline_ms must be >= 0 (0 = no deadline)")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if not 1 <= self.max_protocol <= PROTOCOL_VERSION:
            raise ValueError(
                f"max_protocol must be in [1, {PROTOCOL_VERSION}], got {self.max_protocol}"
            )

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe dump (``repro serve --dump-config``)."""
        data = dataclasses.asdict(self)
        data["warm_apps"] = list(self.warm_apps)
        return data
