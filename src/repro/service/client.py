"""Blocking client for the simulation daemon.

A :class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.service.server` over one TCP connection::

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1", 7737) as client:
        result = client.submit("fft", "medium", fault_seed=3)
        print(result.qos, result.cached)
        results = client.submit_batch(
            [{"app": "sor", "config": "mild", "fault_seed": s} for s in range(1, 21)]
        )

Structured daemon errors surface as typed exceptions:
:class:`ServiceBackpressure` (queue full — carries ``retry_after_s``),
:class:`ServiceDeadline`, and :class:`ServiceRequestFailed` for
everything else.  All inherit :class:`ServiceError`, a
:class:`~repro.errors.ReproError`, so CLI entry points report them as
ordinary errors.
"""

from __future__ import annotations

import dataclasses
import socket
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import ReproError
from repro.service.config import DEFAULT_PORT
from repro.service.protocol import (
    ERROR_DEADLINE,
    ERROR_DRAINING,
    ERROR_OVERLOADED,
    OP_STORE_PULL,
    OP_STORE_PUSH,
    decode_line,
    encode_line,
)

__all__ = [
    "ServiceClient",
    "SubmitResult",
    "ServiceError",
    "ServiceBackpressure",
    "ServiceDeadline",
    "ServiceRequestFailed",
]


class ServiceError(ReproError):
    """Base class for daemon-reported and transport failures."""


class ServiceBackpressure(ServiceError):
    """The daemon rejected the request (admission queue full/draining)."""

    def __init__(self, message: str, retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceDeadline(ServiceError):
    """The request's deadline expired before a result was available."""


class ServiceRequestFailed(ServiceError):
    """Any other structured failure; carries the daemon's error code."""

    def __init__(self, message: str, code: str) -> None:
        super().__init__(message)
        self.code = code


@dataclasses.dataclass(frozen=True)
class SubmitResult:
    """One answered simulation request.

    The v2 budget fields (``qos_budget`` through ``tuner``) are ``None``
    on fixed-config answers; a budget answer's ``config`` is the
    composed ``tuned:<app>`` name and its ``levels``/``energy`` describe
    the vector the online controller actually ran.
    """

    app: str
    config: str
    fault_seed: int
    workload_seed: int
    qos: float
    cached: bool
    digest: str
    total_faults: int
    ops: int
    endorsements: int
    trace_summary: Optional[dict]
    server_ms: Optional[float]
    qos_budget: Optional[float] = None
    levels: Optional[Dict[str, int]] = None
    energy: Optional[float] = None
    within_budget: Optional[bool] = None
    tuner: Optional[dict] = None
    #: The v3 guaranteed-quality block (check verdict, retry kind,
    #: disabled/kept mechanisms, attempt/retry energy); None unless the
    #: request carried ``recover``.
    recovery: Optional[dict] = None

    @classmethod
    def from_wire(cls, result: dict) -> "SubmitResult":
        return cls(
            app=result["app"],
            config=result["config"],
            fault_seed=result["fault_seed"],
            workload_seed=result["workload_seed"],
            qos=result["qos"],
            cached=result["cached"],
            digest=result["digest"],
            total_faults=result.get("total_faults", 0),
            ops=result.get("ops", 0),
            endorsements=result.get("endorsements", 0),
            trace_summary=result.get("trace_summary"),
            server_ms=result.get("server_ms"),
            qos_budget=result.get("qos_budget"),
            levels=result.get("levels"),
            energy=result.get("energy"),
            within_budget=result.get("within_budget"),
            tuner=result.get("tuner"),
            recovery=result.get("recovery"),
        )


def _raise_for_error(error: dict) -> None:
    code = error.get("code", "unknown")
    message = error.get("message", "request failed")
    if code in (ERROR_OVERLOADED, ERROR_DRAINING):
        raise ServiceBackpressure(
            f"{code}: {message}", retry_after_s=error.get("retry_after_s")
        )
    if code == ERROR_DEADLINE:
        raise ServiceDeadline(message)
    raise ServiceRequestFailed(f"{code}: {message}", code=code)


class ServiceClient:
    """A blocking connection to a running ``repro serve`` daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
        connect_timeout: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach simulation daemon at {host}:{port}: {exc} "
                f"(is 'repro serve' running?)"
            ) from exc
        self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _roundtrip(self, message: Dict[str, object]) -> dict:
        if self._closed:
            raise ServiceError("client is closed")
        self._next_id += 1
        message = dict(message, id=self._next_id)
        try:
            self._sock.sendall(encode_line(message))
            line = self._reader.readline()
        except OSError as exc:
            raise ServiceError(f"daemon connection failed: {exc}") from exc
        if not line:
            raise ServiceError("daemon closed the connection mid-request")
        response = decode_line(line)
        if response.get("id") != self._next_id:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        return response

    # ------------------------------------------------------------------
    def submit(
        self,
        app: str,
        config: Optional[str] = None,
        fault_seed: int = 0,
        workload_seed: int = 0,
        want_trace_summary: bool = False,
        deadline_ms: Optional[int] = None,
        qos_budget: Optional[float] = None,
        recover: Optional[str] = None,
    ) -> SubmitResult:
        """One simulation request; blocks until answered or failed.

        Name *either* a fixed ``config`` (default ``"medium"``, the v1
        form) *or* a ``qos_budget`` — the daemon's online tuner then
        chooses the levels and seeds, so a budget submit may not carry
        ``config`` or explicit seeds.  ``deadline_ms=0`` explicitly
        disables the server's default deadline (v2).

        ``recover`` (``"selective"`` or ``"precise"``, v3) asks for
        guaranteed-quality mode on a fixed-config submit: the answer's
        ``qos`` scores the delivered (possibly re-executed) output and
        its :attr:`SubmitResult.recovery` block says what happened.
        Mutually exclusive with ``qos_budget`` and
        ``want_trace_summary``.
        """
        message: Dict[str, object] = {
            "op": "submit",
            "app": app,
            "want_trace_summary": want_trace_summary,
        }
        if recover is not None:
            if qos_budget is not None:
                raise ServiceError(
                    "submit() takes a recover mode or a qos_budget, not both"
                )
            if want_trace_summary:
                raise ServiceError(
                    "recover submits take no trace summary: a retry would "
                    "make the trace ambiguous"
                )
            message["recover"] = recover
        if qos_budget is not None:
            if config is not None:
                raise ServiceError(
                    "submit() takes a fixed config or a qos_budget, not both"
                )
            if fault_seed or workload_seed:
                raise ServiceError(
                    "budget submits take no seeds: the online tuner owns "
                    "the sampling schedule"
                )
            message["qos_budget"] = qos_budget
        else:
            message["config"] = config if config is not None else "medium"
            message["fault_seed"] = fault_seed
            message["workload_seed"] = workload_seed
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        response = self._roundtrip(message)
        if not response.get("ok"):
            _raise_for_error(response.get("error") or {})
        return SubmitResult.from_wire(response["result"])

    def submit_batch(
        self,
        items: Iterable[Dict[str, object]],
        raise_on_error: bool = True,
    ) -> List[Union[SubmitResult, dict]]:
        """A batch of requests; one round trip, answered in item order.

        With ``raise_on_error`` (the default) the first failed item
        raises its typed exception; otherwise failed items come back as
        their raw ``{"code", "message", ...}`` error dicts in place.
        """
        items = list(items)
        response = self._roundtrip({"op": "batch", "items": items})
        if not response.get("ok"):
            _raise_for_error(response.get("error") or {})
        results: List[Union[SubmitResult, dict]] = []
        for item in response["results"]:
            if item.get("ok"):
                results.append(SubmitResult.from_wire(item["result"]))
            elif raise_on_error:
                _raise_for_error(item.get("error") or {})
            else:
                results.append(item.get("error") or {})
        return results

    # ------------------------------------------------------------------
    def store_pull(self, digest: str) -> Optional[dict]:
        """The daemon's raw store entry for ``digest``, or ``None``.

        The returned payload is self-validating (digest + checksum) and
        installable into any store via :meth:`store_push` /
        :meth:`repro.store.RunStore.put_raw` — the fabric's replication
        primitive (FABRIC.md).
        """
        response = self._roundtrip({"op": OP_STORE_PULL, "digest": digest})
        if not response.get("ok"):
            _raise_for_error(response.get("error") or {})
        return response.get("entry")

    def store_push(self, entry: dict) -> bool:
        """Install a raw entry payload into the daemon's store.

        ``True`` when the daemon holds the entry afterwards; ``False``
        when it refused it (invalid payload, or a storeless daemon).
        """
        response = self._roundtrip({"op": OP_STORE_PUSH, "entry": entry})
        if not response.get("ok"):
            _raise_for_error(response.get("error") or {})
        return bool(response.get("stored"))

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        response = self._roundtrip({"op": "healthz"})
        return response["healthz"]

    def metrics(self) -> dict:
        response = self._roundtrip({"op": "metrics"})
        return response["metrics"]

    def server_config(self) -> dict:
        response = self._roundtrip({"op": "config"})
        return response["config"]

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
