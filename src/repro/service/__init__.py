"""The simulation service: a long-lived batching daemon + client library.

``repro serve`` boots a :class:`SimulationServer` — a resident process
with warm worker processes, a bounded admission queue, request
coalescing, store-backed inline hits and a live metrics endpoint — and
``repro submit`` / :class:`ServiceClient` talk to it over
newline-delimited JSON on TCP.  See SERVICE.md for the protocol
schema, the metrics catalog and capacity-tuning guidance.

Layer map:

* :mod:`repro.service.config` — :class:`ServiceConfig`, every knob.
* :mod:`repro.service.protocol` — wire schema, named configs, errors.
* :mod:`repro.service.workers` — the warm, crash-isolated worker pool.
* :mod:`repro.service.server` — admission, coalescing, deadlines,
  metrics, the TCP/HTTP front end.
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`.
* :mod:`repro.service.routing` — optional harness routing
  (``repro experiments --via-service`` / ``--via-fleet``).

One daemon is one node; :mod:`repro.fabric` shards campaigns across a
whole fleet of them behind a coordinator that speaks this same
protocol (FABRIC.md), including the ``store_pull``/``store_push``
entry-exchange ops the daemon answers for replication.
"""

from repro.service.client import (
    ServiceBackpressure,
    ServiceClient,
    ServiceDeadline,
    ServiceError,
    ServiceRequestFailed,
    SubmitResult,
)
from repro.service.config import DEFAULT_PORT, ServiceConfig
from repro.service.protocol import CONFIGS, PROTOCOL_VERSION
from repro.service.routing import (
    ServiceRoute,
    active_service_route,
    clear_service_route,
    routed,
    set_service_route,
)
from repro.service.server import SimulationServer

__all__ = [
    "ServiceConfig",
    "SimulationServer",
    "ServiceClient",
    "SubmitResult",
    "ServiceError",
    "ServiceBackpressure",
    "ServiceDeadline",
    "ServiceRequestFailed",
    "ServiceRoute",
    "set_service_route",
    "clear_service_route",
    "active_service_route",
    "routed",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "CONFIGS",
]
