"""The simulation daemon: a long-lived, batching front end for the harness.

``repro serve`` turns the repository from a batch tool into a server:
one resident process owns the warm state every cold CLI invocation
rebuilds (compiled programs, precise-output memos, an open run-store
handle) and answers simulation requests over newline-delimited JSON
(see :mod:`repro.service.protocol` and SERVICE.md).

Request path, in order:

1. **Admission** — while draining, or when the bounded queue is full,
   the request is rejected immediately with a structured backpressure
   error carrying a ``retry_after_s`` hint (429-style; clients never
   hang on an overloaded daemon).
2. **Hit path** — a request whose :class:`RunKey` (and its precise
   reference) is already in the run store is answered inline from the
   serving thread: no queue, no worker, microseconds.
3. **Coalescing** — identical in-flight misses (same key digest and
   trace flag) share one execution; late arrivals wait on the first
   request's result.
4. **Dispatch** — misses go to the warm worker pool
   (:mod:`repro.service.workers`); results are written through the
   store, so every miss is the last miss for that key.
5. **Deadlines** — a request expired while queued is failed without
   occupying a worker; a waiter whose deadline passes mid-execution
   gets a ``deadline_exceeded`` response while the execution completes
   in the background and still warms the store (graceful cancellation:
   work is never wasted, only the wait is abandoned).

Live introspection: the same TCP port answers minimal ``HTTP GET``
requests for ``/healthz``, ``/metrics`` (the PR-2
:class:`~repro.observability.metrics.MetricsRegistry`, plus live
gauges and derived p50/p99 latency) and ``/config``.
"""

from __future__ import annotations

import json
import os
import queue
import socketserver
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.observability.metrics import MetricsRegistry
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE,
    ERROR_DRAINING,
    ERROR_OVERLOADED,
    ERROR_UNSUPPORTED,
    ERROR_WORKER_CRASHED,
    OP_STORE_PULL,
    OP_STORE_PUSH,
    ProtocolError,
    SimRequest,
    decode_line,
    encode_line,
    error_response,
    ok_response,
)
from repro.service.workers import WorkerPool, warm_specs_for
from repro.tuner.controller import TunerBank
from repro.tuner.search import levels_energy
from repro.tuner.state import TUNER_STATE_KIND

__all__ = ["SimulationServer"]


def _percentile(buckets: Dict[int, int], q: float) -> Optional[float]:
    """The q-quantile of an exact integer histogram (None if empty)."""
    total = sum(buckets.values())
    if not total:
        return None
    rank = q * (total - 1)
    seen = 0
    for bucket, count in sorted(buckets.items()):
        seen += count
        if seen > rank:
            return float(bucket)
    return float(max(buckets))  # pragma: no cover - numeric safety net


class _Task:
    """One queued miss: dispatch payload + completion rendezvous."""

    __slots__ = (
        "server",
        "payload",
        "coalesce_key",
        "deadline_at",
        "enqueued_at",
        "event",
        "response",
    )

    def __init__(self, server, payload, coalesce_key, deadline_at) -> None:
        self.server = server
        self.payload = payload
        self.coalesce_key = coalesce_key
        self.deadline_at = deadline_at
        self.enqueued_at = time.monotonic()
        self.event = threading.Event()
        self.response: Optional[dict] = None

    # Duck-typed interface consumed by WorkerPool -----------------------
    def expired(self) -> bool:
        return self.deadline_at is not None and time.monotonic() > self.deadline_at

    def complete_ok(self, result: dict) -> None:
        self.server._task_finished(self, {"ok": True, "result": result}, ok=True)

    def fail_deadline(self, queued: bool = False) -> None:
        where = "while queued" if queued else "mid-execution"
        self.server._task_finished(
            self,
            error_response(None, ERROR_DEADLINE, f"deadline expired {where}"),
        )

    def fail_crash(self, message: str) -> None:
        self.server._task_finished(
            self, error_response(None, ERROR_WORKER_CRASHED, message), crash=True
        )

    def fail_worker_error(self, error: dict) -> None:
        self.server._task_finished(self, {"ok": False, "error": error})


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    simulation_server: "SimulationServer" = None  # set by SimulationServer


class _Handler(socketserver.StreamRequestHandler):
    """One connection: NDJSON request/response, or a single HTTP GET."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server = self.server.simulation_server
        line = self.rfile.readline()
        if line.startswith(b"GET "):
            self._handle_http_get(server, line)
            return
        while line:
            stripped = line.strip()
            if stripped:
                try:
                    message = decode_line(stripped)
                except ProtocolError as exc:
                    self._send(error_response(None, exc.code, str(exc)))
                else:
                    self._send(server.handle_message(message))
            try:
                line = self.rfile.readline()
            except OSError:
                return

    def _send(self, response: dict) -> None:  # pragma: no cover
        try:
            self.wfile.write(encode_line(response))
            self.wfile.flush()
        except OSError:
            pass

    def _handle_http_get(self, server, request_line: bytes) -> None:  # pragma: no cover
        while True:  # consume request headers
            header = self.rfile.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        try:
            path = request_line.split()[1].decode("ascii", "replace")
        except IndexError:
            path = "/"
        builder = server.http_payloads().get(path.rstrip("/") or path)
        if builder is None:
            status, payload = "404 Not Found", {"error": f"unknown path {path!r}"}
        else:
            status, payload = "200 OK", builder()
        body = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            self.wfile.write(head + body)
            self.wfile.flush()
        except OSError:
            pass


class SimulationServer:
    """The resident daemon behind ``repro serve``.

    Construct with a :class:`ServiceConfig`, :meth:`start` to boot the
    warm worker pool and begin serving, :meth:`initiate_drain` +
    :meth:`drain` + :meth:`stop` (or the ``with`` statement) to shut
    down.  :meth:`handle_message` is the transport-free core — tests
    drive it directly, the TCP handler is a thin wrapper.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._store = None
        if config.cache_dir is not None:
            from repro.store import RunStore, active_store

            # If the process already has the same store active (an
            # in-process server next to the harness), take a shared
            # reference so a harness clear_caches() cannot close the
            # daemon's handle out from under it.
            active = active_store()
            if active is not None and os.path.abspath(active.root) == os.path.abspath(
                config.cache_dir
            ):
                self._store = active.share()
            else:
                self._store = RunStore(config.cache_dir)
        self._queue: "queue.Queue" = queue.Queue(maxsize=config.queue_bound)
        self._inflight: Dict[object, _Task] = {}
        self._inflight_lock = threading.Lock()
        self._pool = WorkerPool(
            self._queue,
            size=config.workers,
            cache_dir=config.cache_dir,
            warm_apps=config.warm_apps,
            retry_budget=config.retry_budget,
            on_restart=lambda: self._inc("service.worker_restarts"),
        )
        # The online controllers behind v2 budget submits; a daemon
        # pinned to protocol 1 has none and answers `unsupported_op`.
        self._tuners: Optional[TunerBank] = (
            TunerBank(on_event=self._inc) if config.max_protocol >= 2 else None
        )
        self._tcp: Optional[_TCPServer] = None
        self._tcp_thread: Optional[threading.Thread] = None
        self._draining = False
        self._started_at: Optional[float] = None
        self._ema_ms: Optional[float] = None  # smoothed miss service time

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Warm up, start workers and the TCP listener; returns address."""
        from repro.experiments.harness import compiled_app

        # Compile once at boot, in the parent: fork-started workers
        # inherit this cache outright, so no worker compiles anything.
        for spec in warm_specs_for(self.config.warm_apps):
            compiled_app(spec)
        self._pool.start()
        self._tcp = _TCPServer((self.config.host, self.config.port), _Handler)
        self._tcp.simulation_server = self
        self._tcp_thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._tcp_thread.start()
        self._started_at = time.monotonic()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._tcp is None:
            raise RuntimeError("server is not started")
        host, port = self._tcp.server_address[:2]
        return host, port

    def initiate_drain(self) -> None:
        """Stop admitting new requests; queued/in-flight work continues."""
        self._draining = True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until queued + in-flight work is finished (or timeout)."""
        budget = self.config.drain_timeout_s if timeout is None else timeout
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            if self._queue.empty() and self._pool.in_flight_count() == 0:
                return True
            time.sleep(0.02)
        return self._queue.empty() and self._pool.in_flight_count() == 0

    def stop(self) -> None:
        """Tear everything down (listener, workers, store handle)."""
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
            self._tcp = None
        self._pool.stop()
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "SimulationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.initiate_drain()
        self.drain(timeout=5)
        self.stop()

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    def _inc(self, name: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self.metrics.counter(name).inc(amount)

    def _observe_latency(self, started_at: float) -> float:
        elapsed_ms = (time.monotonic() - started_at) * 1000.0
        with self._metrics_lock:
            self.metrics.histogram("service.latency_ms").observe(int(elapsed_ms))
        return elapsed_ms

    # ------------------------------------------------------------------
    # The transport-free request core
    # ------------------------------------------------------------------
    def handle_message(self, message: dict) -> dict:
        op = message.get("op")
        request_id = message.get("id")
        if op == "submit":
            try:
                request = SimRequest.from_wire(message)
            except ProtocolError as exc:
                self._inc("service.bad_requests")
                return error_response(request_id, exc.code, str(exc))
            response = self._submit_and_wait(request)
            if request_id is not None:
                response = dict(response, id=request_id)
            return response
        if op == "batch":
            return self._handle_batch(message, request_id)
        if op == "healthz":
            return ok_response(request_id, "healthz", self.healthz_payload())
        if op == "metrics":
            return ok_response(request_id, "metrics", self.metrics_payload())
        if op == "config":
            return ok_response(request_id, "config", self.config_payload())
        if op == OP_STORE_PULL:
            return self._handle_store_pull(message, request_id)
        if op == OP_STORE_PUSH:
            return self._handle_store_push(message, request_id)
        self._inc("service.bad_requests")
        return error_response(
            request_id, ERROR_BAD_REQUEST, f"unknown op {op!r}"
        )

    def _handle_batch(self, message: dict, request_id) -> dict:
        items = message.get("items")
        if not isinstance(items, list) or not items:
            self._inc("service.bad_requests")
            return error_response(
                request_id, ERROR_BAD_REQUEST, "'items' must be a non-empty list"
            )
        self._inc("service.batches_total")
        # Phase 1 — admit everything up front: hits answer inline,
        # misses enqueue immediately so the worker pool chews the whole
        # batch concurrently (this is the batching win: total wall
        # clock is the slowest miss, not the sum).
        admitted: List[Tuple[object, Optional[SimRequest], float]] = []
        for item in items:
            started_at = time.monotonic()
            try:
                request = SimRequest.from_wire(item)
            except ProtocolError as exc:
                self._inc("service.bad_requests")
                admitted.append(
                    (error_response(None, exc.code, str(exc)), None, started_at)
                )
                continue
            if request.is_budget:
                # Budget items resolve through their controller, which
                # serialises per (app, budget) anyway — answer in phase
                # 1; fixed-config misses still fan out concurrently.
                admitted.append((self._submit_budget(request, started_at), None, started_at))
                continue
            admitted.append((self._admit(request, started_at), request, started_at))
        # Phase 2 — gather, in item order.
        results = []
        for outcome, request, started_at in admitted:
            if isinstance(outcome, _Task):
                results.append(self._await_task(outcome, request, started_at))
            else:
                results.append(outcome)
        return ok_response(request_id, "results", results)

    def _submit_and_wait(self, request: SimRequest) -> dict:
        started_at = time.monotonic()
        if request.is_budget:
            return self._submit_budget(request, started_at)
        outcome = self._admit(request, started_at)
        if isinstance(outcome, _Task):
            return self._await_task(outcome, request, started_at)
        return outcome

    # ------------------------------------------------------------------
    # The v2 budget path: controller chooses the levels, observes the QoS
    # ------------------------------------------------------------------
    def _submit_budget(self, request: SimRequest, started_at: float) -> dict:
        """Answer one ``{app, qos_budget}`` submit through its controller.

        The controller proposes a probe (levels + seeds), the probe runs
        through the ordinary admission path (store hits, coalescing and
        deadlines all apply), and the observed QoS error feeds the state
        machine before the response — which carries the executed levels,
        their energy and the controller's post-observation ``tuner``
        block — is returned.  Probe failures (deadline, backpressure)
        are relayed as-is and do not advance the controller.
        """
        if self._tuners is None:
            return error_response(
                None,
                ERROR_UNSUPPORTED,
                "'qos_budget' requires protocol 2; this node speaks "
                f"protocol {self.config.max_protocol}",
            )
        from repro.apps import app_by_name

        tuner = self._tuners.obtain(app_by_name(request.app), request.qos_budget)
        with tuner.lock:
            levels, fault_seed, workload_seed = tuner.next_probe()
            resolved = request.with_levels(levels, fault_seed, workload_seed)
            outcome = self._admit(resolved, started_at)
            if isinstance(outcome, _Task):
                outcome = self._await_task(outcome, resolved, started_at)
            if not outcome.get("ok"):
                return outcome
            result = dict(outcome["result"])
            qos = result["qos"]
            events = tuner.observe(qos)
            self._inc("tuner.requests_total")
            self._inc("tuner.observations")
            for event, metric in (
                ("commits", "tuner.commits"),
                ("rejections", "tuner.rejections"),
                ("pruned", "tuner.pruned_static"),
                ("backoffs", "tuner.backoffs"),
                ("relaxes", "tuner.relaxes"),
                ("converged", "tuner.converged"),
                ("violations", "tuner.violations"),
            ):
                if events[event]:
                    self._inc(metric, events[event])
            if events["commits"] or events["rejections"]:
                self._inc("tuner.trials")
            result["qos_budget"] = tuner.qos_budget
            result["levels"] = levels
            result["energy"] = levels_energy(tuner.baseline_stats(), levels)
            result["within_budget"] = qos <= tuner.qos_budget
            result["tuner"] = tuner.info()
        return {"ok": True, "result": result}

    # ------------------------------------------------------------------
    def _admit(self, request: SimRequest, started_at: float):
        """Admission control: a response dict, or a :class:`_Task` to await."""
        if request.recover is not None and self.config.max_protocol < 3:
            return error_response(
                None,
                ERROR_UNSUPPORTED,
                "'recover' requires protocol 3; this node speaks "
                f"protocol {self.config.max_protocol}",
            )
        self._inc("service.requests_total")
        if request.recover is not None:
            self._inc("recovery.requests_total")
        if self._draining:
            self._inc("service.rejected_draining")
            return error_response(
                None, ERROR_DRAINING, "daemon is draining; resubmit elsewhere"
            )
        if (
            not request.is_crash_probe
            and self._store is not None
            and request.recover is None
        ):
            # Recover submits always execute: the store entry records a
            # plain run, not a checked one, and the acceptability check
            # plus any retry must actually happen.
            hit = self._lookup_hit(request)
            if hit is not None:
                self._inc("service.hits")
                hit["server_ms"] = round(self._observe_latency(started_at), 3)
                return {"ok": True, "result": hit}
        deadline_ms = request.effective_deadline_ms(self.config.default_deadline_ms)
        deadline_at = (
            started_at + deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        coalesce_key: object
        if request.is_crash_probe:
            coalesce_key = object()  # crash probes never coalesce
        else:
            coalesce_key = (
                request.resolve_key().digest,
                request.want_trace_summary,
                request.recover,
            )
        with self._inflight_lock:
            existing = self._inflight.get(coalesce_key)
            if existing is not None:
                self._inc("service.coalesced")
                return existing
            task = _Task(self, request.task_payload(), coalesce_key, deadline_at)
            try:
                self._queue.put_nowait(task)
            except queue.Full:
                self._inc("service.rejected")
                return error_response(
                    None,
                    ERROR_OVERLOADED,
                    f"admission queue full ({self.config.queue_bound} deep)",
                    retry_after_s=self._retry_after_hint(),
                )
            self._inflight[coalesce_key] = task
        return task

    def _retry_after_hint(self) -> float:
        """A back-off hint: roughly one queue drain at recent latency."""
        ema_ms = self._ema_ms if self._ema_ms is not None else 1000.0
        depth = self._queue.qsize() or self.config.queue_bound
        hint = depth * (ema_ms / 1000.0) / max(1, self.config.workers)
        return round(min(60.0, max(0.05, hint)), 3)

    def _lookup_hit(self, request: SimRequest) -> Optional[dict]:
        """Answer from the run store, or ``None`` when execution is needed."""
        from repro.store import StoreError

        key = request.resolve_key()
        try:
            entry = self._store.get(key)
            if entry is None:
                return None
            if request.want_trace_summary and entry.trace_summary is None:
                return None  # must execute to produce events
            reference = self._store.get(key.precise_reference())
            if reference is None:
                return None
        except StoreError:
            return None
        qos = key.spec.qos(reference.output, entry.output)
        return {
            "app": key.spec.name,
            "config": request.config if request.levels is None else key.config.name,
            "fault_seed": key.fault_seed,
            "workload_seed": key.workload_seed,
            "qos": qos,
            "cached": True,
            "digest": key.digest,
            "total_faults": entry.stats.total_faults,
            "ops": entry.stats.ops_total,
            "endorsements": entry.stats.endorsements,
            "trace_summary": entry.trace_summary if request.want_trace_summary else None,
        }

    # ------------------------------------------------------------------
    # Store-entry exchange (the fabric's replication primitive)
    # ------------------------------------------------------------------
    def _handle_store_pull(self, message: dict, request_id) -> dict:
        """Answer ``store_pull``: the raw entry for a digest, or ``null``.

        A miss is not an error — the fabric probes shards that may or
        may not hold an entry yet.  A daemon without a store answers
        ``null`` for everything.
        """
        digest = message.get("digest")
        if not isinstance(digest, str) or not digest:
            self._inc("service.bad_requests")
            return error_response(
                request_id, ERROR_BAD_REQUEST, "missing or invalid 'digest'"
            )
        self._inc("service.store_pulls")
        payload = None
        if self._store is not None:
            from repro.store import StoreError

            try:
                payload = self._store.get_raw(digest)
            except StoreError:
                payload = None
        if payload is None and self._tuners is not None:
            # Not a run entry: it may name a controller's current state
            # (the fabric replicates tuner states over the same op).
            payload = self._tuners.state_payload(digest)
        return ok_response(request_id, "entry", payload)

    def _handle_store_push(self, message: dict, request_id) -> dict:
        """Answer ``store_push``: install a raw entry into this store.

        The payload is self-validating (digest + checksum), so a
        corrupt or mismatched push is refused with ``stored: false``
        rather than poisoning the store.  Pushing to a storeless daemon
        is also ``stored: false`` — the caller treats it as a failed
        replication, never a protocol error.
        """
        entry = message.get("entry")
        if not isinstance(entry, dict):
            self._inc("service.bad_requests")
            return error_response(
                request_id, ERROR_BAD_REQUEST, "missing or invalid 'entry' (expected an object)"
            )
        self._inc("service.store_pushes")
        if entry.get("kind") == TUNER_STATE_KIND:
            stored = self._tuners is not None and self._tuners.install(entry)
            return ok_response(request_id, "stored", stored)
        stored = False
        if self._store is not None:
            from repro.store import StoreError

            try:
                stored = self._store.put_raw(entry)
            except StoreError:
                stored = False
        return ok_response(request_id, "stored", stored)

    def _await_task(self, task: _Task, request: SimRequest, started_at: float) -> dict:
        """Wait for a task's completion under this waiter's own deadline."""
        deadline_ms = request.effective_deadline_ms(self.config.default_deadline_ms)
        timeout = None
        if deadline_ms is not None:
            timeout = max(0.0, started_at + deadline_ms / 1000.0 - time.monotonic())
        if not task.event.wait(timeout):
            # The execution continues and will warm the store; only
            # this waiter gives up (graceful cancellation).
            self._inc("service.deadline_expired")
            return error_response(
                None, ERROR_DEADLINE, "deadline expired awaiting execution"
            )
        response = dict(task.response)
        # Count deadline errors exactly once per answered waiter: the
        # queued-expiry path marks the task, but the increment happens
        # here, where the error is actually returned (a waiter that
        # already timed out above was counted above).
        error = response.get("error")
        if isinstance(error, dict) and error.get("code") == ERROR_DEADLINE:
            self._inc("service.deadline_expired")
        return response

    # ------------------------------------------------------------------
    def _task_finished(
        self,
        task: _Task,
        response: dict,
        ok: bool = False,
        crash: bool = False,
    ) -> None:
        with self._inflight_lock:
            current = self._inflight.get(task.coalesce_key)
            if current is task:
                del self._inflight[task.coalesce_key]
        if ok:
            self._inc("service.misses")
            elapsed_ms = self._observe_latency(task.enqueued_at)
            previous = self._ema_ms
            self._ema_ms = (
                elapsed_ms if previous is None else 0.8 * previous + 0.2 * elapsed_ms
            )
            response = dict(response)
            response["result"] = dict(
                response["result"], server_ms=round(elapsed_ms, 3)
            )
            recovery = response["result"].get("recovery")
            if isinstance(recovery, dict):
                self._count_recovery(recovery)
        elif crash:
            self._inc("service.worker_crash_failures")
        task.response = response
        task.event.set()

    def _count_recovery(self, recovery: dict) -> None:
        """Fold one executed recovery block into the ``recovery.*`` counters.

        Counted per execution (coalesced waiters share one check), from
        the worker's result block — the RECOVERY_METRIC_NAMES catalog.
        """
        self._inc("recovery.checked")
        if recovery.get("violation"):
            self._inc("recovery.violations")
            kind = recovery.get("retry_kind")
            if kind == "selective":
                self._inc("recovery.retries_selective")
            elif kind == "full":
                self._inc("recovery.retries_full")
        else:
            self._inc("recovery.clean")
        if not recovery.get("final_ok", True):
            self._inc("recovery.unrecovered")

    # ------------------------------------------------------------------
    # Introspection payloads (ops and HTTP GET share these)
    # ------------------------------------------------------------------
    def _uptime_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return round(time.monotonic() - self._started_at, 3)

    def healthz_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "serving",
            "protocol": self.config.max_protocol,
            "uptime_s": self._uptime_s(),
            "workers_alive": self._pool.alive_count(),
            "queue_depth": self._queue.qsize(),
        }

    def metrics_payload(self) -> dict:
        with self._metrics_lock:
            data = self.metrics.as_dict()
            latency_buckets = dict(
                self.metrics.histogram("service.latency_ms").buckets
            )
        counters = data["counters"]
        hits = counters.get("service.hits", 0)
        misses = counters.get("service.misses", 0)
        answered = hits + misses
        return {
            "counters": counters,
            "histograms": data["histograms"],
            "gauges": {
                "queue_depth": self._queue.qsize(),
                "in_flight": self._pool.in_flight_count(),
                "workers_alive": self._pool.alive_count(),
                "uptime_s": self._uptime_s(),
                "draining": self._draining,
            },
            "derived": {
                "hit_ratio": round(hits / answered, 6) if answered else None,
                "latency_ms": {
                    "p50": _percentile(latency_buckets, 0.50),
                    "p99": _percentile(latency_buckets, 0.99),
                },
            },
        }

    def config_payload(self) -> dict:
        payload = self.config.as_dict()
        payload["protocol"] = self.config.max_protocol
        payload["store"] = self._store.root if self._store is not None else None
        if self._tcp is not None:
            payload["address"] = list(self.address)
        return payload

    def http_payloads(self) -> dict:
        """``HTTP GET`` path -> payload builder (shared with the fabric
        coordinator, which serves the same paths plus ``/shards``)."""
        return {
            "/healthz": self.healthz_payload,
            "/metrics": self.metrics_payload,
            "/config": self.config_payload,
        }
