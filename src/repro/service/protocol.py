"""Wire protocol of the simulation daemon: newline-delimited JSON.

One request per line, one response line per request, over a plain TCP
connection.  Every message is a JSON object; requests carry an ``op``
and an optional client-chosen ``id`` that the response echoes::

    -> {"op": "submit", "id": 1, "app": "fft", "config": "medium",
        "fault_seed": 3, "workload_seed": 0}
    <- {"id": 1, "ok": true, "result": {"qos": 0.0021, "cached": true, ...}}

    -> {"op": "batch", "id": 2, "items": [{...}, {...}]}
    <- {"id": 2, "ok": true, "results": [{"ok": true, "result": {...}},
                                         {"ok": false, "error": {...}}]}

Failures are structured::

    <- {"id": 1, "ok": false,
        "error": {"code": "overloaded", "message": "...", "retry_after_s": 0.4}}

The daemon additionally answers minimal ``HTTP GET`` requests for
``/healthz``, ``/metrics`` and ``/config`` on the same port (so
``curl`` works against a running daemon); the bodies are the same JSON
payloads as the ``healthz`` / ``metrics`` / ``config`` ops.

Two store-exchange ops (``store_pull`` / ``store_push``) move raw,
self-validating store entries between nodes; they exist for the fabric
coordinator's replication path (FABRIC.md) but are plain daemon ops
any client may use.

The full schema — every op, field, error code and metric — is
documented in SERVICE.md.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Optional

from repro.apps import app_by_name
from repro.hardware.config import (
    AGGRESSIVE,
    BASELINE,
    MEDIUM,
    MILD,
    SOFTWARE,
    HardwareConfig,
)

__all__ = [
    "PROTOCOL_VERSION",
    "OP_STORE_PULL",
    "OP_STORE_PUSH",
    "CONFIGS",
    "CRASH_APP",
    "crash_requests_allowed",
    "ProtocolError",
    "SimRequest",
    "ok_response",
    "error_response",
    "encode_line",
    "decode_line",
    "ERROR_BAD_REQUEST",
    "ERROR_OVERLOADED",
    "ERROR_DEADLINE",
    "ERROR_DRAINING",
    "ERROR_WORKER_CRASHED",
    "ERROR_INTERNAL",
]

PROTOCOL_VERSION = 1

#: Store-exchange ops (raw entry replication between nodes).
OP_STORE_PULL = "store_pull"
OP_STORE_PUSH = "store_push"

#: Named hardware configurations a request may ask for.
CONFIGS: Dict[str, HardwareConfig] = {
    "baseline": BASELINE,
    "mild": MILD,
    "medium": MEDIUM,
    "aggressive": AGGRESSIVE,
    "software": SOFTWARE,
}

# Error codes (the "429-style" vocabulary of the daemon).
ERROR_BAD_REQUEST = "bad_request"
ERROR_OVERLOADED = "overloaded"          # admission queue full; retry later
ERROR_DEADLINE = "deadline_exceeded"
ERROR_DRAINING = "draining"              # daemon is shutting down
ERROR_WORKER_CRASHED = "worker_crashed"  # retry budget exhausted
ERROR_INTERNAL = "internal"

#: Test-only sentinel app: a worker receiving it dies immediately, so
#: the crash-isolation path can be exercised deterministically.  Only
#: honoured when the environment opts in.
CRASH_APP = "__crash__"
_CRASH_ENV = "REPRO_SERVICE_ALLOW_CRASH"


def crash_requests_allowed() -> bool:
    return os.environ.get(_CRASH_ENV) == "1"


class ProtocolError(ValueError):
    """A request that cannot be admitted; carries its error code."""

    def __init__(self, message: str, code: str = ERROR_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


@dataclasses.dataclass(frozen=True)
class SimRequest:
    """One validated simulation request (a single or batch item)."""

    app: str
    config: str
    fault_seed: int = 0
    workload_seed: int = 0
    want_trace_summary: bool = False
    #: Per-request deadline; ``None`` falls back to the server default.
    deadline_ms: Optional[int] = None

    @classmethod
    def from_wire(cls, item: object) -> "SimRequest":
        """Parse and validate one wire item; raises :class:`ProtocolError`."""
        if not isinstance(item, dict):
            raise ProtocolError(f"request item must be an object, got {type(item).__name__}")
        app = item.get("app")
        if not isinstance(app, str) or not app:
            raise ProtocolError("missing or invalid 'app' (expected a string)")
        config = item.get("config", "medium")
        if config not in CONFIGS:
            raise ProtocolError(
                f"unknown config {config!r}; expected one of {sorted(CONFIGS)}"
            )
        if app == CRASH_APP:
            if not crash_requests_allowed():
                raise ProtocolError(f"unknown application {app!r}")
        else:
            try:
                app = app_by_name(app).name
            except KeyError as exc:
                raise ProtocolError(str(exc.args[0])) from None
        fault_seed = item.get("fault_seed", 0)
        workload_seed = item.get("workload_seed", 0)
        for name, value in (("fault_seed", fault_seed), ("workload_seed", workload_seed)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"{name!r} must be an integer, got {value!r}")
        want = item.get("want_trace_summary", False)
        if not isinstance(want, bool):
            raise ProtocolError("'want_trace_summary' must be a boolean")
        deadline_ms = item.get("deadline_ms")
        if deadline_ms is not None:
            if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, int):
                raise ProtocolError("'deadline_ms' must be an integer (milliseconds)")
            if deadline_ms <= 0:
                raise ProtocolError("'deadline_ms' must be positive")
        return cls(
            app=app,
            config=config,
            fault_seed=fault_seed,
            workload_seed=workload_seed,
            want_trace_summary=want,
            deadline_ms=deadline_ms,
        )

    # ------------------------------------------------------------------
    @property
    def is_crash_probe(self) -> bool:
        return self.app == CRASH_APP

    def resolve_key(self):
        """The :class:`~repro.experiments.runkey.RunKey` this names."""
        from repro.experiments.runkey import RunKey

        return RunKey(
            spec=app_by_name(self.app),
            config=CONFIGS[self.config],
            fault_seed=self.fault_seed,
            workload_seed=self.workload_seed,
        )

    def task_payload(self) -> Dict[str, object]:
        """The picklable form dispatched to a worker process."""
        return {
            "app": self.app,
            "config": self.config,
            "fault_seed": self.fault_seed,
            "workload_seed": self.workload_seed,
            "want_trace_summary": self.want_trace_summary,
        }


# ----------------------------------------------------------------------
# Response/message framing helpers
# ----------------------------------------------------------------------


def ok_response(request_id, result_key: str, payload) -> Dict[str, object]:
    response: Dict[str, object] = {"ok": True, result_key: payload}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(
    request_id, code: str, message: str, **extra
) -> Dict[str, object]:
    error: Dict[str, object] = {"code": code, "message": message}
    error.update(extra)
    response: Dict[str, object] = {"ok": False, "error": error}
    if request_id is not None:
        response["id"] = request_id
    return response


def encode_line(message: Dict[str, object]) -> bytes:
    """One message as a newline-terminated JSON line.

    Floats serialise via ``repr`` (Python's ``json``), so QoS values
    round-trip bit-identically through the wire — the daemon's answers
    equal the serial harness's floats exactly.
    """
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable request line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request line must be a JSON object")
    return message
