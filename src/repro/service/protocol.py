"""Wire protocol of the simulation daemon: newline-delimited JSON.

One request per line, one response line per request, over a plain TCP
connection.  Every message is a JSON object; requests carry an ``op``
and an optional client-chosen ``id`` that the response echoes::

    -> {"op": "submit", "id": 1, "app": "fft", "config": "medium",
        "fault_seed": 3, "workload_seed": 0}
    <- {"id": 1, "ok": true, "result": {"qos": 0.0021, "cached": true, ...}}

    -> {"op": "batch", "id": 2, "items": [{...}, {...}]}
    <- {"id": 2, "ok": true, "results": [{"ok": true, "result": {...}},
                                         {"ok": false, "error": {...}}]}

Failures are structured::

    <- {"id": 1, "ok": false,
        "error": {"code": "overloaded", "message": "...", "retry_after_s": 0.4}}

**Protocol version 2** redesigns ``submit`` around intent: a request
names *either* a fixed configuration (``{"app", "config"}``, the v1
shape, still accepted and answered bit-identically) *or* a QoS budget
(``{"app", "qos_budget": 0.05}``), letting the daemon's online tuner
(:mod:`repro.tuner`) choose the per-mechanism approximation levels.
Budget requests may not carry ``config`` or seeds — the controller
owns the sampling schedule — and their results add ``qos_budget``,
``levels``, ``energy``, ``within_budget`` and a ``tuner`` block to the
v1 result fields.  A daemon pinned to protocol 1 (or any pre-v2
daemon) answers budget submits with a clean ``unsupported_op`` error
envelope, never a hang.  ``deadline_ms`` gained an explicit zero: v1
rejected ``0``; v2 defines ``0`` as *no deadline* (overriding the
server default) and still rejects negatives.

**Protocol version 3** adds guaranteed-quality mode: a fixed-config
submit may carry ``recover: "selective" | "precise"``, gating the
output through its per-app acceptability check with selective precise
re-execution on violation (:mod:`repro.recovery`).  Recovered results
add a ``recovery`` block (the check verdict, retry kind, disabled/kept
mechanisms and honest attempt/retry energy) to the v1 result fields;
the ``qos`` reported is that of the *delivered* output.  ``recover`` is
mutually exclusive with ``qos_budget`` (the tuner steers toward a
budget; recovery enforces a per-output predicate — one authority per
request) and with ``want_trace_summary`` (a retry would make the trace
ambiguous).  v1/v2 requests stay bit-identical; a daemon pinned below
protocol 3 answers recover submits with ``unsupported_op``.

The daemon additionally answers minimal ``HTTP GET`` requests for
``/healthz``, ``/metrics`` and ``/config`` on the same port (so
``curl`` works against a running daemon); the bodies are the same JSON
payloads as the ``healthz`` / ``metrics`` / ``config`` ops.

Two store-exchange ops (``store_pull`` / ``store_push``) move raw,
self-validating payloads between nodes: run-store entries, and (v2)
online-tuner controller states, distinguished by their ``kind``
marker.  They exist for the fabric coordinator's replication path
(FABRIC.md) but are plain daemon ops any client may use.

The full schema — every op, field, error code and metric — is
documented in SERVICE.md; the catalogs at the bottom of this module
are drift-pinned to it by ``tests/test_docs.py``.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from typing import Dict, Optional, Tuple

from repro.apps import app_by_name
from repro.hardware.config import (
    AGGRESSIVE,
    BASELINE,
    MEDIUM,
    MILD,
    SOFTWARE,
    HardwareConfig,
)

__all__ = [
    "PROTOCOL_VERSION",
    "OP_STORE_PULL",
    "OP_STORE_PUSH",
    "CONFIGS",
    "CRASH_APP",
    "crash_requests_allowed",
    "ProtocolError",
    "SimRequest",
    "ok_response",
    "error_response",
    "encode_line",
    "decode_line",
    "ERROR_BAD_REQUEST",
    "ERROR_OVERLOADED",
    "ERROR_DEADLINE",
    "ERROR_DRAINING",
    "ERROR_WORKER_CRASHED",
    "ERROR_INTERNAL",
    "ERROR_UNSUPPORTED",
    "MESSAGE_TYPES",
    "ERROR_CODES",
    "METRIC_NAMES",
]

#: v2 added budget submits (``qos_budget``), the tuner result fields,
#: tuner-state store exchange and the explicit ``deadline_ms: 0``.
#: v3 added recover submits (``recover``) and the ``recovery`` result
#: block (guaranteed-quality mode).
PROTOCOL_VERSION = 3

#: Store-exchange ops (raw entry replication between nodes).
OP_STORE_PULL = "store_pull"
OP_STORE_PUSH = "store_push"

#: Named hardware configurations a request may ask for.
CONFIGS: Dict[str, HardwareConfig] = {
    "baseline": BASELINE,
    "mild": MILD,
    "medium": MEDIUM,
    "aggressive": AGGRESSIVE,
    "software": SOFTWARE,
}

# Error codes (the "429-style" vocabulary of the daemon).
ERROR_BAD_REQUEST = "bad_request"
ERROR_OVERLOADED = "overloaded"          # admission queue full; retry later
ERROR_DEADLINE = "deadline_exceeded"
ERROR_DRAINING = "draining"              # daemon is shutting down
ERROR_WORKER_CRASHED = "worker_crashed"  # retry budget exhausted
ERROR_INTERNAL = "internal"
ERROR_UNSUPPORTED = "unsupported_op"     # protocol feature beyond this node

#: Test-only sentinel app: a worker receiving it dies immediately, so
#: the crash-isolation path can be exercised deterministically.  Only
#: honoured when the environment opts in.
CRASH_APP = "__crash__"
_CRASH_ENV = "REPRO_SERVICE_ALLOW_CRASH"


def crash_requests_allowed() -> bool:
    return os.environ.get(_CRASH_ENV) == "1"


class ProtocolError(ValueError):
    """A request that cannot be admitted; carries its error code."""

    def __init__(self, message: str, code: str = ERROR_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


@dataclasses.dataclass(frozen=True)
class SimRequest:
    """One validated simulation request (a single or batch item).

    Exactly one of two intents: a **fixed config** (``config`` set,
    ``qos_budget`` None — the v1 shape) or a **budget** (``qos_budget``
    set, ``config`` None).  ``levels`` is never wire-parsed: the server
    resolves a budget request into a concrete level vector through its
    tuner and re-issues the request with ``levels`` set
    (:meth:`with_levels`) so the execution path downstream is uniform.
    """

    app: str
    config: Optional[str] = "medium"
    fault_seed: int = 0
    workload_seed: int = 0
    want_trace_summary: bool = False
    #: Per-request deadline; ``None`` falls back to the server default,
    #: ``0`` explicitly disables any deadline (v2).
    deadline_ms: Optional[int] = None
    #: QoS-error budget; the server's tuner picks the levels (v2).
    qos_budget: Optional[float] = None
    #: Resolved per-mechanism levels, sorted items (server-internal).
    levels: Optional[Tuple[Tuple[str, int], ...]] = None
    #: Guaranteed-quality mode: check + selective re-execution (v3).
    recover: Optional[str] = None

    @classmethod
    def from_wire(cls, item: object) -> "SimRequest":
        """Parse and validate one wire item; raises :class:`ProtocolError`."""
        if not isinstance(item, dict):
            raise ProtocolError(f"request item must be an object, got {type(item).__name__}")
        app = item.get("app")
        if not isinstance(app, str) or not app:
            raise ProtocolError("missing or invalid 'app' (expected a string)")
        qos_budget = item.get("qos_budget")
        if qos_budget is not None:
            if "config" in item:
                raise ProtocolError(
                    "'config' and 'qos_budget' are mutually exclusive: a request "
                    "names a fixed configuration or a budget, not both"
                )
            for seed_field in ("fault_seed", "workload_seed"):
                if seed_field in item:
                    raise ProtocolError(
                        f"{seed_field!r} is not accepted with 'qos_budget': the "
                        "online tuner owns the sampling schedule"
                    )
            if isinstance(qos_budget, bool) or not isinstance(qos_budget, (int, float)):
                raise ProtocolError("'qos_budget' must be a number (QoS error budget)")
            qos_budget = float(qos_budget)
            if not math.isfinite(qos_budget) or qos_budget <= 0:
                raise ProtocolError("'qos_budget' must be positive and finite")
            config = None
        else:
            config = item.get("config", "medium")
            if config not in CONFIGS:
                raise ProtocolError(
                    f"unknown config {config!r}; expected one of {sorted(CONFIGS)}"
                )
        if app == CRASH_APP:
            if not crash_requests_allowed():
                raise ProtocolError(f"unknown application {app!r}")
        else:
            try:
                app = app_by_name(app).name
            except KeyError as exc:
                raise ProtocolError(str(exc.args[0])) from None
        fault_seed = item.get("fault_seed", 0)
        workload_seed = item.get("workload_seed", 0)
        for name, value in (("fault_seed", fault_seed), ("workload_seed", workload_seed)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"{name!r} must be an integer, got {value!r}")
        want = item.get("want_trace_summary", False)
        if not isinstance(want, bool):
            raise ProtocolError("'want_trace_summary' must be a boolean")
        recover = item.get("recover")
        if recover is not None:
            from repro.recovery.catalog import RECOVERY_MODES

            if recover not in RECOVERY_MODES:
                raise ProtocolError(
                    f"unknown recover mode {recover!r}; expected one of "
                    f"{', '.join(RECOVERY_MODES)}"
                )
            if qos_budget is not None:
                raise ProtocolError(
                    "'recover' and 'qos_budget' are mutually exclusive: the "
                    "tuner steers toward a budget, recovery enforces a "
                    "per-output predicate — one quality authority per request"
                )
            if want:
                raise ProtocolError(
                    "'recover' and 'want_trace_summary' are mutually "
                    "exclusive: a recovery retry would make the trace "
                    "summary ambiguous"
                )
        deadline_ms = item.get("deadline_ms")
        if deadline_ms is not None:
            if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, int):
                raise ProtocolError("'deadline_ms' must be an integer (milliseconds)")
            if deadline_ms < 0:
                raise ProtocolError("'deadline_ms' must be >= 0 (0 = no deadline)")
        return cls(
            app=app,
            config=config,
            fault_seed=fault_seed,
            workload_seed=workload_seed,
            want_trace_summary=want,
            deadline_ms=deadline_ms,
            qos_budget=qos_budget,
            recover=recover,
        )

    # ------------------------------------------------------------------
    @property
    def is_crash_probe(self) -> bool:
        return self.app == CRASH_APP

    @property
    def is_budget(self) -> bool:
        """A v2 budget request still awaiting tuner level resolution."""
        return self.qos_budget is not None

    def effective_deadline_ms(self, default_ms: int) -> Optional[int]:
        """The deadline this request runs under (None = unbounded).

        ``None`` on the wire falls back to the server default; ``0`` on
        the wire — or a zero default — means no deadline at all.
        """
        deadline_ms = self.deadline_ms
        if deadline_ms is None:
            deadline_ms = default_ms
        return deadline_ms if deadline_ms else None

    def with_levels(
        self, levels: Dict[str, int], fault_seed: int, workload_seed: int
    ) -> "SimRequest":
        """A budget request resolved to concrete levels and seeds.

        The result is executable by the same store/worker path as a
        fixed-config request; ``config`` stays ``None`` and ``levels``
        carries the tuner's choice.
        """
        return dataclasses.replace(
            self,
            levels=tuple(sorted(levels.items())),
            fault_seed=fault_seed,
            workload_seed=workload_seed,
        )

    def resolve_config(self) -> HardwareConfig:
        """The concrete :class:`HardwareConfig` this request runs."""
        if self.levels is not None:
            from repro.tuner.search import compose_config

            return compose_config(dict(self.levels), name=f"tuned:{self.app}")
        if self.config is None:
            raise ProtocolError(
                "budget request has no resolved levels yet", code=ERROR_INTERNAL
            )
        return CONFIGS[self.config]

    def resolve_key(self):
        """The :class:`~repro.experiments.runkey.RunKey` this names."""
        from repro.experiments.runkey import RunKey

        return RunKey(
            spec=app_by_name(self.app),
            config=self.resolve_config(),
            fault_seed=self.fault_seed,
            workload_seed=self.workload_seed,
        )

    def task_payload(self) -> Dict[str, object]:
        """The picklable form dispatched to a worker process."""
        payload: Dict[str, object] = {
            "app": self.app,
            "fault_seed": self.fault_seed,
            "workload_seed": self.workload_seed,
            "want_trace_summary": self.want_trace_summary,
        }
        if self.levels is not None:
            payload["levels"] = dict(self.levels)
        else:
            payload["config"] = self.config
        if self.recover is not None:
            payload["recover"] = self.recover
        return payload


# ----------------------------------------------------------------------
# Response/message framing helpers
# ----------------------------------------------------------------------


def ok_response(request_id, result_key: str, payload) -> Dict[str, object]:
    response: Dict[str, object] = {"ok": True, result_key: payload}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(
    request_id, code: str, message: str, **extra
) -> Dict[str, object]:
    error: Dict[str, object] = {"code": code, "message": message}
    error.update(extra)
    response: Dict[str, object] = {"ok": False, "error": error}
    if request_id is not None:
        response["id"] = request_id
    return response


def encode_line(message: Dict[str, object]) -> bytes:
    """One message as a newline-terminated JSON line.

    Floats serialise via ``repr`` (Python's ``json``), so QoS values
    round-trip bit-identically through the wire — the daemon's answers
    equal the serial harness's floats exactly.
    """
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable request line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request line must be a JSON object")
    return message


# ----------------------------------------------------------------------
# The v2 schema catalogs — data only, drift-pinned to SERVICE.md by
# tests/test_docs.py (the spec cannot drift from the code).
# ----------------------------------------------------------------------

#: Every op the daemon answers, with the client-facing response field.
MESSAGE_TYPES = {
    "submit": "one simulation request (fixed config or qos_budget) -> {ok, result}",
    "batch": "a list of submit items -> {ok, results} in item order",
    "healthz": "liveness + protocol version -> {ok, healthz}",
    "metrics": "the daemon's MetricsRegistry + gauges -> {ok, metrics}",
    "config": "the effective ServiceConfig -> {ok, config}",
    OP_STORE_PULL: "raw payload (run entry or tuner state) for a digest -> {ok, entry}",
    OP_STORE_PUSH: "install a raw payload (run entry or tuner state) -> {ok, stored}",
}

#: Every structured error code a daemon response may carry.
ERROR_CODES = {
    ERROR_BAD_REQUEST: "malformed request item or unknown op",
    ERROR_OVERLOADED: "admission queue full; retry after retry_after_s",
    ERROR_DEADLINE: "deadline expired (queued or awaiting execution)",
    ERROR_DRAINING: "daemon is shutting down; resubmit elsewhere",
    ERROR_WORKER_CRASHED: "crash retry budget exhausted for this request",
    ERROR_INTERNAL: "unexpected failure executing the request",
    ERROR_UNSUPPORTED: "request needs a protocol feature beyond this node (e.g. qos_budget against protocol 1)",
}


def _service_metric_names() -> Dict[str, str]:
    from repro.recovery.catalog import RECOVERY_METRIC_NAMES
    from repro.tuner.catalog import TUNER_METRIC_NAMES

    names = {
        "service.requests_total": "submit items admitted (batch items count 1 each)",
        "service.batches_total": "batch ops received",
        "service.bad_requests": "requests rejected at validation",
        "service.hits": "requests answered inline from the run store",
        "service.misses": "requests that executed on a worker",
        "service.coalesced": "requests that joined an identical in-flight miss",
        "service.rejected": "requests refused by admission-queue backpressure",
        "service.rejected_draining": "requests refused while draining",
        "service.deadline_expired": "waiters abandoned by their deadline",
        "service.worker_restarts": "worker processes respawned after a death",
        "service.worker_crash_failures": "requests failed after the crash retry budget",
        "service.store_pulls": "store_pull ops served",
        "service.store_pushes": "store_push ops served",
        "service.latency_ms": "histogram: request latency (admission to answer)",
    }
    names.update(TUNER_METRIC_NAMES)
    names.update(RECOVERY_METRIC_NAMES)
    return names


#: Every counter/histogram the daemon's metrics payload may carry,
#: including the online tuner's ``tuner.*`` and the recovery runtime's
#: ``recovery.*`` catalogs.
METRIC_NAMES = _service_metric_names()
