"""Optional routing of harness QoS queries through a running daemon.

When a route is installed (``repro experiments --via-service`` does
this), :func:`repro.experiments.harness.qos_error` sends eligible
queries to the daemon instead of simulating locally, and
:func:`~repro.experiments.harness.mean_qos` ships its whole seed range
as one batch — the daemon answers cached cells inline and fans misses
across its warm workers.  Daemon answers are bit-identical to local
execution (same code, same seeds, exact float transport), so routing
never changes results, only where the work happens.

Eligibility is conservative: only registered suite apps under the
named protocol configurations route; anything else (test-local specs,
ablation configs, explicit argument overrides) silently falls back to
local execution.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence

__all__ = [
    "ServiceRoute",
    "set_service_route",
    "clear_service_route",
    "active_service_route",
    "routed",
]

_ROUTE: Optional["ServiceRoute"] = None


class ServiceRoute:
    """A harness-side view of one :class:`ServiceClient` connection."""

    def __init__(self, client) -> None:
        self._client = client

    # ------------------------------------------------------------------
    def accepts(self, key) -> bool:
        """Whether this run can be named on the wire protocol."""
        from repro.apps import app_by_name
        from repro.service.protocol import CONFIGS

        config_name = getattr(key.config, "name", None)
        if CONFIGS.get(config_name) != key.config:
            return False
        try:
            return app_by_name(key.spec.name) == key.spec
        except KeyError:
            return False

    def qos(self, key) -> float:
        """The daemon-computed QoS error for one run."""
        return self._client.submit(
            key.spec.name,
            key.config.name,
            fault_seed=key.fault_seed,
            workload_seed=key.workload_seed,
        ).qos

    def qos_batch(self, keys: Sequence) -> List[float]:
        """Per-key QoS errors for a seed range, one batched round trip."""
        results = self._client.submit_batch(
            [
                {
                    "app": key.spec.name,
                    "config": key.config.name,
                    "fault_seed": key.fault_seed,
                    "workload_seed": key.workload_seed,
                }
                for key in keys
            ]
        )
        return [result.qos for result in results]


def set_service_route(client) -> ServiceRoute:
    """Install a route over ``client``; returns it."""
    global _ROUTE
    _ROUTE = ServiceRoute(client)
    return _ROUTE


def clear_service_route() -> None:
    global _ROUTE
    _ROUTE = None


def active_service_route() -> Optional[ServiceRoute]:
    """The installed route, or ``None`` (the default: local execution)."""
    return _ROUTE


@contextlib.contextmanager
def routed(client) -> Iterator[ServiceRoute]:
    """Context manager: install a route, restore the previous on exit."""
    global _ROUTE
    previous = _ROUTE
    route = ServiceRoute(client)
    _ROUTE = route
    try:
        yield route
    finally:
        _ROUTE = previous
