"""Optional routing of harness QoS queries through a running daemon.

When a route is installed (``repro experiments --via-service`` and
``--via-fleet`` do this), :func:`repro.experiments.harness.qos_error`
sends eligible queries to the daemon instead of simulating locally,
and :func:`~repro.experiments.harness.mean_qos` ships its whole seed
range as one batch — the daemon answers cached cells inline and fans
misses across its warm workers (or, for a fabric coordinator, across
its whole fleet).  Daemon answers are bit-identical to local execution
(same code, same seeds, exact float transport), so routing never
changes results, only where the work happens.

Eligibility is conservative: only registered suite apps under the
named protocol configurations route; anything else (test-local specs,
ablation configs, explicit argument overrides) silently falls back to
local execution.

A route built with ``fallback_local=True`` (the ``--via-fleet``
default) additionally survives losing its service mid-campaign: the
first :class:`~repro.service.ServiceError` marks the route *lost*, the
query returns ``None``, and the harness re-runs it locally — from then
on :meth:`ServiceRoute.accepts` answers ``False`` and the campaign
continues on local execution (``--batch``/``--jobs`` still compose).
Without the flag a service loss raises, which is the right behaviour
for ``--via-service`` pointed at one explicit daemon.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence

__all__ = [
    "ServiceRoute",
    "set_service_route",
    "clear_service_route",
    "active_service_route",
    "routed",
]

_ROUTE: Optional["ServiceRoute"] = None


class ServiceRoute:
    """A harness-side view of one :class:`ServiceClient` connection.

    The client may point at a single daemon or a fabric coordinator —
    the wire surface is identical (FABRIC.md), so the route cannot and
    need not tell the difference.
    """

    def __init__(self, client, fallback_local: bool = False) -> None:
        self._client = client
        self._fallback_local = fallback_local
        self._lost = False

    # ------------------------------------------------------------------
    @property
    def lost(self) -> bool:
        """True once the service failed and local execution took over."""
        return self._lost

    def accepts(self, key) -> bool:
        """Whether this run can be named on the wire protocol.

        Tuner-composed configs (``tuned:*``) never route even under
        protocol v2: a fixed-config submit names only the catalogued
        levels, and budget submits belong to the *daemon's* controllers
        — a local tuner driving its own probes must execute them
        locally, or its feedback loop would entangle with the remote
        one.
        """
        if self._lost:
            return False
        from repro.apps import app_by_name
        from repro.service.protocol import CONFIGS

        config_name = getattr(key.config, "name", None)
        if config_name is None or config_name.startswith("tuned:"):
            return False
        if CONFIGS.get(config_name) != key.config:
            return False
        try:
            return app_by_name(key.spec.name) == key.spec
        except KeyError:
            return False

    def _on_service_error(self, error: Exception) -> None:
        """Mark the route lost, or re-raise for strict routes."""
        if not self._fallback_local:
            raise error
        self._lost = True

    def qos(self, key) -> Optional[float]:
        """The daemon-computed QoS error for one run.

        ``None`` means the service was lost mid-query and the caller
        should execute locally (only possible with ``fallback_local``).
        """
        from repro.service.client import ServiceError

        try:
            return self._client.submit(
                key.spec.name,
                key.config.name,
                fault_seed=key.fault_seed,
                workload_seed=key.workload_seed,
            ).qos
        except ServiceError as error:
            self._on_service_error(error)
            return None

    def qos_batch(self, keys: Sequence) -> Optional[List[float]]:
        """Per-key QoS errors for a seed range, one batched round trip.

        ``None`` signals a lost service exactly like :meth:`qos`.
        """
        from repro.service.client import ServiceError

        try:
            results = self._client.submit_batch(
                [
                    {
                        "app": key.spec.name,
                        "config": key.config.name,
                        "fault_seed": key.fault_seed,
                        "workload_seed": key.workload_seed,
                    }
                    for key in keys
                ]
            )
        except ServiceError as error:
            self._on_service_error(error)
            return None
        return [result.qos for result in results]


def set_service_route(client, fallback_local: bool = False) -> ServiceRoute:
    """Install a route over ``client``; returns it."""
    global _ROUTE
    _ROUTE = ServiceRoute(client, fallback_local=fallback_local)
    return _ROUTE


def clear_service_route() -> None:
    global _ROUTE
    _ROUTE = None


def active_service_route() -> Optional[ServiceRoute]:
    """The installed route, or ``None`` (the default: local execution)."""
    return _ROUTE


@contextlib.contextmanager
def routed(client, fallback_local: bool = False) -> Iterator[ServiceRoute]:
    """Context manager: install a route, restore the previous on exit."""
    global _ROUTE
    previous = _ROUTE
    route = ServiceRoute(client, fallback_local=fallback_local)
    _ROUTE = route
    try:
        yield route
    finally:
        _ROUTE = previous
