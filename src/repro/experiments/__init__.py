"""Experiment drivers regenerating every table and figure of the paper.

Run any driver as a module::

    python -m repro.experiments.table2        # approximation strategies
    python -m repro.experiments.table3        # apps + annotation density
    python -m repro.experiments.figure3       # fraction approximate
    python -m repro.experiments.figure4       # estimated energy
    python -m repro.experiments.figure5       # output error (20 runs/bar)
    python -m repro.experiments.sensitivity   # Sec. 6.2 isolation + error modes
    python -m repro.experiments.ablation      # line size, energy split, software substrate
    python -m repro.experiments.autotune      # per-app QoS-budgeted tuning
    python -m repro.experiments.static_vs_dynamic  # the motivation, quantified
    python -m repro.experiments.online_monitor    # Green-style controller
"""

from repro.experiments.executor import (
    ExecutorError,
    Job,
    qos_errors,
    run_jobs,
)
from repro.experiments.harness import (
    RunResult,
    clear_caches,
    compiled_app,
    mean_qos,
    precise_output,
    qos_error,
    run_app,
    run_key,
)
from repro.experiments.runkey import RunKey

__all__ = [
    "RunKey",
    "run_key",
    "run_app",
    "qos_error",
    "mean_qos",
    "precise_output",
    "compiled_app",
    "clear_caches",
    "RunResult",
    "Job",
    "ExecutorError",
    "run_jobs",
    "qos_errors",
]
