"""Static vs. dynamic isolation enforcement (the paper's motivation).

The introduction argues that annotations without static guarantees are
"either unsafe ... or need dynamic checks that end up consuming energy.
... we need to guarantee safety statically to avoid spending energy
checking properties at runtime.  Importantly, employing static analysis
eliminates the need for dynamic checks, further improving energy
savings."

This experiment quantifies that claim on our measured runs with an
explicit cost model for a hypothetical dynamic information-flow
monitor (the checked semantics of Section 3.2 implemented at runtime
instead of proved away):

* every stored word carries a one-bit precision tag
  (``TAG_STORAGE_OVERHEAD`` = 1/32 extra byte-ticks, SRAM and DRAM);
* every arithmetic operation performs a tag combine-and-check, modelled
  as one extra **precise** integer micro-operation (the checks guard
  isolation, so they may not themselves be approximated).

Energy is computed in absolute units: per-byte-tick storage energy
constants are calibrated per application so that on the unmonitored
precise run the component shares match the Section 5.4 model
(instructions 65% / SRAM 35% of CPU; CPU 55% / DRAM 45% of system).
The same constants then price the monitored run, whose instruction and
tag-storage counts are larger.  Both variants are normalised to the
*unchecked precise* baseline, so the dynamic column can exceed 100%.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.apps import ALL_APPS, AppSpec
from repro.energy.model import SERVER, EnergyParameters
from repro.experiments.harness import RunKey, run_key
from repro.hardware.config import BASELINE, MEDIUM, HardwareConfig
from repro.runtime.stats import RunStats

__all__ = [
    "TAG_STORAGE_OVERHEAD",
    "dynamic_enforcement_stats",
    "static_vs_dynamic_rows",
    "format_static_vs_dynamic",
    "main",
]

#: One tag bit per 32-bit word.
TAG_STORAGE_OVERHEAD = 1.0 / 32.0


def dynamic_enforcement_stats(stats: RunStats) -> RunStats:
    """The same run's statistics under the dynamic-monitor cost model."""
    tag_checks = stats.ops_total
    scale = 1.0 + TAG_STORAGE_OVERHEAD
    return dataclasses.replace(
        stats,
        int_ops_precise=stats.int_ops_precise + tag_checks,
        dram_approx_byte_ticks=int(stats.dram_approx_byte_ticks * scale),
        dram_precise_byte_ticks=int(stats.dram_precise_byte_ticks * scale),
        sram_approx_byte_ticks=int(stats.sram_approx_byte_ticks * scale),
        sram_precise_byte_ticks=int(stats.sram_precise_byte_ticks * scale),
    )


def _calibrate(stats: RunStats, params: EnergyParameters) -> Tuple[float, float]:
    """Per-byte-tick energy constants anchoring the Section 5.4 shares.

    Returns (sram unit, dram unit) such that, for this run executed
    precisely, SRAM is 35% of CPU energy and DRAM 45% of system energy.
    """
    instruction_units = (
        stats.int_ops_total * params.int_op_units
        + stats.fp_ops_total * params.fp_op_units
    )
    sram_ticks = stats.sram_approx_byte_ticks + stats.sram_precise_byte_ticks
    dram_ticks = stats.dram_approx_byte_ticks + stats.dram_precise_byte_ticks

    share = params.sram_share_of_cpu
    sram_unit = (
        instruction_units * share / (1.0 - share) / sram_ticks if sram_ticks else 0.0
    )
    cpu_units = instruction_units + sram_unit * sram_ticks
    dram_unit = (
        cpu_units
        * params.dram_share_of_system
        / params.cpu_share_of_system
        / dram_ticks
        if dram_ticks
        else 0.0
    )
    return sram_unit, dram_unit


def _absolute_cost(
    stats: RunStats,
    config: HardwareConfig,
    params: EnergyParameters,
    sram_unit: float,
    dram_unit: float,
) -> float:
    """Total energy in absolute units under one configuration."""
    int_exec = params.int_op_units - params.fetch_decode_units
    fp_exec = params.fp_op_units - params.fetch_decode_units
    instructions = (
        stats.int_ops_total * params.fetch_decode_units
        + stats.int_ops_precise * int_exec
        + stats.int_ops_approx * int_exec * (1.0 - config.int_op_saving)
        + stats.fp_ops_total * params.fetch_decode_units
        + stats.fp_ops_precise * fp_exec
        + stats.fp_ops_approx * fp_exec * (1.0 - config.fp_op_saving)
    )
    sram = sram_unit * (
        stats.sram_precise_byte_ticks
        + stats.sram_approx_byte_ticks * (1.0 - config.sram_power_saving)
    )
    dram = dram_unit * (
        stats.dram_precise_byte_ticks
        + stats.dram_approx_byte_ticks * (1.0 - config.dram_power_saving)
    )
    return instructions + sram + dram


def static_vs_dynamic_rows(
    config: HardwareConfig = MEDIUM,
    params: EnergyParameters = SERVER,
    apps: List[AppSpec] = None,
) -> List[Dict[str, float]]:
    """Energy with static enforcement vs. with a dynamic monitor."""
    rows = []
    for spec in apps if apps is not None else ALL_APPS:
        stats = run_key(
            RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=0)
        ).stats
        sram_unit, dram_unit = _calibrate(stats, params)
        baseline_cost = _absolute_cost(stats, BASELINE, params, sram_unit, dram_unit)

        static_cost = _absolute_cost(stats, config, params, sram_unit, dram_unit)
        monitored = dynamic_enforcement_stats(stats)
        dynamic_cost = _absolute_cost(monitored, config, params, sram_unit, dram_unit)

        rows.append(
            {
                "app": spec.name,
                "static": static_cost / baseline_cost,
                "dynamic": dynamic_cost / baseline_cost,
                "penalty": (dynamic_cost - static_cost) / baseline_cost,
            }
        )
    return rows


def format_static_vs_dynamic(rows: List[Dict[str, float]] = None, config=MEDIUM) -> str:
    if rows is None:
        rows = static_vs_dynamic_rows(config)
    header = (
        f"{'Application':14s} {'static':>8s} {'dynamic':>8s} {'penalty':>8s}"
        f"   (vs unchecked precise baseline)"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s} {row['static']:>8.1%} {row['dynamic']:>8.1%} "
            f"{row['penalty']:>8.1%}"
        )
    mean_penalty = sum(r["penalty"] for r in rows) / len(rows)
    lines.append("-" * len(header))
    lines.append(f"{'mean penalty':14s} {'':>8s} {'':>8s} {mean_penalty:>8.1%}")
    return "\n".join(lines)


def main() -> None:
    print("Static vs dynamic isolation enforcement (Medium config)")
    print(format_static_vs_dynamic())


if __name__ == "__main__":
    main()
