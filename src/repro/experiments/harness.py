"""Experiment harness: compile apps once, run them under configurations.

The harness is what every table/figure driver builds on:

* :func:`compiled_app` — check + instrument an application (cached).
* :func:`run_key` — one execution named by a
  :class:`~repro.experiments.runkey.RunKey`; returns the output and the
  collected :class:`~repro.runtime.stats.RunStats`.  When a persistent
  run store (:mod:`repro.store`) is active, completed runs are served
  from it and fresh runs are written through to it, so repeated
  campaigns never pay for the same cell twice.
* :func:`run_app` — the historical keyword spelling of :func:`run_key`
  (kept as a thin wrapper; new code should build a RunKey).
* :func:`qos_error` — QoS error of an approximate run against the
  precise (baseline-configuration) output for the same workload seed.
* :func:`mean_qos` — mean error over N seeds (Figure 5 runs 20); with
  ``jobs > 1`` the seeds fan out across a process pool through
  :mod:`repro.experiments.executor`, and ``batch > 1`` sweeps seed
  blocks through one vectorized execution each — bit-identical results
  either way.
* :func:`clear_caches` — reset the compiled-program and precise-output
  caches *and* close the active run store, so test runs cannot leak
  state across configurations.

When a service route is installed (:mod:`repro.service.routing`;
``repro experiments --via-service`` or ``--via-fleet``), eligible
:func:`qos_error` / :func:`mean_qos` queries go to a running daemon or
fabric coordinator instead of simulating locally — same floats, pinned
by ``tests/test_service.py`` and ``tests/test_fabric_fleet.py``.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, Optional, Tuple, Union

from repro.apps import AppSpec, load_sources
from repro.core.pipeline import CompiledProgram, compile_program
from repro.experiments.runkey import RunKey
from repro.hardware.config import BASELINE, HardwareConfig
from repro.runtime import RunStats, Simulator

__all__ = [
    "compiled_app",
    "run_key",
    "run_keys_batch",
    "run_app",
    "qos_error",
    "mean_qos",
    "RunKey",
    "RunResult",
    "precise_output",
    "clear_caches",
]

_PROGRAM_CACHE: Dict[str, CompiledProgram] = {}


@dataclasses.dataclass(frozen=True)
class RunResult:
    """One simulated execution of an application."""

    output: object
    stats: RunStats


def compiled_app(spec: AppSpec) -> CompiledProgram:
    """The checked + instrumented program for an app (cached by name)."""
    program = _PROGRAM_CACHE.get(spec.name)
    if program is None:
        program = compile_program(load_sources(spec))
        _PROGRAM_CACHE[spec.name] = program
    return program


def _workload_args(spec: AppSpec, workload_seed: int) -> Tuple:
    """Deprecated: use :meth:`AppSpec.workload_args`.

    Historically the harness assumed "the last default argument is the
    workload seed"; the slot is now declared explicitly (and validated
    at load time) on :class:`AppSpec` itself.
    """
    warnings.warn(
        "_workload_args() is deprecated; use AppSpec.workload_args()",
        DeprecationWarning,
        stacklevel=2,
    )
    return spec.workload_args(workload_seed)


def _active_store():
    # Imported lazily: repro.store imports RunKey from this package.
    from repro.store import active_store

    return active_store()


def run_key(
    key: RunKey,
    args: Optional[Tuple] = None,
    tracer=None,
) -> RunResult:
    """Execute the run named by ``key``; serve/fill the run store.

    ``tracer`` (a :class:`repro.observability.tracer.Tracer`) records
    structured fault/energy events; tracing never perturbs the
    simulation — outputs and stats are bit-identical either way.

    Store interaction: a cached entry short-circuits the simulation
    entirely (the stored output and stats are bit-identical to a fresh
    run's, pinned by ``tests/test_store.py``).  Runs with explicit
    ``args`` overrides or an attached tracer bypass the lookup — the
    key's digest only describes the default workload-argument shape,
    and traced runs must actually execute to produce events (they still
    write through, with a trace summary, via the observability runner).
    """
    cacheable = args is None and tracer is None
    store = _active_store() if cacheable else None
    if store is not None:
        entry = store.get(key)
        if entry is not None:
            return RunResult(output=entry.output, stats=entry.stats)
    program = compiled_app(key.spec)
    call_args = args if args is not None else key.workload_args
    with Simulator(key.config, seed=key.fault_seed, tracer=tracer) as simulator:
        output = program.call(key.spec.entry_module, key.spec.entry_function, *call_args)
    result = RunResult(output=output, stats=simulator.stats())
    if store is not None:
        store.put(key, result.output, result.stats)
    return result


def run_keys_batch(keys, engine: str = "auto", recover=None) -> "list[RunResult]":
    """Execute a block of runs in one batched simulation.

    ``keys`` must share the app, config and workload seed and differ
    only in ``fault_seed`` — the shape :func:`mean_qos` and the figure
    drivers produce.  One :class:`~repro.runtime.batch.BatchSimulator`
    execution sweeps all the fault seeds at once; per-lane results are
    bit-identical to :func:`run_key` per seed (pinned by
    ``tests/test_batch_differential.py``).

    ``recover`` (a :class:`repro.recovery.RecoveryPolicy` or mode
    string) gates every lane through its acceptability check and
    replaces violating lanes with their recovered re-execution
    (:mod:`repro.recovery.reexec`); the delivered per-lane results are
    bit-identical to :func:`repro.recovery.run_recovered` per key.

    The run store is honoured exactly like the serial path: cached
    lanes are served without simulating, only the misses run batched,
    and every fresh lane is written through under its own key.

    Correct-by-fallback: configurations the batch engine cannot model
    (load elision) and executions whose lanes diverge into precise
    control flow (``LaneDivergenceError``, or any other failure of the
    batched attempt) are rerun serially through :func:`run_key`, so a
    batch call never changes results — only, usually, their cost.
    """
    keys = list(keys)
    if not keys:
        return []
    if recover is not None:
        # Imported lazily: the recovery runtime builds on this module.
        from repro.recovery.reexec import RecoveryPolicy, run_recovered_batch

        policy = RecoveryPolicy.coerce(recover)
        recovered = run_recovered_batch(keys, policy, engine=engine)
        return [item.result for item in recovered]
    first = keys[0]
    for key in keys[1:]:
        if (
            key.spec.name != first.spec.name
            or key.config != first.config
            or key.workload_seed != first.workload_seed
        ):
            raise ValueError(
                "run_keys_batch needs keys sharing app, config and "
                "workload seed (only fault_seed may vary)"
            )
    if len(keys) == 1:
        # A single lane is exactly a serial run; route it through the
        # pre-batch path so batch=1 is trivially bit-identical.
        return [run_key(keys[0])]
    store = _active_store()
    results: Dict[int, RunResult] = {}
    pending = list(range(len(keys)))
    if store is not None:
        pending = []
        for index, key in enumerate(keys):
            entry = store.get(key)
            if entry is not None:
                results[index] = RunResult(output=entry.output, stats=entry.stats)
            else:
                pending.append(index)
    if pending:
        pending_keys = [keys[index] for index in pending]
        try:
            fresh = _run_keys_batch_fresh(pending_keys, engine)
        except KeyboardInterrupt:
            raise
        except Exception:
            # Serial fallback: run_key consults and fills the store
            # itself, so no extra write-through below.
            for index, key in zip(pending, pending_keys):
                results[index] = run_key(key)
            return [results[index] for index in range(len(keys))]
        for index, result in zip(pending, fresh):
            results[index] = result
            if store is not None:
                store.put(keys[index], result.output, result.stats)
    return [results[index] for index in range(len(keys))]


def _run_keys_batch_fresh(keys, engine: str) -> "list[RunResult]":
    """One batched execution of ``keys`` (no store interaction)."""
    from repro.runtime.batch import BatchSimulator, unlane

    first = keys[0]
    program = compiled_app(first.spec)
    seeds = [key.fault_seed for key in keys]
    call_args = first.workload_args
    with BatchSimulator(first.config, seeds, engine=engine) as simulator:
        output = program.call(
            first.spec.entry_module, first.spec.entry_function, *call_args
        )
    return [
        RunResult(output=unlane(output, lane), stats=simulator.lane_stats(lane))
        for lane in range(len(keys))
    ]


def run_app(
    spec: Union[AppSpec, RunKey],
    config: Optional[HardwareConfig] = None,
    fault_seed: int = 0,
    workload_seed: int = 0,
    args: Optional[Tuple] = None,
    tracer=None,
    recover=None,
) -> RunResult:
    """Execute one app under one configuration.

    The historical (pre-RunKey) keyword spelling of :func:`run_key`,
    kept as a thin wrapper: ``run_app(spec, config, fault_seed,
    workload_seed)`` builds the equivalent :class:`RunKey` and
    delegates — and warns, because the keyword spelling has no stable
    run identity (no digest, no store addressing).  A :class:`RunKey`
    is also accepted directly as the first argument (in which case the
    seed keywords must be left at their defaults); that form stays
    silent.  New code should call :func:`run_key`.

    ``recover`` (a :class:`repro.recovery.RecoveryPolicy` or mode
    string) gates the output through its acceptability check and, on
    violation, delivers the recovered re-execution instead
    (:func:`repro.recovery.run_recovered`); use that function directly
    when the :class:`~repro.recovery.RecoveryOutcome` matters.
    Recovery requires a plain run — no ``args`` override, no tracer.
    """
    if recover is not None and (args is not None or tracer is not None):
        raise TypeError("run_app(recover=...) cannot combine with args/tracer")
    if isinstance(spec, RunKey):
        if config is not None or fault_seed or workload_seed:
            raise TypeError(
                "run_app(RunKey, ...) takes no config or seed arguments; "
                "they are part of the key"
            )
        key = spec
    else:
        if config is None:
            raise TypeError("run_app(spec, ...) requires a HardwareConfig")
        warnings.warn(
            "run_app(spec, config, fault_seed=..., workload_seed=...) is "
            "deprecated; build a RunKey and call run_key() (or pass the "
            "RunKey to run_app)",
            DeprecationWarning,
            stacklevel=2,
        )
        key = RunKey(
            spec=spec, config=config, fault_seed=fault_seed, workload_seed=workload_seed
        )
    if recover is not None:
        # Imported lazily: the recovery runtime builds on this module.
        from repro.recovery.reexec import RecoveryPolicy, run_recovered

        return run_recovered(key, RecoveryPolicy.coerce(recover)).result
    return run_key(key, args=args, tracer=tracer)


_PRECISE_CACHE: Dict[Tuple[str, int], object] = {}


def precise_output(spec: AppSpec, workload_seed: int = 0):
    """The baseline-configuration output for a workload (cached).

    The in-memory memo makes repeats free within a process; with a run
    store active the underlying baseline run is itself persistent, so
    the first call of a warm campaign is a store read, not a simulation.
    """
    key = (spec.name, workload_seed)
    if key not in _PRECISE_CACHE:
        _PRECISE_CACHE[key] = run_app(
            RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=workload_seed)
        ).output
    return _PRECISE_CACHE[key]


def _service_route():
    # Imported lazily: the service layer is optional and depends on
    # this module for execution.
    from repro.service.routing import active_service_route

    return active_service_route()


def qos_error(
    spec: Union[AppSpec, RunKey],
    config: Optional[HardwareConfig] = None,
    fault_seed: int = 0,
    workload_seed: int = 0,
) -> float:
    """QoS error of one approximate run against the precise output.

    Accepts either the historical ``(spec, config, fault_seed,
    workload_seed)`` keywords or a single :class:`RunKey`.

    When a service route is installed (``repro experiments
    --via-service`` or ``--via-fleet``) and the key is expressible on
    the wire protocol, the query goes to the running daemon (or fabric
    coordinator) instead of simulating locally; routed answers are
    bit-identical, so the float is the same either way.  A fallback
    route (``--via-fleet``) that loses its service mid-query returns
    ``None`` once and goes quiet; the run then executes locally.
    """
    if isinstance(spec, RunKey):
        key = spec
    else:
        if config is None:
            raise TypeError("qos_error(spec, ...) requires a HardwareConfig")
        key = RunKey(
            spec=spec,
            config=config,
            fault_seed=fault_seed,
            workload_seed=workload_seed,
        )
    route = _service_route()
    if route is not None and route.accepts(key):
        value = route.qos(key)
        if value is not None:
            return value
    reference = precise_output(key.spec, key.workload_seed)
    approx = run_key(key).output
    return key.spec.qos(reference, approx)


def mean_qos(
    spec: AppSpec,
    config: HardwareConfig,
    runs: int = 20,
    workload_seed: int = 0,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    recover=None,
) -> float:
    """Mean QoS error over ``runs`` fault seeds (the paper uses 20).

    ``jobs`` > 1 fans the seeds across a process pool via
    :func:`repro.experiments.executor.qos_errors`; the default (serial)
    path and the parallel path accumulate per-seed errors in the same
    left-to-right order, so the result is bit-identical either way.

    ``batch`` > 1 submits the seeds in blocks of that size through
    :func:`run_keys_batch`, so one instrumented execution serves a whole
    seed block (``repro experiments --batch N``).  Batching composes
    with ``jobs``: each worker then executes its chunk in seed blocks.
    Per-seed results — and therefore the mean — are bit-identical to
    the serial path.

    Routing, jobs and batch are applied in the documented
    :class:`~repro.experiments.executor.ExecutionPlan` precedence:
    an installed route wins, then process fan-out, then seed batching.

    ``recover`` (a :class:`repro.recovery.RecoveryPolicy` or mode
    string) scores the *delivered* outputs of guaranteed-quality mode:
    each seed runs through the acceptability check / selective
    re-execution loop first.  Recovery executes locally — it composes
    with ``batch`` but not with routing or ``jobs`` (the
    :class:`~repro.experiments.executor.ExecutionPlan` resolver
    enforces the exclusion for the CLI).
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    from repro.experiments.executor import ExecutionPlan

    plan = ExecutionPlan.resolve(jobs=jobs, batch=batch, recover=recover)
    fault_seeds = range(1, runs + 1)
    if plan.recover is not None:
        from repro.experiments.executor import mean_of

        reference = precise_output(spec, workload_seed)
        keys = [
            RunKey(spec=spec, config=config, fault_seed=s, workload_seed=workload_seed)
            for s in fault_seeds
        ]
        block = plan.batch or 1
        errors = []
        for start in range(0, len(keys), block):
            for result in run_keys_batch(
                keys[start : start + block], recover=plan.recover
            ):
                errors.append(spec.qos(reference, result.output))
        return mean_of(errors)
    route = _service_route()
    if route is not None:
        keys = [
            RunKey(spec=spec, config=config, fault_seed=s, workload_seed=workload_seed)
            for s in fault_seeds
        ]
        if route.accepts(keys[0]):
            # One batched round trip: the daemon answers cached cells
            # inline and fans misses across its warm workers (a fabric
            # coordinator fans them across its fleet).  Same
            # left-to-right accumulation, so the mean is bit-identical.
            from repro.experiments.executor import mean_of

            errors = route.qos_batch(keys)
            if errors is not None:
                return mean_of(errors)
            # The service was lost mid-campaign (fallback routes only):
            # fall through, so --jobs/--batch compose locally from here.
    if plan.jobs is not None:
        from repro.experiments.executor import mean_of, qos_errors

        errors = qos_errors(
            spec,
            config,
            fault_seeds,
            workload_seed,
            workers=plan.jobs,
            batch=plan.batch,
        )
        return mean_of(errors)
    if plan.batch is not None:
        from repro.experiments.executor import mean_of

        reference = precise_output(spec, workload_seed)
        keys = [
            RunKey(spec=spec, config=config, fault_seed=s, workload_seed=workload_seed)
            for s in fault_seeds
        ]
        errors = []
        for start in range(0, len(keys), plan.batch):
            for result in run_keys_batch(keys[start : start + plan.batch]):
                errors.append(spec.qos(reference, result.output))
        return mean_of(errors)
    total = 0.0
    for fault_seed in fault_seeds:
        total += qos_error(
            RunKey(
                spec=spec,
                config=config,
                fault_seed=fault_seed,
                workload_seed=workload_seed,
            )
        )
    return total / runs


def clear_caches() -> None:
    """Reset the compiled-program and precise-output caches, and close
    the active run store.

    Test suites that mutate specs or compare configurations use this to
    guarantee no state leaks between runs; workers call it implicitly by
    starting from a fresh (or freshly primed) process.  Closing (rather
    than merely forgetting) the store makes any still-held handle fail
    loudly instead of silently serving results across a reset — unless
    the holder took its own reference via :meth:`RunStore.share` (the
    simulation daemon does), in which case only the active-store
    reference is dropped and the shared handle stays usable.  The call
    is idempotent: resetting twice, or with no store active, is a no-op.
    """
    from repro.store import reset_active_store

    _PROGRAM_CACHE.clear()
    _PRECISE_CACHE.clear()
    reset_active_store()
