"""Experiment harness: compile apps once, run them under configurations.

The harness is what every table/figure driver builds on:

* :func:`compiled_app` — check + instrument an application (cached).
* :func:`run_app` — one execution under a configuration; returns the
  output and the collected :class:`~repro.runtime.stats.RunStats`.
* :func:`qos_error` — QoS error of an approximate run against the
  precise (baseline-configuration) output for the same workload seed.
* :func:`mean_qos` — mean error over N seeds (Figure 5 runs 20); with
  ``jobs > 1`` the seeds fan out across a process pool through
  :mod:`repro.experiments.executor` with bit-identical results.
* :func:`clear_caches` — reset the compiled-program and precise-output
  caches so test runs cannot leak state across configurations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.apps import AppSpec, load_sources
from repro.core.pipeline import CompiledProgram, compile_program
from repro.hardware.config import BASELINE, HardwareConfig
from repro.runtime import RunStats, Simulator

__all__ = [
    "compiled_app",
    "run_app",
    "qos_error",
    "mean_qos",
    "RunResult",
    "precise_output",
    "clear_caches",
]

_PROGRAM_CACHE: Dict[str, CompiledProgram] = {}


@dataclasses.dataclass(frozen=True)
class RunResult:
    """One simulated execution of an application."""

    output: object
    stats: RunStats


def compiled_app(spec: AppSpec) -> CompiledProgram:
    """The checked + instrumented program for an app (cached by name)."""
    program = _PROGRAM_CACHE.get(spec.name)
    if program is None:
        program = compile_program(load_sources(spec))
        _PROGRAM_CACHE[spec.name] = program
    return program


def _workload_args(spec: AppSpec, workload_seed: int) -> Tuple:
    # By convention the last default argument is the workload seed.
    return spec.default_args[:-1] + (workload_seed,)


def run_app(
    spec: AppSpec,
    config: HardwareConfig,
    fault_seed: int = 0,
    workload_seed: int = 0,
    args: Optional[Tuple] = None,
    tracer=None,
) -> RunResult:
    """Execute one app under one configuration.

    ``fault_seed`` seeds the hardware fault injection; ``workload_seed``
    selects the input data (both runs of a QoS comparison must share
    it).  ``tracer`` (a :class:`repro.observability.tracer.Tracer`)
    records structured fault/energy events; tracing never perturbs the
    simulation — outputs and stats are bit-identical either way.
    """
    program = compiled_app(spec)
    call_args = args if args is not None else _workload_args(spec, workload_seed)
    with Simulator(config, seed=fault_seed, tracer=tracer) as simulator:
        output = program.call(spec.entry_module, spec.entry_function, *call_args)
    return RunResult(output=output, stats=simulator.stats())


_PRECISE_CACHE: Dict[Tuple[str, int], object] = {}


def precise_output(spec: AppSpec, workload_seed: int = 0):
    """The baseline-configuration output for a workload (cached)."""
    key = (spec.name, workload_seed)
    if key not in _PRECISE_CACHE:
        _PRECISE_CACHE[key] = run_app(spec, BASELINE, 0, workload_seed).output
    return _PRECISE_CACHE[key]


def qos_error(
    spec: AppSpec,
    config: HardwareConfig,
    fault_seed: int = 0,
    workload_seed: int = 0,
) -> float:
    """QoS error of one approximate run against the precise output."""
    reference = precise_output(spec, workload_seed)
    approx = run_app(spec, config, fault_seed, workload_seed).output
    return spec.qos(reference, approx)


def mean_qos(
    spec: AppSpec,
    config: HardwareConfig,
    runs: int = 20,
    workload_seed: int = 0,
    jobs: Optional[int] = None,
) -> float:
    """Mean QoS error over ``runs`` fault seeds (the paper uses 20).

    ``jobs`` > 1 fans the seeds across a process pool via
    :func:`repro.experiments.executor.qos_errors`; the default (serial)
    path and the parallel path accumulate per-seed errors in the same
    left-to-right order, so the result is bit-identical either way.
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    fault_seeds = range(1, runs + 1)
    if jobs is not None and jobs > 1:
        from repro.experiments.executor import mean_of, qos_errors

        errors = qos_errors(spec, config, fault_seeds, workload_seed, workers=jobs)
        return mean_of(errors)
    total = 0.0
    for fault_seed in fault_seeds:
        total += qos_error(spec, config, fault_seed, workload_seed)
    return total / runs


def clear_caches() -> None:
    """Reset the compiled-program and precise-output caches.

    Test suites that mutate specs or compare configurations use this to
    guarantee no state leaks between runs; workers call it implicitly by
    starting from a fresh (or freshly primed) process.
    """
    _PROGRAM_CACHE.clear()
    _PRECISE_CACHE.clear()
