"""Ablations for design choices the paper calls out.

* **Cache-line granularity** (Section 4.1/6.1): approximation is
  supported at 64-byte line granularity, which demotes approximate data
  sharing a line with precise data; "finer-grain approximate memory
  could yield a higher proportion of approximate storage."  The sweep
  measures the approximate-DRAM fraction per app at several line sizes.
* **Energy split** (Section 5.4): the headline numbers use the server
  split (CPU 55% / DRAM 45%); in a mobile setting memory is only ~25%,
  making CPU savings more important.  The sweep recomputes Figure 4's
  Aggressive bar under both splits.

Every sweep runs through the store-aware harness/executor, so with a
persistent run store active (``repro experiments ablation
--cache-dir ...``) completed cells are skipped transparently and an
interrupted sweep resumes where it stopped.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.apps import ALL_APPS, AppSpec
from repro.energy.model import MOBILE, SERVER, estimate_energy
from repro.experiments.harness import RunKey, run_key
from repro.hardware.config import AGGRESSIVE, BASELINE

__all__ = [
    "LINE_SIZES",
    "line_size_rows",
    "energy_split_rows",
    "format_line_sizes",
    "format_energy_splits",
    "main",
]

LINE_SIZES = (32, 64, 128, 256)


def _line_size_configs():
    return [
        dataclasses.replace(
            BASELINE, cache_line_bytes=line_bytes, name=f"baseline:{line_bytes}B"
        )
        for line_bytes in LINE_SIZES
    ]


def line_size_rows(
    apps: List[AppSpec] = None, jobs: Optional[int] = None
) -> List[Dict[str, float]]:
    """Approximate-DRAM fraction per app at each line size."""
    specs = apps if apps is not None else ALL_APPS
    configs = _line_size_configs()
    if jobs is not None and jobs > 1:
        from repro.experiments.executor import Job, run_jobs

        grid = [
            Job(spec=spec, config=config, task="stats")
            for spec in specs
            for config in configs
        ]
        stats_list = run_jobs(grid, workers=jobs)
        rows = []
        cursor = 0
        for spec in specs:
            row: Dict[str, object] = {"app": spec.name}
            for line_bytes in LINE_SIZES:
                row[line_bytes] = stats_list[cursor].dram_approx_fraction
                cursor += 1
            rows.append(row)
        return rows
    rows = []
    for spec in specs:
        row: Dict[str, object] = {"app": spec.name}
        for line_bytes, config in zip(LINE_SIZES, configs):
            stats = run_key(
                RunKey(spec=spec, config=config, fault_seed=0, workload_seed=0)
            ).stats
            row[line_bytes] = stats.dram_approx_fraction
        rows.append(row)
    return rows


def energy_split_rows(
    apps: List[AppSpec] = None, jobs: Optional[int] = None
) -> List[Dict[str, float]]:
    """Aggressive-level energy savings under server vs mobile splits."""
    specs = apps if apps is not None else ALL_APPS
    if jobs is not None and jobs > 1:
        from repro.experiments.executor import Job, run_jobs

        grid = [Job(spec=spec, config=BASELINE, task="stats") for spec in specs]
        stats_list = run_jobs(grid, workers=jobs)
    else:
        stats_list = [
            run_key(
                RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=0)
            ).stats
            for spec in specs
        ]
    return [
        {
            "app": spec.name,
            "server": estimate_energy(stats, AGGRESSIVE, SERVER).savings,
            "mobile": estimate_energy(stats, AGGRESSIVE, MOBILE).savings,
        }
        for spec, stats in zip(specs, stats_list)
    ]


def software_substrate_rows(
    apps: List[AppSpec] = None, runs: int = 5, jobs: Optional[int] = None
) -> List[Dict[str, float]]:
    """QoS and savings on the commodity-hardware software substrate.

    Section 4 of the paper: "a runtime system on top of commodity
    hardware can also offer approximate execution features (e.g., lower
    floating point precision, elision of memory operations)".  The
    :data:`~repro.hardware.config.SOFTWARE` preset implements exactly
    those two mechanisms — no voltage scaling, no refresh reduction.
    """
    from repro.experiments.harness import mean_qos
    from repro.hardware.config import SOFTWARE

    rows = []
    for spec in apps if apps is not None else ALL_APPS:
        stats = run_key(
            RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=0)
        ).stats
        rows.append(
            {
                "app": spec.name,
                "qos": mean_qos(spec, SOFTWARE, runs=runs, jobs=jobs),
                "savings": estimate_energy(stats, SOFTWARE, SERVER).savings,
                "elided": _elided_count(spec),
            }
        )
    return rows


def _elided_count(spec: AppSpec) -> int:
    from repro.experiments.harness import compiled_app
    from repro.hardware.config import SOFTWARE
    from repro.runtime import Simulator

    program = compiled_app(spec)
    args = spec.workload_args(0)
    with Simulator(SOFTWARE, seed=1) as simulator:
        program.call(spec.entry_module, spec.entry_function, *args)
    return simulator.elided_loads


def format_software_substrate(rows: List[Dict[str, float]] = None, runs: int = 5) -> str:
    if rows is None:
        rows = software_substrate_rows(runs=runs)
    header = f"{'Application':14s} {'QoS':>8s} {'saved':>7s} {'elided loads':>13s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s} {row['qos']:>8.3f} {row['savings']:>7.1%} "
            f"{row['elided']:>13d}"
        )
    return "\n".join(lines)


def format_line_sizes(rows: List[Dict[str, float]] = None) -> str:
    if rows is None:
        rows = line_size_rows()
    header = f"{'Application':14s}" + "".join(f" {size:>5d}B" for size in LINE_SIZES)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s}"
            + "".join(f" {row[size]:>6.1%}" for size in LINE_SIZES)
        )
    return "\n".join(lines)


def format_energy_splits(rows: List[Dict[str, float]] = None) -> str:
    if rows is None:
        rows = energy_split_rows()
    header = f"{'Application':14s} {'server':>8s} {'mobile':>8s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row['app']:14s} {row['server']:>8.1%} {row['mobile']:>8.1%}")
    return "\n".join(lines)


def main(jobs: Optional[int] = None) -> None:
    print("Ablation A: approximate DRAM fraction vs cache-line granularity")
    print(format_line_sizes(line_size_rows(jobs=jobs)))
    print()
    print("Ablation B: Aggressive energy savings, server vs mobile split")
    print(format_energy_splits(energy_split_rows(jobs=jobs)))
    print()
    print("Ablation C: software substrate (FP truncation + load elision)")
    print(format_software_substrate(software_substrate_rows(jobs=jobs)))


if __name__ == "__main__":
    main()
