"""RunKey: the canonical identity of one simulated execution.

Every artifact of the evaluation — Figure 3/4/5 cells, Table 2/3 rows,
sensitivity and ablation sweeps — is ultimately one or more executions
of ``(app, config, fault_seed, workload_seed)``.  Before this module
that tuple was threaded ad hoc through :func:`~repro.experiments.
harness.run_app` keyword lists, :class:`~repro.experiments.executor.
Job` grids and :mod:`repro.observability.runner`.  A :class:`RunKey`
names the tuple once, and doubles as the cache key of the persistent
run store (:mod:`repro.store`):

* :attr:`RunKey.digest` is a canonical SHA-256 over the *content* that
  determines the run — app name + source digest, entry point, resolved
  workload arguments, the full :class:`~repro.hardware.config.
  HardwareConfig` parameter set (its cosmetic ``name`` excluded), both
  seeds, and the key-schema version.  Editing an app's source or any
  config parameter therefore changes the digest, which is the store's
  entire invalidation story: stale entries simply never match again.
* Deterministic across processes and machines: digests involve only
  file bytes and canonical JSON, never object ids or wall-clock time.

Old keyword signatures (``run_app(spec, config, fault_seed=...,
workload_seed=...)``) keep working as thin wrappers that build a
RunKey internally; new code should construct keys directly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Tuple

from repro.apps import AppSpec, load_sources
from repro.hardware.config import BASELINE, HardwareConfig

__all__ = [
    "RunKey",
    "KEY_SCHEMA_VERSION",
    "source_digest",
    "config_fingerprint",
    "config_digest",
]

#: Version of the digest material layout.  Bump whenever the fields
#: folded into :attr:`RunKey.digest` change meaning — every previously
#: stored entry then misses, which is exactly the safe behaviour.
KEY_SCHEMA_VERSION = 1

# Source digests are memoised per (name, module layout): hashing file
# bytes is cheap but campaigns compute millions of keys.
_SOURCE_DIGESTS: Dict[Tuple, str] = {}


def _canonical_json(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def source_digest(spec: AppSpec) -> str:
    """SHA-256 over the app's module names and file contents."""
    memo_key = (spec.name, tuple(sorted(spec.source_paths().items())))
    cached = _SOURCE_DIGESTS.get(memo_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for module, source in sorted(load_sources(spec).items()):
        digest.update(module.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.encode("utf-8"))
        digest.update(b"\x00")
    value = digest.hexdigest()
    _SOURCE_DIGESTS[memo_key] = value
    return value


def config_fingerprint(config: HardwareConfig) -> Dict[str, object]:
    """The config's semantic parameters as a JSON-safe dict.

    The cosmetic ``name`` is excluded: two configs with identical fault
    and savings parameters are the same hardware, whatever they are
    called, and content addressing should treat them as one.  Floats
    pass through ``repr`` via JSON, so the fingerprint is exact.
    """
    fields = dataclasses.asdict(config)
    fields.pop("name")
    fields["error_mode"] = config.error_mode.value
    return fields


def config_digest(config: HardwareConfig) -> str:
    """SHA-256 of the config fingerprint (memoised; configs are frozen)."""
    cached = _CONFIG_DIGESTS.get(config)
    if cached is None:
        cached = hashlib.sha256(
            _canonical_json(config_fingerprint(config)).encode("utf-8")
        ).hexdigest()
        _CONFIG_DIGESTS[config] = cached
    return cached


_CONFIG_DIGESTS: Dict[HardwareConfig, str] = {}


@dataclasses.dataclass(frozen=True)
class RunKey:
    """The full identity of one simulated execution.

    ``fault_seed`` seeds the hardware fault injection; ``workload_seed``
    selects the input data (both runs of a QoS comparison share it).
    """

    spec: AppSpec
    config: HardwareConfig
    fault_seed: int = 0
    workload_seed: int = 0

    # ------------------------------------------------------------------
    @property
    def workload_args(self) -> Tuple:
        """The resolved entry arguments for this key's workload seed."""
        return self.spec.workload_args(self.workload_seed)

    def precise_reference(self) -> "RunKey":
        """The baseline run this key's QoS is measured against.

        Fault seed 0 under the no-fault baseline configuration, same
        workload seed — the exact convention of
        :func:`repro.experiments.harness.precise_output`.
        """
        return RunKey(
            spec=self.spec,
            config=BASELINE,
            fault_seed=0,
            workload_seed=self.workload_seed,
        )

    # ------------------------------------------------------------------
    def digest_material(self) -> Dict[str, object]:
        """Everything folded into :attr:`digest`, as a JSON-safe dict."""
        return {
            "schema": KEY_SCHEMA_VERSION,
            "app": self.spec.name,
            "source": source_digest(self.spec),
            "entry": [self.spec.entry_module, self.spec.entry_function],
            "args": list(self.workload_args),
            "qos": self.spec.qos_name,
            "config": config_fingerprint(self.config),
            "fault_seed": self.fault_seed,
            "workload_seed": self.workload_seed,
        }

    @property
    def digest(self) -> str:
        """The canonical content digest (the run store's file name)."""
        return hashlib.sha256(
            _canonical_json(self.digest_material()).encode("utf-8")
        ).hexdigest()

    @property
    def identity(self) -> str:
        """Human-readable identity for error messages and logs."""
        return (
            f"app={self.spec.name!r} config={self.config.name!r} "
            f"fault_seed={self.fault_seed} workload_seed={self.workload_seed}"
        )

    def metadata(self) -> Dict[str, object]:
        """The store-manifest view of this key (for stats/gc tooling)."""
        return {
            "app": self.spec.name,
            "config": self.config.name,
            "fault_seed": self.fault_seed,
            "workload_seed": self.workload_seed,
            "source_digest": source_digest(self.spec),
            "config_digest": config_digest(self.config),
        }
