"""Figure 4: estimated CPU/memory energy per benchmark and configuration.

For each application: normalised system energy for the Baseline, Mild,
Medium and Aggressive configurations (the paper's B/1/2/3 bars), from
the Section 5.4 model applied to the measured approximation fractions.
The one measured run per app is store-cached like every other cell, so
regenerating this figure against a warm run store simulates nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps import ALL_APPS, AppSpec
from repro.energy.model import SERVER, EnergyParameters, estimate_energy
from repro.experiments.harness import RunKey, run_key
from repro.hardware.config import AGGRESSIVE, BASELINE, MEDIUM, MILD, HardwareConfig
from repro.runtime.stats import RunStats

__all__ = ["figure4_row", "figure4_rows", "format_figure4", "main"]

LEVELS = (("B", BASELINE), ("1", MILD), ("2", MEDIUM), ("3", AGGRESSIVE))


def _row_from_stats(
    spec: AppSpec, stats: RunStats, params: EnergyParameters
) -> Dict[str, float]:
    row: Dict[str, object] = {"app": spec.name}
    for label, config in LEVELS:
        row[label] = estimate_energy(stats, config, params).total
    return row


def figure4_row(spec: AppSpec, params: EnergyParameters = SERVER) -> Dict[str, float]:
    """Normalised energy per level for one application.

    Statistics are measured once (they are level-independent); the
    levels differ only in the Table 2 savings the model applies.
    """
    stats = run_key(
        RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=0)
    ).stats
    return _row_from_stats(spec, stats, params)


def figure4_rows(
    params: EnergyParameters = SERVER, jobs: Optional[int] = None
) -> List[Dict[str, float]]:
    if jobs is not None and jobs > 1:
        from repro.experiments.executor import Job, run_jobs

        grid = [Job(spec=spec, config=BASELINE, task="stats") for spec in ALL_APPS]
        stats_list = run_jobs(grid, workers=jobs)
        return [
            _row_from_stats(spec, stats, params)
            for spec, stats in zip(ALL_APPS, stats_list)
        ]
    return [figure4_row(spec, params) for spec in ALL_APPS]


def format_figure4(
    rows: List[Dict[str, float]] = None, jobs: Optional[int] = None
) -> str:
    if rows is None:
        rows = figure4_rows(jobs=jobs)
    header = (
        f"{'Application':14s} {'B':>7s} {'Mild':>7s} {'Medium':>7s} {'Aggr':>7s}"
        f"  {'saved(3)':>9s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s} {row['B']:>7.1%} {row['1']:>7.1%} "
            f"{row['2']:>7.1%} {row['3']:>7.1%}  {1 - row['3']:>9.1%}"
        )
    averages = {
        label: sum(row[label] for row in rows) / len(rows) for label, _ in LEVELS
    }
    lines.append("-" * len(header))
    lines.append(
        f"{'mean':14s} {averages['B']:>7.1%} {averages['1']:>7.1%} "
        f"{averages['2']:>7.1%} {averages['3']:>7.1%}  "
        f"{1 - averages['3']:>9.1%}"
    )
    return "\n".join(lines)


def main(jobs: Optional[int] = None) -> None:
    print("Figure 4: estimated CPU/memory system energy (normalised to baseline)")
    print(format_figure4(jobs=jobs))


if __name__ == "__main__":
    main()
