"""Figure 5: output error at three approximation levels.

For each application: mean QoS error over N fault seeds (the paper
averages 20 runs) under Mild, Medium and Aggressive.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import ALL_APPS, AppSpec
from repro.experiments.harness import mean_qos
from repro.hardware.config import AGGRESSIVE, MEDIUM, MILD

__all__ = ["figure5_row", "figure5_rows", "format_figure5", "main", "DEFAULT_RUNS"]

#: The paper averages each bar over 20 runs.
DEFAULT_RUNS = 20

LEVELS = (("Mild", MILD), ("Medium", MEDIUM), ("Aggressive", AGGRESSIVE))


def figure5_row(spec: AppSpec, runs: int = DEFAULT_RUNS) -> Dict[str, float]:
    row: Dict[str, object] = {"app": spec.name}
    for label, config in LEVELS:
        row[label] = mean_qos(spec, config, runs=runs)
    return row


def figure5_rows(runs: int = DEFAULT_RUNS) -> List[Dict[str, float]]:
    return [figure5_row(spec, runs) for spec in ALL_APPS]


def format_figure5(rows: List[Dict[str, float]] = None, runs: int = DEFAULT_RUNS) -> str:
    if rows is None:
        rows = figure5_rows(runs)
    header = f"{'Application':14s} {'Mild':>8s} {'Medium':>8s} {'Aggressive':>11s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s} {row['Mild']:>8.3f} {row['Medium']:>8.3f} "
            f"{row['Aggressive']:>11.3f}"
        )
    return "\n".join(lines)


def main() -> None:
    print(f"Figure 5: output error, mean over {DEFAULT_RUNS} runs")
    print(format_figure5())


if __name__ == "__main__":
    main()
