"""Figure 5: output error at three approximation levels.

For each application: mean QoS error over N fault seeds (the paper
averages 20 runs) under Mild, Medium and Aggressive.

Each (app, level, fault_seed) cell is one
:class:`~repro.experiments.runkey.RunKey`; with a persistent run store
active (:mod:`repro.store`), cells completed by an earlier — possibly
interrupted — campaign are served from disk with bit-identical floats,
so only the missing cells are simulated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps import ALL_APPS, AppSpec
from repro.experiments.harness import mean_qos
from repro.hardware.config import AGGRESSIVE, MEDIUM, MILD

__all__ = [
    "figure5_row",
    "figure5_rows",
    "figure5_grid",
    "format_figure5",
    "main",
    "DEFAULT_RUNS",
]

#: The paper averages each bar over 20 runs.
DEFAULT_RUNS = 20

LEVELS = (("Mild", MILD), ("Medium", MEDIUM), ("Aggressive", AGGRESSIVE))


def figure5_row(
    spec: AppSpec,
    runs: int = DEFAULT_RUNS,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    recover: Optional[str] = None,
) -> Dict[str, float]:
    row: Dict[str, object] = {"app": spec.name}
    for label, config in LEVELS:
        row[label] = mean_qos(
            spec, config, runs=runs, jobs=jobs, batch=batch, recover=recover
        )
    return row


def figure5_grid(
    specs: Sequence[AppSpec],
    runs: int,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
) -> List[Dict[str, float]]:
    """All rows from one flat app x level x fault-seed job grid.

    With ``jobs > 1`` the whole grid is fanned out at once (better load
    balance than per-row pools); each (app, level) bar is then averaged
    over its seeds in serial order, so the numbers are bit-identical to
    :func:`figure5_row`.  ``batch`` > 1 additionally sweeps each cell's
    seed block through the batched fault-injection engine.
    """
    from repro.experiments.executor import Job, mean_of, run_jobs

    grid = [
        Job(spec=spec, config=config, fault_seed=fault_seed)
        for spec in specs
        for _, config in LEVELS
        for fault_seed in range(1, runs + 1)
    ]
    errors = run_jobs(grid, workers=jobs, batch=batch)
    rows: List[Dict[str, float]] = []
    cursor = 0
    for spec in specs:
        row: Dict[str, object] = {"app": spec.name}
        for label, _ in LEVELS:
            row[label] = mean_of(errors[cursor : cursor + runs])
            cursor += runs
        rows.append(row)
    return rows


def figure5_rows(
    runs: int = DEFAULT_RUNS,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    recover: Optional[str] = None,
) -> List[Dict[str, float]]:
    if jobs is not None and jobs > 1 and recover is None:
        return figure5_grid(ALL_APPS, runs, jobs, batch=batch)
    return [
        figure5_row(spec, runs, batch=batch, recover=recover)
        for spec in ALL_APPS
    ]


def format_figure5(
    rows: List[Dict[str, float]] = None,
    runs: int = DEFAULT_RUNS,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    recover: Optional[str] = None,
) -> str:
    if rows is None:
        rows = figure5_rows(runs, jobs=jobs, batch=batch, recover=recover)
    header = f"{'Application':14s} {'Mild':>8s} {'Medium':>8s} {'Aggressive':>11s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s} {row['Mild']:>8.3f} {row['Medium']:>8.3f} "
            f"{row['Aggressive']:>11.3f}"
        )
    return "\n".join(lines)


def main(
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    recover: Optional[str] = None,
) -> None:
    if recover is not None:
        print(
            f"Figure 5 (recovered, {recover}): output error, "
            f"mean over {DEFAULT_RUNS} runs"
        )
    else:
        print(f"Figure 5: output error, mean over {DEFAULT_RUNS} runs")
    print(format_figure5(jobs=jobs, batch=batch, recover=recover))


if __name__ == "__main__":
    main()
