"""Parallel experiment executor: deterministic seed fan-out over processes.

Every paper artifact (Figures 3-5, Tables 2-3, the sensitivity and
ablation sweeps) is an embarrassingly parallel grid of
``run_app(spec, config, fault_seed, workload_seed)`` calls.  This module
fans such a grid across a process pool while keeping the results
*bit-identical* to the serial path:

* **Jobs** are pure descriptions — ``(spec, config, fault_seed,
  workload_seed, task)`` — so they pickle cheaply and replay anywhere.
* **Deterministic ordering**: results come back in job-submission order
  regardless of completion order, and aggregation (e.g. the Figure 5
  mean over 20 fault seeds) uses the same left-to-right float summation
  as the serial loop, so ``jobs=4`` reproduces serial floats exactly.
* **Chunked seed partitioning**: contiguous job chunks amortise IPC;
  chunk boundaries never change values, only scheduling.
* **Per-worker warmup**: the compiled-program cache in
  :mod:`repro.experiments.harness` is per-process, so each worker primes
  it once (in the pool initializer) instead of once per job.
* **Bounded retry**: a job that raises is retried up to
  ``retry_budget`` times; a worker crash (pool breakage) rebuilds the
  pool up to the same budget.  Exhausting the budget raises
  :class:`ExecutorError` carrying the failing job's identity — partial
  results are never silently returned.
* **Resumable campaigns**: when a persistent run store
  (:mod:`repro.store`) is active, the parent resolves already-completed
  cells straight from the store before spinning up workers, fans out
  only the misses, and workers write every completed run through the
  store — so an interrupted ``--jobs N`` campaign resumes exactly where
  it stopped, and a fully warm rerun never builds a pool per cached
  cell.  Results are stitched back in job-submission order either way,
  so caching never perturbs values or their canonical merge order.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.apps import AppSpec
from repro.errors import ReproError
from repro.hardware.config import HardwareConfig
from repro.runtime.stats import RunStats

__all__ = [
    "ExecutionPlan",
    "Job",
    "JobError",
    "ExecutorError",
    "run_jobs",
    "qos_errors",
    "stats_for_jobs",
    "mean_of",
    "register_task",
    "partition",
    "DEFAULT_RETRY_BUDGET",
]

DEFAULT_RETRY_BUDGET = 2


# ----------------------------------------------------------------------
# The execution plan: one resolver for the routing/parallelism surface
# ----------------------------------------------------------------------


def _parse_endpoint(text: str) -> Tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) -> ``(host, port)``."""
    host, _, port_text = text.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid HOST:PORT {text!r}") from None
    return host, port


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """Where — and how wide — a campaign executes.

    The single resolver for the ``--via-service`` / ``--via-fleet`` /
    ``--jobs`` / ``--batch`` surface, shared by the CLI
    (``repro experiments``) and the harness
    (:func:`repro.experiments.harness.mean_qos`), so the flags compose
    with one documented precedence instead of per-call-site folklore.

    Precedence, highest first:

    1. **Routing** (``via``).  With a route installed, every eligible
       query goes to the daemon (``service``) or fabric coordinator
       (``fleet``); local parallelism applies only to queries the route
       declines.  ``service`` routes are strict — a service error
       raises; ``fleet`` routes mark themselves *lost* on the first
       error and the campaign continues locally, where ``jobs`` and
       ``batch`` resume composing.
    2. **Jobs**.  Process fan-out for locally executed queries.
    3. **Batch**.  Vectorized fault-seed blocks; inside each worker
       process when composed with ``jobs``.

    ``jobs``/``batch`` are normalized at resolve time: values ``<= 1``
    mean "off" and are stored as ``None``, so ``plan.jobs is not None``
    is the one idiom for "parallelism was actually requested".

    ``recover`` (guaranteed-quality mode, ``--recover``) gates every
    output through its acceptability check with selective precise
    re-execution (:mod:`repro.recovery`).  Recovery executes locally
    and serially per seed — it is mutually exclusive with routing
    (``--via-service``/``--via-fleet``; route the *request* with
    ``repro submit --recover`` instead) and with ``--jobs``, but
    composes with ``--batch`` (attempts run in seed blocks, violating
    lanes retry individually).
    """

    via: str = "local"  # "local" | "service" | "fleet"
    host: Optional[str] = None
    port: Optional[int] = None
    jobs: Optional[int] = None
    batch: Optional[int] = None
    recover: Optional[str] = None  # None | "selective" | "precise"

    @classmethod
    def resolve(
        cls,
        via_service: Optional[str] = None,
        via_fleet: Optional[str] = None,
        jobs: Optional[int] = None,
        batch: Optional[int] = None,
        recover=None,
    ) -> "ExecutionPlan":
        """Collapse raw flag values into one validated plan.

        Raises :class:`ValueError` (with the offending flag named) for
        contradictory flags or a malformed endpoint address.
        """
        if via_service and via_fleet:
            raise ValueError(
                "--via-service and --via-fleet are mutually exclusive "
                "(a coordinator speaks the daemon protocol; pick one address)"
            )
        recover_mode: Optional[str] = None
        if recover is not None:
            # Imported lazily: the recovery runtime is optional here.
            from repro.recovery.reexec import RecoveryPolicy

            if via_service or via_fleet:
                raise ValueError(
                    "--recover is mutually exclusive with --via-service/"
                    "--via-fleet (recovery runs locally; to recover on a "
                    "daemon, use `repro submit --recover`)"
                )
            if jobs is not None and jobs > 1:
                raise ValueError(
                    "--recover is mutually exclusive with --jobs "
                    "(retries re-execute under per-app restricted "
                    "configurations; use --batch for parallel attempts)"
                )
            recover_mode = RecoveryPolicy.coerce(recover).mode
        via, host, port = "local", None, None
        address = via_fleet or via_service
        if address:
            via = "fleet" if via_fleet else "service"
            try:
                host, port = _parse_endpoint(address)
            except ValueError as error:
                flag = "--via-fleet" if via_fleet else "--via-service"
                raise ValueError(f"{flag}: {error}") from None
        return cls(
            via=via,
            host=host,
            port=port,
            jobs=jobs if jobs is not None and jobs > 1 else None,
            batch=batch if batch is not None and batch > 1 else None,
            recover=recover_mode,
        )

    @property
    def routed(self) -> bool:
        return self.via != "local"

    @property
    def fallback_local(self) -> bool:
        """Fleet routes survive losing their coordinator mid-campaign."""
        return self.via == "fleet"

    @contextlib.contextmanager
    def activate(self) -> Iterator[object]:
        """Install this plan's service route for the duration.

        Yields the installed :class:`~repro.service.routing.ServiceRoute`
        (``None`` for local plans, which make this a no-op); the route
        and its client are torn down on exit.
        """
        if not self.routed:
            yield None
            return
        from repro.service import ServiceClient
        from repro.service.routing import routed

        client = ServiceClient(self.host, self.port)
        try:
            with routed(client, fallback_local=self.fallback_local) as route:
                yield route
        finally:
            client.close()

    def driver_kwargs(
        self, parameters
    ) -> Tuple[Dict[str, object], List[str]]:
        """The ``jobs=``/``batch=``/``recover=`` kwargs a driver accepts.

        ``parameters`` is the driver signature's parameter mapping.
        Returns ``(kwargs, notes)`` where ``notes`` names requested
        flags the driver cannot honour (pure-formatting drivers such as
        table2 take neither and simply stay serial).
        """
        kwargs: Dict[str, object] = {}
        notes: List[str] = []
        for flag, value, fallback in (
            ("jobs", self.jobs, "running serially"),
            ("batch", self.batch, "running unbatched"),
            ("recover", self.recover, "running unchecked"),
        ):
            if flag in parameters:
                if value is not None:
                    kwargs[flag] = value
            elif value is not None:
                notes.append(f"--{flag} ({fallback})")
        return kwargs, notes


class ExecutorError(ReproError):
    """A job grid could not be completed within the retry budget."""


class JobError(Exception):
    """A single job failed inside a worker; carries the job identity."""

    def __init__(self, message: str, app: str, config: str, fault_seed: int):
        super().__init__(message)
        self.app = app
        self.config = config
        self.fault_seed = fault_seed


@dataclasses.dataclass(frozen=True)
class Job:
    """One unit of the experiment grid.

    A job is a :class:`~repro.experiments.runkey.RunKey` plus a task.
    ``task`` names an entry in the task registry: ``"qos"`` computes the
    QoS error against the precise output (a float), ``"stats"`` runs the
    app and returns its :class:`RunStats`, ``"trace"`` runs it with the
    observability tracer attached and returns a
    :class:`repro.observability.runner.TraceResult`.
    """

    spec: AppSpec
    config: HardwareConfig
    fault_seed: int = 0
    workload_seed: int = 0
    task: str = "qos"

    @classmethod
    def from_key(cls, key: "RunKey", task: str = "qos") -> "Job":
        """A job for the run named by ``key``."""
        return cls(
            spec=key.spec,
            config=key.config,
            fault_seed=key.fault_seed,
            workload_seed=key.workload_seed,
            task=task,
        )

    @property
    def key(self) -> "RunKey":
        """The run identity (and store cache key) of this job."""
        from repro.experiments.runkey import RunKey

        return RunKey(
            spec=self.spec,
            config=self.config,
            fault_seed=self.fault_seed,
            workload_seed=self.workload_seed,
        )

    @property
    def identity(self) -> str:
        return (
            f"app={self.spec.name!r} config={self.config.name!r} "
            f"fault_seed={self.fault_seed}"
        )


# ----------------------------------------------------------------------
# Task registry (module-level so fork/spawn workers can resolve tasks).
# ----------------------------------------------------------------------


def _task_qos(job: Job) -> float:
    from repro.experiments.harness import qos_error

    return qos_error(job.key)


def _task_stats(job: Job) -> RunStats:
    from repro.experiments.harness import run_key

    return run_key(job.key).stats


def _task_trace(job: Job):
    """Traced execution: returns a full observability TraceResult.

    Events, metrics and stats pickle back to the parent; per-run event
    streams are pure functions of the job's seeds, so merged traces are
    order-stable regardless of worker count.
    """
    from repro.observability.runner import traced_run

    return traced_run(job.spec, job.config, job.fault_seed, job.workload_seed)


_TASKS: Dict[str, Callable[[Job], object]] = {
    "qos": _task_qos,
    "stats": _task_stats,
    "trace": _task_trace,
}


def register_task(name: str, fn: Callable[[Job], object]) -> None:
    """Register a custom task (visible to fork-started workers)."""
    _TASKS[name] = fn


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _worker_init(specs: Tuple[AppSpec, ...], cache_dir: Optional[str] = None) -> None:
    """Prime the per-worker caches: compiled programs + the run store.

    With ``cache_dir`` set, every worker opens its own handle on the
    shared on-disk store and writes completed runs through it — entries
    are content-addressed and published atomically, so concurrent
    writers are safe (identical keys produce identical bytes).

    Any service route inherited from the parent (fork start method
    copies module globals) is cleared first: workers execute locally
    by design, and N processes multiplexing the parent's one daemon
    socket would corrupt the NDJSON stream (interleaved request ids).
    ``--via-service``/``--via-fleet`` routing happens in the parent,
    before jobs are ever fanned out.
    """
    from repro.experiments.harness import compiled_app
    from repro.service.routing import clear_service_route

    clear_service_route()
    if cache_dir is not None:
        from repro.store import configure

        configure(cache_dir)
    for spec in specs:
        compiled_app(spec)


def _execute_job(job: Job) -> object:
    try:
        task = _TASKS[job.task]
    except KeyError:
        raise JobError(
            f"unknown task {job.task!r} ({job.identity})",
            job.spec.name,
            job.config.name,
            job.fault_seed,
        ) from None
    try:
        return task(job)
    except JobError:
        raise
    except Exception as exc:
        raise JobError(
            f"{type(exc).__name__}: {exc} ({job.identity})",
            job.spec.name,
            job.config.name,
            job.fault_seed,
        ) from exc


def _execute_chunk(chunk: Sequence[Job], batch: Optional[int] = None) -> List[object]:
    """Execute a chunk, optionally batching compatible adjacent jobs.

    With ``batch`` > 1, consecutive ``qos``/``stats`` jobs that share
    app, config and workload seed (the shape every figure grid produces)
    are swept in blocks of up to ``batch`` fault seeds through one
    :func:`~repro.experiments.harness.run_keys_batch` execution.  Jobs
    are never reordered, so results stay in submission order and the
    figure drivers' left-to-right accumulation is untouched.  When a
    usable service route is active, jobs keep going through it one by
    one — ``--via-service``/``--via-fleet`` intent wins over local
    batching; a route that lost its fleet mid-campaign no longer
    counts, so local batching resumes for the remaining chunks.
    """
    if batch is None or batch <= 1:
        return [_execute_job(job) for job in chunk]
    from repro.experiments.harness import _service_route

    route = _service_route()
    if route is not None and not getattr(route, "lost", False):
        return [_execute_job(job) for job in chunk]
    results: List[object] = []
    index = 0
    n = len(chunk)
    while index < n:
        job = chunk[index]
        if job.task not in ("qos", "stats"):
            results.append(_execute_job(job))
            index += 1
            continue
        block = [job]
        while len(block) < batch and index + len(block) < n:
            nxt = chunk[index + len(block)]
            if (
                nxt.task == job.task
                and nxt.spec.name == job.spec.name
                and nxt.config == job.config
                and nxt.workload_seed == job.workload_seed
            ):
                block.append(nxt)
            else:
                break
        results.extend(_execute_block(block))
        index += len(block)
    return results


def _execute_block(block: Sequence[Job]) -> List[object]:
    """One batched seed block; falls back to per-job execution on error.

    The per-job fallback reruns the block through :func:`_execute_job`,
    so a deterministic failure surfaces as the same :class:`JobError`
    (with the right job identity) the serial path would raise.
    """
    from repro.experiments.harness import precise_output, run_keys_batch

    job = block[0]
    try:
        run_results = run_keys_batch([j.key for j in block])
        if job.task == "stats":
            return [result.stats for result in run_results]
        reference = precise_output(job.spec, job.workload_seed)
        return [job.spec.qos(reference, result.output) for result in run_results]
    except KeyboardInterrupt:
        raise
    except Exception:
        return [_execute_job(j) for j in block]


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------


def partition(jobs: Sequence[Job], chunk_size: int) -> List[Sequence[Job]]:
    """Split ``jobs`` into contiguous chunks of at most ``chunk_size``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [jobs[i : i + chunk_size] for i in range(0, len(jobs), chunk_size)]


def _default_chunk_size(n_jobs: int, workers: int) -> int:
    # Roughly four waves per worker: good load balance, bounded IPC.
    return max(1, math.ceil(n_jobs / (workers * 4)))


def _pool_context():
    """Prefer fork (inherits the parent's warm caches); fall back."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ----------------------------------------------------------------------
# Store-backed resume: resolve completed cells without a pool
# ----------------------------------------------------------------------

_MISS = object()


def _active_store():
    # Imported lazily: repro.store depends on this package's RunKey.
    from repro.store import active_store

    return active_store()


def _resolve_cached(job: Job, store) -> object:
    """A job's result straight from the run store, or ``_MISS``.

    Only tasks whose results are pure functions of stored run entries
    resolve here: ``stats`` needs the job's own entry; ``qos`` needs
    both the approximate entry and its baseline reference (the QoS
    metric is recomputed from the stored outputs, which are
    bit-identical to fresh ones, so the float matches the uncached path
    exactly).  Traced and custom tasks always execute.
    """
    if job.task == "stats":
        entry = store.get(job.key)
        return _MISS if entry is None else entry.stats
    if job.task == "qos":
        entry = store.get(job.key)
        if entry is None:
            return _MISS
        reference = store.get(job.key.precise_reference())
        if reference is None:
            return _MISS
        return job.spec.qos(reference.output, entry.output)
    return _MISS


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


def run_jobs(
    jobs: Sequence[Job],
    workers: Optional[int] = None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
    chunk_size: Optional[int] = None,
    batch: Optional[int] = None,
) -> List[object]:
    """Execute a job grid; results are in job order, serial-identical.

    ``workers=None``/``0``/``1`` executes serially in-process (the
    default, so seed behaviour is unchanged unless parallelism is asked
    for).  ``retry_budget`` bounds both per-chunk retries after an
    ordinary job exception and pool rebuilds after a worker crash.
    ``batch`` > 1 sweeps compatible adjacent seed jobs through the
    batched fault-injection engine (see :func:`_execute_chunk`); results
    stay bit-identical, pinned by ``tests/test_batch_differential.py``.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if workers is None or workers <= 1:
        # The serial path consults the store per run inside the harness.
        return _execute_chunk(jobs, batch)

    # Resume layer: serve completed cells from the active store first,
    # then fan out only the misses.  Workers write through the same
    # store, so an interrupted campaign leaves every finished cell
    # behind and the next invocation starts from here.
    store = _active_store()
    resolved: Dict[int, object] = {}
    if store is not None:
        for index, job in enumerate(jobs):
            value = _resolve_cached(job, store)
            if value is not _MISS:
                resolved[index] = value
    pending_jobs = [
        (index, job) for index, job in enumerate(jobs) if index not in resolved
    ]
    if not pending_jobs:
        return [resolved[index] for index in range(len(jobs))]
    miss_jobs = [job for _, job in pending_jobs]

    if chunk_size is None:
        chunk_size = _default_chunk_size(len(miss_jobs), workers)
        if batch is not None and batch > 1:
            # Keep seed blocks whole: a chunk smaller than the batch
            # size would fragment every block.
            chunk_size = max(chunk_size, batch)
    chunks = partition(miss_jobs, chunk_size)
    specs = _distinct_specs(miss_jobs)
    cache_dir = store.root if store is not None else None

    results: Dict[int, List[object]] = {}
    attempts = {index: 0 for index in range(len(chunks))}
    pending = set(range(len(chunks)))
    rebuilds = 0
    context = _pool_context()

    while pending:
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(specs, cache_dir),
            ) as pool:
                while pending:
                    futures = {
                        pool.submit(_execute_chunk, chunks[index], batch): index
                        for index in sorted(pending)
                    }
                    for future in as_completed(futures):
                        index = futures[future]
                        try:
                            results[index] = future.result()
                            pending.discard(index)
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:
                            attempts[index] += 1
                            if attempts[index] > retry_budget:
                                raise _budget_error(chunks[index], exc) from exc
        except BrokenProcessPool as exc:
            rebuilds += 1
            if rebuilds > retry_budget:
                first = chunks[sorted(pending)[0]][0]
                raise ExecutorError(
                    f"worker pool crashed {rebuilds} times "
                    f"(budget {retry_budget}); first pending job: "
                    f"{first.identity}"
                ) from exc
            # Loop around: a fresh pool retries every pending chunk.

    executed: List[object] = []
    for index in range(len(chunks)):
        executed.extend(results[index])
    for (original_index, _), value in zip(pending_jobs, executed):
        resolved[original_index] = value
    return [resolved[index] for index in range(len(jobs))]


def _budget_error(chunk: Sequence[Job], exc: Exception) -> ExecutorError:
    if isinstance(exc, JobError):
        identity = f"app={exc.app!r} config={exc.config!r} fault_seed={exc.fault_seed}"
    else:
        identity = chunk[0].identity
    return ExecutorError(
        f"job failed after exhausting the retry budget: {identity}: {exc}"
    )


def _distinct_specs(jobs: Sequence[Job]) -> Tuple[AppSpec, ...]:
    seen = {}
    for job in jobs:
        seen.setdefault(job.spec.name, job.spec)
    return tuple(seen.values())


# ----------------------------------------------------------------------
# Grid helpers used by the harness and the figure drivers
# ----------------------------------------------------------------------


def qos_errors(
    spec: AppSpec,
    config: HardwareConfig,
    fault_seeds: Sequence[int],
    workload_seed: int = 0,
    workers: Optional[int] = None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
    batch: Optional[int] = None,
) -> List[float]:
    """Per-seed QoS errors, ordered by ``fault_seeds``."""
    jobs = [
        Job(spec=spec, config=config, fault_seed=seed, workload_seed=workload_seed)
        for seed in fault_seeds
    ]
    return run_jobs(jobs, workers=workers, retry_budget=retry_budget, batch=batch)


def stats_for_jobs(
    jobs: Sequence[Job],
    workers: Optional[int] = None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
    batch: Optional[int] = None,
) -> List[RunStats]:
    """Run ``stats`` jobs; a thin alias that documents the return type."""
    return run_jobs(jobs, workers=workers, retry_budget=retry_budget, batch=batch)


def mean_of(errors: Sequence[float]) -> float:
    """Left-to-right mean — the exact accumulation of the serial loop."""
    if not errors:
        raise ValueError("mean of no errors")
    total = 0.0
    for error in errors:
        total += error
    return total / len(errors)
