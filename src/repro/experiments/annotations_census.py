"""Static annotation census over the application sources (Table 3).

The paper reports, per application: lines of code, the number of
declarations, the percentage annotated, and the endorsement count.
This module measures the same quantities over our EnerPy ports by
walking their ASTs:

* **declarations** — every annotatable site: function parameters and
  returns, class-level field declarations, annotated locals, and
  inferred locals (a local's first binding, the Python analogue of a
  Java local declaration);
* **annotated** — sites whose annotation mentions ``Approx``,
  ``Context``, or ``Top`` (``Precise`` is the default and does not
  count, matching the paper's counting of non-default qualifiers);
* **endorsements** — static ``endorse(...)`` call sites;
* **lines of code** — non-blank, non-comment source lines.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Optional, Set

from repro.apps import AppSpec, load_sources
from repro.core.declarations import parse_annotation
from repro.core.diagnostics import DiagnosticSink
from repro.core.qualifiers import PRECISE
from repro.core.types import QualifiedType

__all__ = ["AnnotationCensus", "census_app", "census_sources"]


@dataclasses.dataclass
class AnnotationCensus:
    """Annotation-density counts for one program."""

    lines_of_code: int = 0
    declarations: int = 0
    annotated: int = 0
    endorsements: int = 0

    @property
    def annotated_fraction(self) -> float:
        if self.declarations == 0:
            return 0.0
        return self.annotated / self.declarations

    def merge(self, other: "AnnotationCensus") -> None:
        self.lines_of_code += other.lines_of_code
        self.declarations += other.declarations
        self.annotated += other.annotated
        self.endorsements += other.endorsements


def _non_default(parsed: Optional[QualifiedType]) -> bool:
    """True when any qualifier in the parsed type is not ``@Precise``."""
    if parsed is None:
        return False
    if parsed.qualifier is not PRECISE:
        return True
    if parsed.is_array:
        return _non_default(parsed.element)
    return False


def _mentions_qualifier(annotation: ast.expr) -> bool:
    """Does the annotation carry a non-default precision qualifier?

    Delegates to the checker's own :func:`parse_annotation` — the census
    and the type system agree by construction on what counts as
    annotated (string forward references, ``Approx[list[T]]`` sugar),
    and ``Precise[...]`` stays a non-count because it parses to the
    default qualifier.  Malformed annotations parse to the precise
    dynamic fallback and are not counted; the throwaway sink swallows
    their diagnostics (the checker proper reports them).
    """
    scratch = DiagnosticSink()
    parsed = parse_annotation(annotation, scratch, "<census>", in_approximable=True)
    return _non_default(parsed)


def _count_lines(source: str) -> int:
    count = 0
    in_doc = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count


class _CensusVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.census = AnnotationCensus()
        self._locals_seen: Set[str] = set()

    # --- declarations -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._locals_seen = set()
        for arg in list(node.args.posonlyargs) + list(node.args.args):
            if arg.arg == "self":
                continue
            self.census.declarations += 1
            self._locals_seen.add(arg.arg)
            if arg.annotation is not None and _mentions_qualifier(arg.annotation):
                self.census.annotated += 1
        self.census.declarations += 1  # the return declaration
        if node.returns is not None and _mentions_qualifier(node.returns):
            self.census.annotated += 1
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if node.target.id not in self._locals_seen:
                self._locals_seen.add(node.target.id)
                self.census.declarations += 1
                if _mentions_qualifier(node.annotation):
                    self.census.annotated += 1
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id not in self._locals_seen:
                self._locals_seen.add(target.id)
                self.census.declarations += 1
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Class fields are AnnAssigns in the class body; reset the local
        # tracker so same-named fields/locals both count.
        self._locals_seen = set()
        self.generic_visit(node)

    # --- endorsements ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "endorse":
            self.census.endorsements += 1
        self.generic_visit(node)


def census_sources(sources: Dict[str, str], skip_modules: Set[str] = frozenset()) -> AnnotationCensus:
    """Census over a program given as {module name: source}."""
    total = AnnotationCensus()
    for module, source in sources.items():
        if module in skip_modules:
            continue
        visitor = _CensusVisitor()
        visitor.visit(ast.parse(source))
        visitor.census.lines_of_code = _count_lines(source)
        total.merge(visitor.census)
    return total


def census_app(spec: AppSpec) -> AnnotationCensus:
    """Census over one application (the shared ``rand`` module excluded:
    it is library code used by every app, like the JDK in the paper)."""
    return census_sources(load_sources(spec), skip_modules={"rand"})
