"""Figure 3: proportion of approximate storage and computation per app.

For each benchmark: the fraction of DRAM and SRAM byte-ticks spent on
approximate data and the fraction of integer and floating-point
operations executed approximately.  These fractions are properties of
the program and its annotations, not of the fault level, so one
deterministic run per app suffices (we use the Baseline configuration,
whose statistics collection is identical).  The per-app baseline runs
are served from the persistent run store when one is active — they are
the same ``(app, baseline, seed 0)`` cells every other driver's QoS
references use, so a warm store makes this figure free.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps import ALL_APPS, AppSpec
from repro.experiments.harness import RunKey, run_key
from repro.hardware.config import BASELINE
from repro.runtime.stats import RunStats

__all__ = ["figure3_row", "figure3_rows", "format_figure3", "main"]


def _row_from_stats(spec: AppSpec, stats: RunStats) -> Dict[str, float]:
    return {
        "app": spec.name,
        "dram_approx_fraction": stats.dram_approx_fraction,
        "sram_approx_fraction": stats.sram_approx_fraction,
        "int_approx_fraction": stats.int_approx_fraction,
        "fp_approx_fraction": stats.fp_approx_fraction,
    }


def figure3_row(spec: AppSpec) -> Dict[str, float]:
    stats = run_key(
        RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=0)
    ).stats
    return _row_from_stats(spec, stats)


def figure3_rows(jobs: Optional[int] = None) -> List[Dict[str, float]]:
    if jobs is not None and jobs > 1:
        from repro.experiments.executor import Job, run_jobs

        grid = [Job(spec=spec, config=BASELINE, task="stats") for spec in ALL_APPS]
        stats_list = run_jobs(grid, workers=jobs)
        return [
            _row_from_stats(spec, stats)
            for spec, stats in zip(ALL_APPS, stats_list)
        ]
    return [figure3_row(spec) for spec in ALL_APPS]


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def format_figure3(
    rows: List[Dict[str, float]] = None, jobs: Optional[int] = None
) -> str:
    if rows is None:
        rows = figure3_rows(jobs=jobs)
    header = (
        f"{'Application':14s} {'DRAM':>6s} {'SRAM':>6s} {'IntOp':>6s} {'FPOp':>6s}"
        f"   fraction approximate"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s} {row['dram_approx_fraction']:>6.1%} "
            f"{row['sram_approx_fraction']:>6.1%} "
            f"{row['int_approx_fraction']:>6.1%} "
            f"{row['fp_approx_fraction']:>6.1%}   "
            f"FP:{_bar(row['fp_approx_fraction'])}"
        )
    return "\n".join(lines)


def main(jobs: Optional[int] = None) -> None:
    print("Figure 3: proportion of approximate storage and computation")
    print(format_figure3(jobs=jobs))


if __name__ == "__main__":
    main()
