"""Table 2: approximation strategies and their parameters.

Regenerates the paper's Table 2 from the :mod:`repro.hardware.config`
presets — the single source of truth the fault injectors and the energy
model both read.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.hardware.config import AGGRESSIVE, MEDIUM, MILD, HardwareConfig

__all__ = ["table2_rows", "format_table2", "main"]

_LEVELS = (("Mild", MILD), ("Medium", MEDIUM), ("Aggressive", AGGRESSIVE))


def _exp(value: float) -> str:
    """Format a probability as 10^x, as the paper's table does."""
    if value <= 0:
        return "0"
    exponent = math.log10(value)
    if abs(exponent - round(exponent)) < 1e-9:
        return f"10^{int(round(exponent))}"
    return f"10^{exponent:.2f}"


def table2_rows() -> List[Dict[str, str]]:
    """The table as row dicts: quantity name -> per-level values."""
    rows = []

    def row(label: str, fn, fmt):
        values = {name: fmt(fn(config)) for name, config in _LEVELS}
        rows.append({"quantity": label, **values})

    row("DRAM refresh: per-second bit flip probability",
        lambda c: c.dram_flip_per_second, _exp)
    row("Memory power saved",
        lambda c: c.dram_power_saving, lambda v: f"{v:.0%}")
    row("SRAM read upset probability",
        lambda c: c.sram_read_upset, _exp)
    row("SRAM write failure probability",
        lambda c: c.sram_write_failure, _exp)
    row("Supply power saved",
        lambda c: c.sram_power_saving, lambda v: f"{v:.0%}")
    row("float mantissa bits",
        lambda c: c.float_mantissa_bits, str)
    row("double mantissa bits",
        lambda c: c.double_mantissa_bits, str)
    row("Energy saved per FP operation",
        lambda c: c.fp_op_saving, lambda v: f"{v:.0%}")
    row("Arithmetic timing error probability",
        lambda c: c.timing_error_prob, _exp)
    row("Energy saved per integer operation",
        lambda c: c.int_op_saving, lambda v: f"{v:.0%}")
    return rows


def format_table2() -> str:
    rows = table2_rows()
    header = f"{'Strategy / quantity':48s} {'Mild':>10s} {'Medium':>10s} {'Aggressive':>10s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['quantity']:48s} {row['Mild']:>10s} {row['Medium']:>10s} "
            f"{row['Aggressive']:>10s}"
        )
    return "\n".join(lines)


def main() -> None:
    print("Table 2: approximation strategies simulated in the evaluation")
    print(format_table2())


if __name__ == "__main__":
    main()
