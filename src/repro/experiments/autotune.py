"""Offline per-application tuning of the approximation level.

The paper observes that applications' error sensitivity varies greatly
and suggests that "an approximate execution substrate for EnerJ could
benefit from tuning to the characteristics of each application, either
offline via profiling or online via continuous QoS measurement as in
Green".  This module implements the offline variant:

given an application and a QoS budget, a greedy coordinate-ascent
search raises each approximation mechanism (DRAM refresh, SRAM voltage,
FP width, ALU voltage) through the Mild/Medium/Aggressive levels
independently, accepting an upgrade only when the *measured* mean QoS
error stays within budget, and preferring the upgrade with the best
estimated energy improvement.  The result is a heterogeneous
configuration — e.g. Aggressive DRAM with Mild functional units — that
a uniform Table 2 level cannot express.

The search space and its primitives (level ladder, single-step
upgrades, energy preference order) live in :mod:`repro.tuner.search`,
shared with the *online* tuner (:mod:`repro.tuner.controller`) that
drives the same search from per-request QoS feedback instead of
offline ``mean_qos`` campaigns.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.apps import ALL_APPS, AppSpec
from repro.experiments.harness import RunKey, mean_qos, run_key
from repro.hardware.config import BASELINE, HardwareConfig
from repro.tuner.search import (  # noqa: F401  (re-exported search surface)
    LEVELS,
    TUNABLE,
    candidate_upgrades,
    compose_config,
    levels_energy,
)

__all__ = ["compose_config", "autotune", "TuneResult", "autotune_suite", "format_tuning", "main"]


@dataclasses.dataclass
class TuneResult:
    """Outcome of tuning one application."""

    app: str
    levels: Dict[str, int]
    config: HardwareConfig
    measured_qos: float
    energy: float
    evaluations: int

    @property
    def savings(self) -> float:
        return 1.0 - self.energy


def autotune(
    spec: AppSpec,
    qos_budget: float = 0.05,
    runs: int = 5,
    max_level: int = 3,
    mechanisms=None,
) -> TuneResult:
    """Greedy coordinate ascent over per-mechanism levels.

    Repeatedly evaluates every single-step upgrade of a mechanism,
    keeps those whose measured mean QoS error stays within budget, and
    commits the one with the lowest estimated energy; stops when no
    upgrade is admissible.

    ``mechanisms`` restricts the search to the named strategies; pass
    the string ``"placement"`` to derive the restriction from the
    data-placement analysis (mechanisms with no approximate state in
    the QoS output's cone are never explored — fewer simulated
    evaluations for the same committed vector).
    """
    if mechanisms == "placement":
        from repro.analysis.placement import placement_mechanisms
        from repro.analysis.reliability import app_flow_graph, app_output_id

        mechanisms = placement_mechanisms(app_flow_graph(spec), app_output_id(spec))
    stats = run_key(
        RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=0)
    ).stats
    levels = {strategy: 0 for strategy in TUNABLE}
    evaluations = 0
    current_energy = 1.0
    current_qos = 0.0

    while True:
        best: Optional[Tuple[str, float, float]] = None  # strategy, energy, qos
        for strategy, candidate_levels in candidate_upgrades(
            levels, max_level, mechanisms
        ):
            energy = levels_energy(stats, candidate_levels)
            if energy >= current_energy - 1e-9:
                # No energy benefit (e.g. the app has no FP work):
                # raising the level only adds error.
                continue
            qos = mean_qos(spec, compose_config(candidate_levels), runs=runs)
            evaluations += 1
            if qos <= qos_budget and (best is None or energy < best[1]):
                best = (strategy, energy, qos)
        if best is None:
            break
        strategy, current_energy, current_qos = best
        levels[strategy] += 1

    return TuneResult(
        app=spec.name,
        levels=levels,
        config=compose_config(levels, name=f"tuned:{spec.name}"),
        measured_qos=current_qos,
        energy=current_energy,
        evaluations=evaluations,
    )


def autotune_suite(
    qos_budget: float = 0.05,
    runs: int = 5,
    apps: Optional[List[AppSpec]] = None,
) -> List[TuneResult]:
    return [autotune(spec, qos_budget, runs) for spec in (apps or ALL_APPS)]


def format_tuning(results: List[TuneResult], qos_budget: float) -> str:
    from repro.tuner.search import LEVEL_NAMES

    header = (
        f"{'Application':14s} "
        + "".join(f" {name:>11s}" for name in TUNABLE)
        + f" {'QoS':>7s} {'saved':>7s} {'evals':>6s}"
    )
    lines = [f"QoS budget: {qos_budget}", header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.app:14s} "
            + "".join(f" {LEVEL_NAMES[result.levels[n]]:>11s}" for n in TUNABLE)
            + f" {result.measured_qos:>7.3f} {result.savings:>7.1%} "
            f"{result.evaluations:>6d}"
        )
    return "\n".join(lines)


def main() -> None:
    budget = 0.05
    results = autotune_suite(qos_budget=budget, runs=5)
    print("Offline per-application tuning (paper Section 6.2 suggestion)")
    print(format_tuning(results, budget))


if __name__ == "__main__":
    main()
