"""Offline per-application tuning of the approximation level.

The paper observes that applications' error sensitivity varies greatly
and suggests that "an approximate execution substrate for EnerJ could
benefit from tuning to the characteristics of each application, either
offline via profiling or online via continuous QoS measurement as in
Green".  This module implements the offline variant:

given an application and a QoS budget, a greedy coordinate-ascent
search raises each approximation mechanism (DRAM refresh, SRAM voltage,
FP width, ALU voltage) through the Mild/Medium/Aggressive levels
independently, accepting an upgrade only when the *measured* mean QoS
error stays within budget, and preferring the upgrade with the best
estimated energy improvement.  The result is a heterogeneous
configuration — e.g. Aggressive DRAM with Mild functional units — that
a uniform Table 2 level cannot express.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.apps import ALL_APPS, AppSpec
from repro.energy.model import SERVER, estimate_energy
from repro.experiments.harness import mean_qos, run_app
from repro.hardware.config import (
    AGGRESSIVE,
    BASELINE,
    MEDIUM,
    MILD,
    STRATEGY_NAMES,
    HardwareConfig,
)

__all__ = ["compose_config", "autotune", "TuneResult", "autotune_suite", "format_tuning", "main"]

#: Level ladder indexed by the tuner (0 = off).
LEVELS = (BASELINE, MILD, MEDIUM, AGGRESSIVE)

#: Tunable mechanisms.  Unlike the ablation study's five strategies,
#: SRAM read upsets and write failures are one knob here: both are
#: consequences of the same supply-voltage reduction, so a config with
#: them at different levels is not physically realisable.
TUNABLE = ("dram", "sram", "float_width", "timing")

_STRATEGY_FIELDS = {
    "dram": ("dram_flip_per_second", "dram_power_saving"),
    "sram": ("sram_read_upset", "sram_write_failure", "sram_power_saving"),
    "float_width": ("float_mantissa_bits", "double_mantissa_bits", "fp_op_saving"),
    "timing": ("timing_error_prob", "int_op_saving"),
}


def compose_config(levels: Dict[str, int], name: str = "tuned") -> HardwareConfig:
    """Build a heterogeneous config from per-mechanism level indices."""
    fields = dataclasses.asdict(BASELINE)
    for strategy, level_index in levels.items():
        source = LEVELS[level_index]
        for field_name in _STRATEGY_FIELDS[strategy]:
            # A mechanism at a higher level may not *lower* a shared
            # saving another mechanism already raised (sram_read and
            # sram_write share the supply-power saving).
            value = getattr(source, field_name)
            if field_name.endswith("_saving"):
                fields[field_name] = max(fields[field_name], value)
            else:
                fields[field_name] = value
    fields["name"] = name
    return HardwareConfig(**fields)


@dataclasses.dataclass
class TuneResult:
    """Outcome of tuning one application."""

    app: str
    levels: Dict[str, int]
    config: HardwareConfig
    measured_qos: float
    energy: float
    evaluations: int

    @property
    def savings(self) -> float:
        return 1.0 - self.energy


def autotune(
    spec: AppSpec,
    qos_budget: float = 0.05,
    runs: int = 5,
    max_level: int = 3,
) -> TuneResult:
    """Greedy coordinate ascent over per-mechanism levels.

    Repeatedly evaluates every single-step upgrade of a mechanism,
    keeps those whose measured mean QoS error stays within budget, and
    commits the one with the lowest estimated energy; stops when no
    upgrade is admissible.
    """
    stats = run_app(spec, BASELINE, fault_seed=0, workload_seed=0).stats
    levels = {strategy: 0 for strategy in TUNABLE}
    evaluations = 0
    current_energy = 1.0
    current_qos = 0.0

    while True:
        best: Optional[Tuple[str, float, float]] = None  # strategy, energy, qos
        for strategy in TUNABLE:
            if levels[strategy] >= max_level:
                continue
            candidate_levels = dict(levels)
            candidate_levels[strategy] += 1
            candidate = compose_config(candidate_levels)
            energy = estimate_energy(stats, candidate, SERVER).total
            if energy >= current_energy - 1e-9:
                # No energy benefit (e.g. the app has no FP work):
                # raising the level only adds error.
                continue
            qos = mean_qos(spec, candidate, runs=runs)
            evaluations += 1
            if qos <= qos_budget and (best is None or energy < best[1]):
                best = (strategy, energy, qos)
        if best is None:
            break
        strategy, current_energy, current_qos = best
        levels[strategy] += 1

    return TuneResult(
        app=spec.name,
        levels=levels,
        config=compose_config(levels, name=f"tuned:{spec.name}"),
        measured_qos=current_qos,
        energy=current_energy,
        evaluations=evaluations,
    )


def autotune_suite(
    qos_budget: float = 0.05,
    runs: int = 5,
    apps: Optional[List[AppSpec]] = None,
) -> List[TuneResult]:
    return [autotune(spec, qos_budget, runs) for spec in (apps or ALL_APPS)]


def format_tuning(results: List[TuneResult], qos_budget: float) -> str:
    header = (
        f"{'Application':14s} "
        + "".join(f" {name:>11s}" for name in TUNABLE)
        + f" {'QoS':>7s} {'saved':>7s} {'evals':>6s}"
    )
    level_names = ("off", "mild", "med", "aggr")
    lines = [f"QoS budget: {qos_budget}", header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.app:14s} "
            + "".join(f" {level_names[result.levels[n]]:>11s}" for n in TUNABLE)
            + f" {result.measured_qos:>7.3f} {result.savings:>7.1%} "
            f"{result.evaluations:>6d}"
        )
    return "\n".join(lines)


def main() -> None:
    budget = 0.05
    results = autotune_suite(qos_budget=budget, runs=5)
    print("Offline per-application tuning (paper Section 6.2 suggestion)")
    print(format_tuning(results, budget))


if __name__ == "__main__":
    main()
