"""Online QoS-driven level control (the paper's Green comparison).

EnerJ's guarantees are static, but the paper positions it against
Green's "online monitoring of application QoS" and suggests continuous
QoS measurement as one way to tune the substrate (Section 6.2).  This
module implements that controller on top of our simulator:

the application runs repeatedly (a service processing requests); every
``window`` runs the controller samples one request's QoS against the
precise output and moves the approximation level one step — up on
comfortable margin, down on violation.  The controller needs no
application knowledge beyond the QoS metric, and converges to the most
aggressive level the application tolerates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.apps import ALL_APPS, AppSpec
from repro.experiments.harness import RunKey, qos_error
from repro.hardware.config import AGGRESSIVE, BASELINE, MEDIUM, MILD

__all__ = ["MonitorTrace", "run_online_monitor", "format_trace", "main"]

#: The controller's ladder (index = level).
LADDER = (BASELINE, MILD, MEDIUM, AGGRESSIVE)


@dataclasses.dataclass
class MonitorTrace:
    """What the controller did over one session."""

    app: str
    qos_budget: float
    levels: List[int]
    samples: List[float]
    violations: int

    @property
    def final_level(self) -> int:
        return self.levels[-1]

    @property
    def mean_level(self) -> float:
        return sum(self.levels) / len(self.levels)


def run_online_monitor(
    spec: AppSpec,
    qos_budget: float = 0.05,
    requests: int = 30,
    start_level: int = 1,
    headroom: float = 0.5,
) -> MonitorTrace:
    """Serve ``requests`` runs, adapting the level from measured QoS.

    Policy (Green-style additive increase / immediate decrease):

    * sampled error above the budget → step the level down immediately;
    * sampled error below ``headroom * budget`` → step up;
    * otherwise hold.
    """
    level = max(0, min(start_level, len(LADDER) - 1))
    levels: List[int] = []
    samples: List[float] = []
    violations = 0

    for request in range(requests):
        config = LADDER[level]
        error = qos_error(
            RunKey(spec=spec, config=config, fault_seed=request + 1, workload_seed=0)
        )
        levels.append(level)
        samples.append(error)
        if error > qos_budget:
            violations += 1
            if level > 0:
                level -= 1
        elif error < headroom * qos_budget and level < len(LADDER) - 1:
            level += 1

    return MonitorTrace(spec.name, qos_budget, levels, samples, violations)


def format_trace(trace: MonitorTrace) -> str:
    picture = "".join(str(level) for level in trace.levels)
    return (
        f"{trace.app:14s} levels {picture}  "
        f"final={LADDER[trace.final_level].name:10s} "
        f"violations={trace.violations}/{len(trace.levels)}"
    )


def main() -> None:
    print("Online QoS monitoring (Green-style controller, budget 0.05)")
    for spec in ALL_APPS:
        print(format_trace(run_online_monitor(spec)))


if __name__ == "__main__":
    main()
