"""Section 6.2 sensitivity analyses.

Two studies from the paper's quality-of-service discussion:

* **Per-strategy isolation** — "we also measured the relative impact of
  various approximation strategies by running our benchmark suite with
  each optimization enabled in isolation."  Expected shape: DRAM errors
  nearly negligible; FP bit-width reduction modest; SRAM write errors
  worse than read upsets; functional-unit voltage reduction worst.
* **Error modes** — single bit flip and last-value FU errors cause
  significantly less QoS loss than the (most realistic) random-value
  model (the paper reports roughly 25% vs 40%).

Both sweeps share their baseline-reference cells with Figure 5 in the
persistent run store (config digests identify the ablated configs), so
a warm store only simulates the mechanism-isolated cells themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import ALL_APPS
from repro.experiments.harness import mean_qos
from repro.hardware.config import AGGRESSIVE, STRATEGY_NAMES, ErrorMode, HardwareConfig

__all__ = [
    "strategy_isolation_rows",
    "error_mode_rows",
    "format_strategy_isolation",
    "format_error_modes",
    "main",
]


def _qos_sweep_rows(
    columns: Sequence[Tuple[str, HardwareConfig]], runs: int, jobs: Optional[int]
) -> List[Dict[str, float]]:
    """Mean QoS per app for each labelled configuration column.

    With ``jobs > 1`` the whole app x column x seed grid fans out at
    once; each cell is averaged over its seeds in serial order, keeping
    the numbers bit-identical to the serial sweep.
    """
    if jobs is not None and jobs > 1:
        from repro.experiments.executor import Job, mean_of, run_jobs

        grid = [
            Job(spec=spec, config=config, fault_seed=fault_seed)
            for spec in ALL_APPS
            for _, config in columns
            for fault_seed in range(1, runs + 1)
        ]
        errors = run_jobs(grid, workers=jobs)
        rows = []
        cursor = 0
        for spec in ALL_APPS:
            row: Dict[str, object] = {"app": spec.name}
            for label, _ in columns:
                row[label] = mean_of(errors[cursor : cursor + runs])
                cursor += runs
            rows.append(row)
        return rows
    rows = []
    for spec in ALL_APPS:
        row = {"app": spec.name}
        for label, config in columns:
            row[label] = mean_qos(spec, config, runs=runs)
        rows.append(row)
    return rows


def strategy_isolation_rows(
    runs: int = 10, level=None, jobs: Optional[int] = None
) -> List[Dict[str, float]]:
    """Mean QoS error per app with each mechanism enabled alone.

    The default level is Medium — the configuration whose parameters
    all come from the literature, and the one where the paper's claimed
    read/write asymmetry exists (read upsets at 10^-7.4 vs write
    failures at 10^-4.94; the Aggressive level sets both to 10^-3, so
    there the more-frequent reads would dominate trivially).
    """
    from repro.hardware.config import MEDIUM

    base = level if level is not None else MEDIUM
    columns = [(strategy, base.only(strategy)) for strategy in STRATEGY_NAMES]
    return _qos_sweep_rows(columns, runs, jobs)


def error_mode_rows(
    runs: int = 10, jobs: Optional[int] = None
) -> List[Dict[str, float]]:
    """Mean QoS error per app under the three FU error models.

    Only the timing-error mechanism is enabled (Aggressive level) so the
    comparison isolates the error mode itself.
    """
    timing_only = AGGRESSIVE.only("timing")
    columns = [
        (mode.value, timing_only.with_error_mode(mode)) for mode in ErrorMode
    ]
    return _qos_sweep_rows(columns, runs, jobs)


def _mean_over_apps(rows: List[Dict[str, float]], key: str) -> float:
    return sum(row[key] for row in rows) / len(rows)


def format_strategy_isolation(
    rows: List[Dict[str, float]] = None, runs: int = 10, jobs: Optional[int] = None
) -> str:
    if rows is None:
        rows = strategy_isolation_rows(runs, jobs=jobs)
    header = f"{'Application':14s}" + "".join(f" {name:>12s}" for name in STRATEGY_NAMES)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s}"
            + "".join(f" {row[name]:>12.3f}" for name in STRATEGY_NAMES)
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'mean':14s}"
        + "".join(f" {_mean_over_apps(rows, name):>12.3f}" for name in STRATEGY_NAMES)
    )
    return "\n".join(lines)


def format_error_modes(
    rows: List[Dict[str, float]] = None, runs: int = 10, jobs: Optional[int] = None
) -> str:
    if rows is None:
        rows = error_mode_rows(runs, jobs=jobs)
    modes = [mode.value for mode in ErrorMode]
    header = f"{'Application':14s}" + "".join(f" {mode:>12s}" for mode in modes)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s}" + "".join(f" {row[mode]:>12.3f}" for mode in modes)
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'mean':14s}"
        + "".join(f" {_mean_over_apps(rows, mode):>12.3f}" for mode in modes)
    )
    return "\n".join(lines)


def main(jobs: Optional[int] = None) -> None:
    print("Section 6.2a: QoS error with each Medium mechanism in isolation")
    print(format_strategy_isolation(jobs=jobs))
    print()
    print("Section 6.2b: QoS error under the three functional-unit error modes")
    print(format_error_modes(jobs=jobs))


if __name__ == "__main__":
    main()
