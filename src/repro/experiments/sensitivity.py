"""Section 6.2 sensitivity analyses.

Two studies from the paper's quality-of-service discussion:

* **Per-strategy isolation** — "we also measured the relative impact of
  various approximation strategies by running our benchmark suite with
  each optimization enabled in isolation."  Expected shape: DRAM errors
  nearly negligible; FP bit-width reduction modest; SRAM write errors
  worse than read upsets; functional-unit voltage reduction worst.
* **Error modes** — single bit flip and last-value FU errors cause
  significantly less QoS loss than the (most realistic) random-value
  model (the paper reports roughly 25% vs 40%).
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import ALL_APPS
from repro.experiments.harness import mean_qos
from repro.hardware.config import AGGRESSIVE, STRATEGY_NAMES, ErrorMode

__all__ = [
    "strategy_isolation_rows",
    "error_mode_rows",
    "format_strategy_isolation",
    "format_error_modes",
    "main",
]


def strategy_isolation_rows(runs: int = 10, level=None) -> List[Dict[str, float]]:
    """Mean QoS error per app with each mechanism enabled alone.

    The default level is Medium — the configuration whose parameters
    all come from the literature, and the one where the paper's claimed
    read/write asymmetry exists (read upsets at 10^-7.4 vs write
    failures at 10^-4.94; the Aggressive level sets both to 10^-3, so
    there the more-frequent reads would dominate trivially).
    """
    from repro.hardware.config import MEDIUM

    base = level if level is not None else MEDIUM
    rows = []
    for spec in ALL_APPS:
        row: Dict[str, object] = {"app": spec.name}
        for strategy in STRATEGY_NAMES:
            config = base.only(strategy)
            row[strategy] = mean_qos(spec, config, runs=runs)
        rows.append(row)
    return rows


def error_mode_rows(runs: int = 10) -> List[Dict[str, float]]:
    """Mean QoS error per app under the three FU error models.

    Only the timing-error mechanism is enabled (Aggressive level) so the
    comparison isolates the error mode itself.
    """
    rows = []
    timing_only = AGGRESSIVE.only("timing")
    for spec in ALL_APPS:
        row: Dict[str, object] = {"app": spec.name}
        for mode in ErrorMode:
            config = timing_only.with_error_mode(mode)
            row[mode.value] = mean_qos(spec, config, runs=runs)
        rows.append(row)
    return rows


def _mean_over_apps(rows: List[Dict[str, float]], key: str) -> float:
    return sum(row[key] for row in rows) / len(rows)


def format_strategy_isolation(rows: List[Dict[str, float]] = None, runs: int = 10) -> str:
    if rows is None:
        rows = strategy_isolation_rows(runs)
    header = f"{'Application':14s}" + "".join(f" {name:>12s}" for name in STRATEGY_NAMES)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s}"
            + "".join(f" {row[name]:>12.3f}" for name in STRATEGY_NAMES)
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'mean':14s}"
        + "".join(f" {_mean_over_apps(rows, name):>12.3f}" for name in STRATEGY_NAMES)
    )
    return "\n".join(lines)


def format_error_modes(rows: List[Dict[str, float]] = None, runs: int = 10) -> str:
    if rows is None:
        rows = error_mode_rows(runs)
    modes = [mode.value for mode in ErrorMode]
    header = f"{'Application':14s}" + "".join(f" {mode:>12s}" for mode in modes)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s}" + "".join(f" {row[mode]:>12.3f}" for mode in modes)
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'mean':14s}"
        + "".join(f" {_mean_over_apps(rows, mode):>12.3f}" for mode in modes)
    )
    return "\n".join(lines)


def main() -> None:
    print("Section 6.2a: QoS error with each Medium mechanism in isolation")
    print(format_strategy_isolation())
    print()
    print("Section 6.2b: QoS error under the three functional-unit error modes")
    print(format_error_modes())


if __name__ == "__main__":
    main()
