"""Table 3: applications, QoS metrics, and annotation density.

Per application: description, QoS metric, lines of code, the dynamic
proportion of floating-point arithmetic, declaration counts, the
fraction annotated, and the endorsement count — the paper's Table 3,
measured over our ports.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import ALL_APPS, AppSpec
from repro.experiments.annotations_census import census_app
from repro.experiments.harness import RunKey, run_key
from repro.hardware.config import BASELINE

__all__ = ["table3_rows", "format_table3", "main"]


def table3_row(spec: AppSpec) -> Dict[str, object]:
    census = census_app(spec)
    stats = run_key(
        RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=0)
    ).stats
    return {
        "app": spec.name,
        "description": spec.description,
        "error_metric": spec.qos_name,
        "loc": census.lines_of_code,
        "fp_proportion": stats.fp_proportion,
        "declarations": census.declarations,
        "annotated_fraction": census.annotated_fraction,
        "endorsements": census.endorsements,
        "dynamic_endorsements": stats.endorsements,
    }


def table3_rows() -> List[Dict[str, object]]:
    return [table3_row(spec) for spec in ALL_APPS]


def format_table3(rows: List[Dict[str, object]] = None) -> str:
    if rows is None:
        rows = table3_rows()
    header = (
        f"{'Application':14s} {'LoC':>5s} {'FP%':>6s} {'Decls':>6s} "
        f"{'Annot%':>7s} {'Endorse':>8s} {'DynEnd':>8s}  Error metric"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['app']:14s} {row['loc']:>5d} {row['fp_proportion']:>6.1%} "
            f"{row['declarations']:>6d} {row['annotated_fraction']:>7.1%} "
            f"{row['endorsements']:>8d} {row['dynamic_endorsements']:>8d}  "
            f"{row['error_metric']}"
        )
    return "\n".join(lines)


def main() -> None:
    print("Table 3: applications, QoS metrics, and annotation density")
    print(format_table3())


if __name__ == "__main__":
    main()
