"""Structured fault/energy tracing and metrics for the simulator.

The observability layer threads a :class:`~repro.observability.tracer
.Tracer` through the whole simulation stack: every fault-injection site
(SRAM read upset / write failure, DRAM decay, ALU timing error, FPU
timing error / mantissa truncation) and every energy-accounting update
emits a typed :class:`~repro.observability.events.TraceEvent` into a
pluggable :class:`~repro.observability.sink.TraceSink`, while a
:class:`~repro.observability.metrics.MetricsRegistry` aggregates
counters and histograms alongside :class:`~repro.runtime.stats
.RunStats`.

Tracing is strictly opt-in: a :class:`~repro.runtime.context.Simulator`
constructed without a tracer pays only a single ``is not None`` branch
per potential emission site (`benchmarks/bench_trace_overhead.py` pins
the cost below 10%).

The full event schema, metric catalog, and backend API are documented
field-by-field in ``OBSERVABILITY.md`` at the repository root.
"""

from repro.observability.events import (
    COMPONENTS,
    EVENT_KINDS,
    SCHEMA_VERSION,
    TraceEvent,
    validate_event_dict,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.report import TraceFile, read_trace, summarize, write_trace
from repro.observability.runner import (
    TraceResult,
    canonical_events,
    merge_trace_results,
    traced_run,
    traced_runs,
)
from repro.observability.sink import JsonlSink, MemorySink, NullSink, TraceSink
from repro.observability.tracer import TraceFilter, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "COMPONENTS",
    "EVENT_KINDS",
    "TraceEvent",
    "validate_event_dict",
    "MetricsRegistry",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "NullSink",
    "Tracer",
    "TraceFilter",
    "TraceResult",
    "traced_run",
    "traced_runs",
    "merge_trace_results",
    "canonical_events",
    "TraceFile",
    "write_trace",
    "read_trace",
    "summarize",
]
