"""Counters and histograms aggregated alongside :class:`RunStats`.

A :class:`MetricsRegistry` is the numeric sibling of the event stream:
where the :class:`~repro.observability.sink.TraceSink` keeps *which*
fault hit *where*, the registry keeps totals — faults per component,
bit-flip position histograms, endorse-site hit counts, storage-energy
byte counters.  Registries merge exactly (integer addition, like
:meth:`repro.runtime.stats.RunStats.merge`), so metrics aggregated from
split seed ranges under the parallel executor equal the unsplit serial
aggregate; ``tests/test_trace_determinism.py`` pins the algebra the way
``tests/test_stats_merge.py`` pins the stats algebra.

Metric names are dotted strings; the catalog lives in OBSERVABILITY.md.
"""

from __future__ import annotations

from typing import Dict, Iterable

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Histogram:
    """A discrete histogram: integer bucket -> observation count.

    Buckets are exact values (bit positions 0..63, byte counts, ...),
    not ranges — every distribution the simulator traces is small and
    discrete, so exactness beats bucketing.
    """

    __slots__ = ("buckets",)

    def __init__(self, buckets: Dict[int, int] = None) -> None:
        self.buckets = dict(buckets) if buckets else {}

    def observe(self, bucket: int, count: int = 1) -> None:
        self.buckets[bucket] = self.buckets.get(bucket, 0) + count

    @property
    def total(self) -> int:
        return sum(self.buckets.values())

    def as_sorted_items(self):
        return sorted(self.buckets.items())

    def __repr__(self) -> str:
        return f"Histogram({dict(self.as_sorted_items())})"


class MetricsRegistry:
    """A named collection of counters and histograms.

    Lookups auto-create, so emission sites never pre-register::

        registry.counter("sram.read_upset").inc()
        registry.histogram("bitflip.position.sram").observe(bit)
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    def counter_value(self, name: str) -> int:
        """The counter's value, zero if never incremented."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    @property
    def counter_names(self):
        return sorted(self._counters)

    @property
    def histogram_names(self):
        return sorted(self._histograms)

    # ------------------------------------------------------------------
    # Merging (mirrors RunStats.merge: exact integer addition)
    # ------------------------------------------------------------------
    def __add__(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Name-wise sum; associative and commutative like RunStats."""
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        merged = MetricsRegistry()
        for source in (self, other):
            for name, counter in source._counters.items():
                merged.counter(name).inc(counter.value)
            for name, histogram in source._histograms.items():
                target = merged.histogram(name)
                for bucket, count in histogram.buckets.items():
                    target.observe(bucket, count)
        return merged

    @classmethod
    def merge(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Aggregate any number of registries (empty input -> empty)."""
        merged = cls()
        for registry in registries:
            merged = merged + registry
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Deterministic wire form: sorted names, sorted buckets.

        Zero-valued counters are preserved (a registered-but-quiet site
        is information); histogram buckets are keyed by stringified
        integers so the dict round-trips through JSON unchanged.
        """
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "histograms": {
                name: {
                    str(bucket): count
                    for bucket, count in self._histograms[name].as_sorted_items()
                }
                for name in sorted(self._histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsRegistry":
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, buckets in data.get("histograms", {}).items():
            histogram = registry.histogram(name)
            for bucket, count in buckets.items():
                histogram.observe(int(bucket), int(count))
        return registry

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._histograms)} histograms)"
        )
