"""The typed trace event and its wire schema.

One :class:`TraceEvent` records one observable incident inside a
simulated run: a fault injected by a hardware unit, an approximation
applied (FPU mantissa truncation), an endorsement crossing the
approximate/precise boundary, or an energy-accounting update.  Events
are plain frozen dataclasses so they pickle cheaply across the parallel
executor and serialise canonically to JSONL.

Identity is *deterministic*: heap containers are named by their
registration ordinal (``array#3``), never by ``id()``, so the event
stream of a run depends only on ``(app, config, fault_seed,
workload_seed)`` — bit-identical at ``--jobs 1`` and ``--jobs 4``.

``OBSERVABILITY.md`` documents every field; :func:`validate_event_dict`
is the executable form of that contract.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Dict, Optional, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "COMPONENTS",
    "EVENT_KINDS",
    "TraceEvent",
    "validate_event_dict",
]

#: Bumped whenever the JSONL schema changes shape.
SCHEMA_VERSION = 1

#: Every component a trace event may originate from.
COMPONENTS = ("sram", "dram", "alu", "fpu", "energy", "runtime")

#: kind -> originating component.  The catalog mirrors OBSERVABILITY.md.
EVENT_KINDS: Dict[str, str] = {
    "sram.read_upset": "sram",
    "sram.write_failure": "sram",
    "dram.decay": "dram",
    "alu.timing_error": "alu",
    "fpu.timing_error": "fpu",
    "fpu.truncation": "fpu",
    "runtime.endorse": "runtime",
    "energy.alloc": "energy",
    "energy.free": "energy",
}

_REQUIRED_FIELDS = (
    "v",
    "seq",
    "cycle",
    "component",
    "kind",
    "identity",
    "fault_seed",
    "bits",
    "before",
    "after",
)


def _json_safe(value):
    """A JSON-encodable rendering of a traced value.

    Non-finite floats have no canonical JSON form, so they are encoded
    as the strings ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"``; bools,
    ints, finite floats and strings pass through; anything else is
    ``repr``-ed.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    return repr(value)


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured incident inside a simulated run."""

    #: Monotonic per-run sequence number (ties broken nowhere: unique).
    seq: int
    #: Logical-clock ticks (simulated cycles) at emission time.
    cycle: int
    #: Originating component, one of :data:`COMPONENTS`.
    component: str
    #: Dotted event type, one of :data:`EVENT_KINDS`.
    kind: str
    #: Deterministic site identity, e.g. ``"array#3[17]"``,
    #: ``"local:float"``, ``"alu:mul"``.
    identity: str
    #: Fault seed of the run that produced the event.
    fault_seed: int
    #: Bit positions flipped (LSB = 0); empty when not a bit-level fault.
    bits: Tuple[int, ...] = ()
    #: Value before the incident (JSON-safe domain).
    before: object = None
    #: Value after the incident.
    after: object = None
    #: Optional component-specific payload (small, JSON-safe dict).
    extra: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def sort_key(self) -> Tuple[int, int]:
        """Canonical trace order: by fault seed, then emission order."""
        return (self.fault_seed, self.seq)

    def to_dict(self) -> Dict[str, object]:
        """The wire form (what one JSONL line decodes to)."""
        data: Dict[str, object] = {
            "v": SCHEMA_VERSION,
            "seq": self.seq,
            "cycle": self.cycle,
            "component": self.component,
            "kind": self.kind,
            "identity": self.identity,
            "fault_seed": self.fault_seed,
            "bits": list(self.bits),
            "before": _json_safe(self.before),
            "after": _json_safe(self.after),
        }
        if self.extra:
            data["extra"] = {k: _json_safe(v) for k, v in sorted(self.extra.items())}
        return data

    def to_json(self) -> str:
        """Canonical JSONL line: sorted keys, no whitespace."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        validate_event_dict(data)
        return cls(
            seq=data["seq"],
            cycle=data["cycle"],
            component=data["component"],
            kind=data["kind"],
            identity=data["identity"],
            fault_seed=data["fault_seed"],
            bits=tuple(data["bits"]),
            before=data["before"],
            after=data["after"],
            extra=dict(data["extra"]) if "extra" in data else None,
        )


def validate_event_dict(data: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``data`` is a schema-valid event.

    This is the executable contract behind OBSERVABILITY.md's schema
    table, used by ``repro trace-report`` and the test suite.
    """
    if not isinstance(data, dict):
        raise ValueError(f"event must be an object, got {type(data).__name__}")
    missing = [name for name in _REQUIRED_FIELDS if name not in data]
    if missing:
        raise ValueError(f"event missing fields: {', '.join(missing)}")
    if data["v"] != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {data['v']!r}")
    for name in ("seq", "cycle", "fault_seed"):
        if not isinstance(data[name], int) or isinstance(data[name], bool):
            raise ValueError(f"event field {name!r} must be an integer")
        if name != "fault_seed" and data[name] < 0:
            raise ValueError(f"event field {name!r} must be non-negative")
    if data["component"] not in COMPONENTS:
        raise ValueError(f"unknown component {data['component']!r}")
    kind = data["kind"]
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {kind!r}")
    if EVENT_KINDS[kind] != data["component"]:
        raise ValueError(
            f"kind {kind!r} belongs to component {EVENT_KINDS[kind]!r}, "
            f"not {data['component']!r}"
        )
    if not isinstance(data["identity"], str) or not data["identity"]:
        raise ValueError("event field 'identity' must be a non-empty string")
    bits = data["bits"]
    if not isinstance(bits, (list, tuple)):
        raise ValueError("event field 'bits' must be a list")
    for bit in bits:
        if not isinstance(bit, int) or isinstance(bit, bool) or not 0 <= bit < 64:
            raise ValueError(f"bit position {bit!r} out of range [0, 64)")
    if "extra" in data and not isinstance(data["extra"], dict):
        raise ValueError("event field 'extra' must be an object")
