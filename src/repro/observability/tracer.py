"""The tracer: the one object the simulation stack emits through.

A :class:`Tracer` couples a sink, a filter, and a
:class:`~repro.observability.metrics.MetricsRegistry`.  The hardware
units and the :class:`~repro.runtime.context.Simulator` hold a
reference (``None`` when tracing is off, so the disabled hot path pays
exactly one ``is not None`` branch) and call :meth:`emit` at each fault
or accounting site.

Every emission updates the metrics; the filter only gates what reaches
the sink.  Timestamps come from the simulator's logical clock, bound by
:meth:`attach` when the :class:`Simulator` is constructed — a tracer is
therefore single-run: build a fresh one per ``(config, seed)`` run, as
:func:`repro.observability.runner.traced_run` does.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.observability.events import EVENT_KINDS, TraceEvent
from repro.observability.metrics import MetricsRegistry
from repro.observability.sink import MemorySink, TraceSink

__all__ = ["Tracer", "TraceFilter"]


class TraceFilter:
    """Conjunctive event filter parsed from ``key=value`` terms.

    Supported keys: ``component`` and ``kind``.  A value may be a
    comma-separated list (OR within a key); multiple terms AND::

        TraceFilter.parse(["component=sram,dram"])   # either component
        TraceFilter.parse(["kind=dram.decay"])       # exactly one kind

    An empty filter accepts everything.
    """

    def __init__(
        self,
        components: Optional[Sequence[str]] = None,
        kinds: Optional[Sequence[str]] = None,
    ) -> None:
        self.components = frozenset(components) if components else None
        self.kinds = frozenset(kinds) if kinds else None

    @classmethod
    def parse(cls, terms: Optional[Iterable[str]]) -> "TraceFilter":
        components: Optional[Tuple[str, ...]] = None
        kinds: Optional[Tuple[str, ...]] = None
        for term in terms or ():
            key, sep, value = term.partition("=")
            if not sep or not value:
                raise ValueError(
                    f"bad trace filter {term!r}: expected key=value "
                    "(e.g. component=sram or kind=dram.decay)"
                )
            values = tuple(v.strip() for v in value.split(",") if v.strip())
            if key == "component":
                components = (components or ()) + values
            elif key == "kind":
                kinds = (kinds or ()) + values
            else:
                raise ValueError(
                    f"bad trace filter key {key!r}: use 'component' or 'kind'"
                )
        return cls(components, kinds)

    def accepts(self, component: str, kind: str) -> bool:
        if self.components is not None and component not in self.components:
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        return True

    @property
    def is_empty(self) -> bool:
        return self.components is None and self.kinds is None


class Tracer:
    """Emission point shared by every traced component of one run."""

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        trace_filter: Optional[Union[TraceFilter, Iterable[str]]] = None,
    ) -> None:
        self.sink = sink if sink is not None else MemorySink()
        if trace_filter is None:
            self.filter = TraceFilter()
        elif isinstance(trace_filter, TraceFilter):
            self.filter = trace_filter
        else:
            self.filter = TraceFilter.parse(trace_filter)
        self.metrics = MetricsRegistry()
        self.fault_seed = 0
        self._clock = None
        self._seq = 0

    # ------------------------------------------------------------------
    def attach(self, clock, fault_seed: int) -> None:
        """Bind the run's logical clock and fault seed (Simulator calls)."""
        self._clock = clock
        self.fault_seed = fault_seed

    @property
    def events_emitted(self) -> int:
        return self._seq

    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        identity: str,
        bits: Tuple[int, ...] = (),
        before=None,
        after=None,
        cycle: Optional[int] = None,
        extra=None,
    ) -> None:
        """Record one incident: update metrics, then maybe sink an event.

        ``kind`` must be in :data:`~repro.observability.events
        .EVENT_KINDS`; the component is derived from it.  ``cycle``
        defaults to the attached clock's current tick.
        """
        component = EVENT_KINDS[kind]
        self.metrics.counter(kind).inc()
        if bits:
            histogram = self.metrics.histogram(f"bitflip.position.{component}")
            for bit in bits:
                histogram.observe(bit)
        event = TraceEvent(
            seq=self._seq,
            cycle=cycle if cycle is not None else (self._clock.ticks if self._clock else 0),
            component=component,
            kind=kind,
            identity=identity,
            fault_seed=self.fault_seed,
            bits=tuple(bits),
            before=before,
            after=after,
            extra=extra,
        )
        self._seq += 1
        if self.filter.accepts(component, kind):
            self.sink.emit(event)

    def close(self) -> None:
        self.sink.close()
