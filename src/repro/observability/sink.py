"""Trace sinks: where emitted events go.

Three backends cover the use cases:

* :class:`MemorySink` — a bounded ring buffer (``collections.deque``)
  holding the most recent events; the default for programmatic use and
  for the parallel executor's ``trace`` task (events must pickle back
  to the parent).
* :class:`JsonlSink` — one canonical JSON line per event, streamed to a
  file; what ``repro trace --trace-out`` writes.
* :class:`NullSink` — swallows events while the tracer's metrics keep
  aggregating; the cheapest way to meter a run without keeping a trace.

Sinks never filter — that is the tracer's job — and never reorder:
events arrive in emission order (``seq`` ascending within a run).
"""

from __future__ import annotations

from collections import deque
from typing import IO, List, Optional, Union

from repro.observability.events import TraceEvent

__all__ = ["TraceSink", "MemorySink", "JsonlSink", "NullSink", "DEFAULT_CAPACITY"]

#: Default ring-buffer capacity: enough for every fault a realistic
#: Figure 5 run injects, small enough to never matter in memory.
DEFAULT_CAPACITY = 65536


class TraceSink:
    """Backend interface: override :meth:`emit` (and maybe ``close``)."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; idempotent."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullSink(TraceSink):
    """Swallows every event (metrics-only tracing)."""

    def emit(self, event: TraceEvent) -> None:
        pass


class MemorySink(TraceSink):
    """Ring-buffered in-memory sink keeping the most recent events."""

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        #: Events evicted by the ring (oldest-first) — observable so a
        #: truncated trace is never mistaken for a complete one.
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink(TraceSink):
    """Streams one canonical JSON line per event to a file.

    Accepts a path (opened/owned by the sink) or an open text handle
    (borrowed; ``close`` only flushes it).
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(event.to_json())
        self._handle.write("\n")
        self.emitted += 1

    def write_line(self, payload: str) -> None:
        """Write one non-event line (the meta/summary records)."""
        self._handle.write(payload)
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
