"""Traced execution and deterministic multi-run merging.

:func:`traced_run` is the single-run primitive: one app, one config,
one fault seed, traced into an in-memory ring.  :func:`traced_runs`
fans a seed range through :mod:`repro.experiments.executor` (the
``trace`` task), so ``--jobs N`` tracing inherits the executor's
determinism guarantees: results return in seed order and each run's
event stream depends only on its seeds, never on scheduling.

Merging is canonical: events are ordered by ``(fault_seed, seq)`` —
each run's stream is already ``seq``-ascending, so the merged trace at
``jobs=4`` is bit-identical to ``jobs=1`` (pinned by
``tests/test_trace_determinism.py``).  Stats merge through
:meth:`RunStats.merge`, metrics through :meth:`MetricsRegistry.merge`;
both are exact integer addition, so grouping never matters.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.hardware.config import HardwareConfig
from repro.observability.events import TraceEvent
from repro.observability.metrics import MetricsRegistry
from repro.observability.sink import DEFAULT_CAPACITY, MemorySink
from repro.observability.tracer import Tracer
from repro.runtime.stats import RunStats

__all__ = [
    "TraceResult",
    "traced_run",
    "traced_runs",
    "traced_runs_batch",
    "merge_trace_results",
    "canonical_events",
]


@dataclasses.dataclass(frozen=True)
class TraceResult:
    """Everything one traced execution produced."""

    app: str
    config: str
    fault_seed: int
    workload_seed: int
    output: object
    stats: RunStats
    metrics: MetricsRegistry
    events: Tuple[TraceEvent, ...]
    #: Events evicted by the ring buffer (0 = the trace is complete).
    dropped: int


def traced_run(
    spec,
    config: Optional[HardwareConfig] = None,
    fault_seed: int = 0,
    workload_seed: int = 0,
    capacity: Optional[int] = DEFAULT_CAPACITY,
) -> TraceResult:
    """Run one app under one config with tracing on; return everything.

    Accepts either the historical ``(spec, config, fault_seed,
    workload_seed)`` keywords or a single
    :class:`~repro.experiments.runkey.RunKey` as the first argument.

    A fresh :class:`Tracer` (memory ring of ``capacity`` events) is
    built per run, so event ``seq`` numbers always start at zero and
    the result is a pure function of the arguments.

    Traced runs always execute (events cannot be reconstructed from the
    run store), but when a store is active the run's output, stats and
    a compact trace *summary* are written through alongside — so a
    traced cell still warms the campaign cache, and later ``repro
    cache stats`` can report which cells have been traced.
    """
    from repro.experiments.harness import run_key
    from repro.experiments.runkey import RunKey

    if isinstance(spec, RunKey):
        key = spec
        if config is not None or fault_seed or workload_seed:
            raise TypeError(
                "traced_run(RunKey, ...) takes no config or seed arguments; "
                "they are part of the key"
            )
    else:
        if config is None:
            raise TypeError("traced_run(spec, ...) requires a HardwareConfig")
        key = RunKey(
            spec=spec,
            config=config,
            fault_seed=fault_seed,
            workload_seed=workload_seed,
        )

    sink = MemorySink(capacity)
    tracer = Tracer(sink)
    result = run_key(key, tracer=tracer)
    events = tuple(sink.events())
    trace_result = TraceResult(
        app=key.spec.name,
        config=key.config.name,
        fault_seed=key.fault_seed,
        workload_seed=key.workload_seed,
        output=result.output,
        stats=result.stats,
        metrics=tracer.metrics,
        events=events,
        dropped=sink.dropped,
    )
    _store_trace_summary(key, trace_result)
    return trace_result


def _store_trace_summary(key, trace_result: TraceResult) -> None:
    """Write a traced run through the active store, summary attached."""
    from repro.store import active_store

    store = active_store()
    if store is None:
        return
    counters = trace_result.metrics.as_dict()["counters"]
    summary = {
        "events": len(trace_result.events),
        "dropped": trace_result.dropped,
        "counters": {kind: count for kind, count in counters.items() if count},
    }
    store.put(key, trace_result.output, trace_result.stats, trace_summary=summary)


def traced_runs(
    spec,
    config: HardwareConfig,
    fault_seeds: Sequence[int],
    workload_seed: int = 0,
    jobs: Optional[int] = None,
) -> List[TraceResult]:
    """Traced runs for a seed range, optionally fanned across processes.

    Always routed through :func:`repro.experiments.executor.run_jobs`
    (serial when ``jobs`` is ``None``/``<=1``), so the serial and
    parallel paths execute the identical per-run code.
    """
    from repro.experiments.executor import Job, run_jobs

    job_list = [
        Job(
            spec=spec,
            config=config,
            fault_seed=seed,
            workload_seed=workload_seed,
            task="trace",
        )
        for seed in fault_seeds
    ]
    return run_jobs(job_list, workers=jobs)


def traced_runs_batch(
    spec,
    config: HardwareConfig,
    fault_seeds: Sequence[int],
    workload_seed: int = 0,
    capacity: Optional[int] = DEFAULT_CAPACITY,
    engine: str = "auto",
) -> List[TraceResult]:
    """Traced runs for a seed block through one batched execution.

    One :class:`~repro.runtime.batch.BatchSimulator` execution produces
    every seed's :class:`TraceResult` at once; each lane's event stream,
    metrics and stats are bit-identical to :func:`traced_run` of that
    seed (pinned by ``tests/test_batch_differential.py``).  A single
    seed, a configuration the batch engine rejects, or any failure of
    the batched attempt falls back to per-seed :func:`traced_run` —
    batching never changes a trace, only its cost.
    """
    from repro.experiments.runkey import RunKey
    from repro.runtime.batch import BatchSimulator, unlane

    fault_seeds = list(fault_seeds)
    if not fault_seeds:
        return []
    keys = [
        RunKey(
            spec=spec,
            config=config,
            fault_seed=seed,
            workload_seed=workload_seed,
        )
        for seed in fault_seeds
    ]
    if len(keys) > 1:
        from repro.experiments.harness import compiled_app

        try:
            # Sinks and tracers are built inside the attempt so an
            # aborted batch discards its partial streams entirely.
            sinks = [MemorySink(capacity) for _ in keys]
            tracers = [Tracer(sink) for sink in sinks]
            program = compiled_app(spec)
            with BatchSimulator(
                config, fault_seeds, tracers=tracers, engine=engine
            ) as simulator:
                output = program.call(
                    spec.entry_module, spec.entry_function, *keys[0].workload_args
                )
        except KeyboardInterrupt:
            raise
        except Exception:
            return [traced_run(key, capacity=capacity) for key in keys]
        results = []
        for lane, key in enumerate(keys):
            trace_result = TraceResult(
                app=spec.name,
                config=config.name,
                fault_seed=key.fault_seed,
                workload_seed=workload_seed,
                output=unlane(output, lane),
                stats=simulator.lane_stats(lane),
                metrics=tracers[lane].metrics,
                events=tuple(sinks[lane].events()),
                dropped=sinks[lane].dropped,
            )
            _store_trace_summary(key, trace_result)
            results.append(trace_result)
        return results
    return [traced_run(key, capacity=capacity) for key in keys]


def canonical_events(results: Sequence[TraceResult]) -> List[TraceEvent]:
    """All events of a result set in canonical ``(fault_seed, seq)`` order."""
    events: List[TraceEvent] = []
    for result in results:
        events.extend(result.events)
    events.sort(key=lambda event: event.sort_key)
    return events


def merge_trace_results(
    results: Sequence[TraceResult],
) -> Tuple[RunStats, MetricsRegistry, List[TraceEvent], int]:
    """Aggregate a result set: (stats, metrics, canonical events, dropped)."""
    stats = RunStats.merge(result.stats for result in results)
    metrics = MetricsRegistry.merge(result.metrics for result in results)
    return stats, metrics, canonical_events(results), sum(r.dropped for r in results)
