"""Trace files: JSONL writing, reading, and summarising.

A trace file (what ``repro trace --trace-out`` writes and
``repro trace-report`` reads) is line-delimited JSON with three record
types, discriminated by the ``type`` field:

* one ``trace.meta`` header line (schema version, app, config, seeds,
  the filter applied, event/drop counts);
* zero or more event lines (``type`` absent — the plain
  :class:`~repro.observability.events.TraceEvent` wire form, in
  canonical ``(fault_seed, seq)`` order);
* one ``trace.summary`` trailer line (merged
  :class:`~repro.runtime.stats.RunStats` and
  :class:`~repro.observability.metrics.MetricsRegistry` dumps).

Every event line is validated against the schema on read, so a report
over a hand-edited or version-skewed file fails loudly rather than
summarising garbage.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, TextIO, Union

from repro.observability.events import SCHEMA_VERSION, validate_event_dict
from repro.observability.runner import TraceResult, merge_trace_results
from repro.observability.tracer import TraceFilter

__all__ = ["TraceFile", "write_trace", "read_trace", "summarize"]


@dataclasses.dataclass(frozen=True)
class TraceFile:
    """A parsed trace file: header, validated events, trailer."""

    meta: Dict[str, object]
    events: List[Dict[str, object]]
    summary: Optional[Dict[str, object]]


def _dump(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_trace(
    target: Union[str, TextIO],
    results: Sequence[TraceResult],
    trace_filter: Optional[TraceFilter] = None,
) -> int:
    """Write a result set as a trace file; returns events written.

    ``trace_filter`` selects which events land in the file (the
    metrics/stats in the trailer always cover the *unfiltered* run, so
    a filtered trace still carries the whole run's totals).
    """
    stats, metrics, events, dropped = merge_trace_results(results)
    if trace_filter is None:
        trace_filter = TraceFilter()
    selected = [
        event
        for event in events
        if trace_filter.accepts(event.component, event.kind)
    ]
    meta = {
        "type": "trace.meta",
        "v": SCHEMA_VERSION,
        "app": results[0].app if results else "",
        "config": results[0].config if results else "",
        "fault_seeds": [result.fault_seed for result in results],
        "workload_seed": results[0].workload_seed if results else 0,
        "events": len(selected),
        "events_emitted": len(events),
        "dropped": dropped,
        "filter": {
            "component": sorted(trace_filter.components) if trace_filter.components else None,
            "kind": sorted(trace_filter.kinds) if trace_filter.kinds else None,
        },
    }
    summary = {
        "type": "trace.summary",
        "v": SCHEMA_VERSION,
        "stats": stats.as_dict(),
        "metrics": metrics.as_dict(),
    }

    handle = open(target, "w", encoding="utf-8") if isinstance(target, str) else target
    try:
        handle.write(_dump(meta) + "\n")
        for event in selected:
            handle.write(event.to_json() + "\n")
        handle.write(_dump(summary) + "\n")
    finally:
        if isinstance(target, str):
            handle.close()
        else:
            handle.flush()
    return len(selected)


def read_trace(path: str) -> TraceFile:
    """Parse and validate a trace file written by :func:`write_trace`."""
    meta: Optional[Dict[str, object]] = None
    summary: Optional[Dict[str, object]] = None
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: not JSON: {exc}") from None
            record_type = record.get("type")
            if record_type == "trace.meta":
                meta = record
            elif record_type == "trace.summary":
                summary = record
            elif record_type is None:
                try:
                    validate_event_dict(record)
                except ValueError as exc:
                    raise ValueError(f"{path}:{line_number}: {exc}") from None
                events.append(record)
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown record type {record_type!r}"
                )
    if meta is None:
        raise ValueError(f"{path}: missing trace.meta header line")
    return TraceFile(meta=meta, events=events, summary=summary)


def _faults_per_kiloop(counters: Dict[str, int], ops_total: float) -> Dict[str, float]:
    if not ops_total:
        return {}
    fault_kinds = (
        "sram.read_upset",
        "sram.write_failure",
        "dram.decay",
        "alu.timing_error",
        "fpu.timing_error",
    )
    return {
        kind: 1000.0 * counters[kind] / ops_total
        for kind in fault_kinds
        if counters.get(kind)
    }


def summarize(trace: TraceFile, top: int = 5) -> str:
    """A human-readable report over one trace file."""
    lines: List[str] = []
    meta = trace.meta
    seeds = meta.get("fault_seeds", [])
    lines.append(
        f"trace     : {meta.get('app', '?')} @ {meta.get('config', '?')}, "
        f"{len(seeds)} run(s), fault seeds {seeds}"
    )
    lines.append(
        f"events    : {len(trace.events)} in file "
        f"({meta.get('events_emitted', '?')} emitted, {meta.get('dropped', 0)} dropped by ring)"
    )

    by_kind: Dict[str, int] = {}
    sites: Dict[str, int] = {}
    first_by_kind: Dict[str, Dict[str, object]] = {}
    for event in trace.events:
        kind = event["kind"]
        by_kind[kind] = by_kind.get(kind, 0) + 1
        sites[event["identity"]] = sites.get(event["identity"], 0) + 1
        if kind not in first_by_kind:
            first_by_kind[kind] = event
    for kind in sorted(by_kind):
        first = first_by_kind[kind]
        lines.append(
            f"  {kind:<20} {by_kind[kind]:>8}   first at cycle {first['cycle']} "
            f"({first['identity']})"
        )

    hot = sorted(sites.items(), key=lambda item: (-item[1], item[0]))[:top]
    if hot:
        lines.append(f"top sites : " + ", ".join(f"{name} x{count}" for name, count in hot))

    if trace.summary is not None:
        stats = trace.summary.get("stats", {})
        metrics = trace.summary.get("metrics", {})
        counters = metrics.get("counters", {})
        ops_total = (
            stats.get("int_ops_approx", 0)
            + stats.get("int_ops_precise", 0)
            + stats.get("fp_ops_approx", 0)
            + stats.get("fp_ops_precise", 0)
        )
        lines.append(f"ops       : {ops_total} total, {stats.get('ticks', 0)} cycles")
        rates = _faults_per_kiloop(counters, ops_total)
        if rates:
            lines.append(
                "faults/kop: "
                + ", ".join(f"{kind} {rate:.3f}" for kind, rate in sorted(rates.items()))
            )
        histograms = metrics.get("histograms", {})
        for name in sorted(histograms):
            if not name.startswith("bitflip.position."):
                continue
            buckets = histograms[name]
            total = sum(buckets.values())
            worst = sorted(buckets.items(), key=lambda item: (-item[1], int(item[0])))[:top]
            lines.append(
                f"  {name}: {total} flips, top bits "
                + ", ".join(f"{bit} x{count}" for bit, count in worst)
            )
        if counters.get("runtime.endorse"):
            lines.append(f"endorse   : {counters['runtime.endorse']} dynamic hits")
    return "\n".join(lines)
