"""Memory-system substrate: cache-line layout and storage accounting."""

from repro.memory.accounting import AllocationRecord, StorageAccountant
from repro.memory.cacheline import CACHE_LINE_BYTES, CacheLine, LineMap
from repro.memory.layout import (
    ARRAY_HEADER_BYTES,
    VTABLE_POINTER_BYTES,
    FieldSpec,
    field_sizes,
    layout_array,
    layout_object,
)

__all__ = [
    "CACHE_LINE_BYTES",
    "CacheLine",
    "LineMap",
    "FieldSpec",
    "field_sizes",
    "layout_object",
    "layout_array",
    "VTABLE_POINTER_BYTES",
    "ARRAY_HEADER_BYTES",
    "StorageAccountant",
    "AllocationRecord",
]
