"""Storage accounting in byte-ticks (paper: byte-seconds, Figure 3).

Figure 3 reports, per benchmark, the fraction of DRAM and SRAM
byte-seconds spent on approximate data.  We account deterministically:

* **DRAM** (heap: arrays, object fields) — each allocation registers its
  approximate/precise byte split (from the cache-line layout) and its
  birth tick; on free (or end of run) its byte-ticks are
  ``bytes × lifetime``.
* **SRAM** (stack/registers) — residency is brief and access-driven, so
  we charge one tick of residency per byte accessed (a byte-access
  proxy; DESIGN.md substitution 5).  The *fraction approximate*, which
  is what the figure reports, is preserved.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

__all__ = ["AllocationRecord", "StorageAccountant"]


@dataclasses.dataclass
class AllocationRecord:
    """One live heap allocation being tracked."""

    container_id: int
    approx_bytes: int
    precise_bytes: int
    birth_tick: int
    label: str = ""


class StorageAccountant:
    """Accumulates approximate/precise byte-ticks for DRAM and SRAM."""

    def __init__(self) -> None:
        self._live: Dict[int, AllocationRecord] = {}
        self.dram_approx_byte_ticks = 0
        self.dram_precise_byte_ticks = 0
        self.sram_approx_byte_ticks = 0
        self.sram_precise_byte_ticks = 0
        self.allocations = 0
        self.frees = 0

    # ------------------------------------------------------------------
    # DRAM (heap allocations)
    # ------------------------------------------------------------------
    def allocate(
        self,
        container_id: int,
        approx_bytes: int,
        precise_bytes: int,
        now_tick: int,
        label: str = "",
    ) -> None:
        """Register a heap allocation (array or approximable object)."""
        if container_id in self._live:
            # Re-registering the same container (e.g. repeated wrapping)
            # keeps the original birth tick — the storage was live.
            return
        self._live[container_id] = AllocationRecord(
            container_id, max(0, approx_bytes), max(0, precise_bytes), now_tick, label
        )
        self.allocations += 1

    def free(self, container_id: int, now_tick: int) -> Optional[AllocationRecord]:
        """Close out one allocation, charging its lifetime byte-ticks.

        Returns the closed record (its byte splits and birth tick let
        callers — the tracer's ``energy.free`` events — report what was
        just charged), or ``None`` if the container was not live.
        """
        record = self._live.pop(container_id, None)
        if record is None:
            return None
        lifetime = max(1, now_tick - record.birth_tick)
        self.dram_approx_byte_ticks += record.approx_bytes * lifetime
        self.dram_precise_byte_ticks += record.precise_bytes * lifetime
        self.frees += 1
        return record

    def close_all(self, now_tick: int) -> None:
        """End of run: charge every still-live allocation."""
        for container_id in list(self._live):
            self.free(container_id, now_tick)

    @property
    def live_count(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    # SRAM (access-driven residency)
    # ------------------------------------------------------------------
    def touch_sram(self, byte_count: int, approximate: bool) -> None:
        if approximate:
            self.sram_approx_byte_ticks += byte_count
        else:
            self.sram_precise_byte_ticks += byte_count

    # ------------------------------------------------------------------
    # Fractions for Figure 3
    # ------------------------------------------------------------------
    @staticmethod
    def _fraction(approx: int, precise: int) -> float:
        total = approx + precise
        if total == 0:
            return 0.0
        return approx / total

    @property
    def dram_approx_fraction(self) -> float:
        return self._fraction(self.dram_approx_byte_ticks, self.dram_precise_byte_ticks)

    @property
    def sram_approx_fraction(self) -> float:
        return self._fraction(self.sram_approx_byte_ticks, self.sram_precise_byte_ticks)
