"""Cache-line model (paper Section 4.1).

The architecture supports approximation at cache-line granularity: a
per-line bit (kept precise; <0.2% overhead at 64-byte lines) tells the
cache controller whether to lower the line's supply voltage and the
DRAM refresh rate for its row.  Software must therefore segregate
approximate and precise data into different lines; a line containing
*any* precise field must be precise, and approximate data placed there
saves no memory energy.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

__all__ = ["CACHE_LINE_BYTES", "CacheLine", "LineMap"]

#: The paper's assumed line size.
CACHE_LINE_BYTES = 64


@dataclasses.dataclass
class CacheLine:
    """One line of an object's layout.

    ``approximate`` is the line's mode bit; ``slots`` records the
    (name, offset, size, wanted_approx) of the fields packed into it,
    where ``wanted_approx`` is the field's own qualifier.  A field whose
    ``wanted_approx`` is True but whose line is precise is *demoted*: it
    behaves precisely for storage purposes and saves no memory energy.
    """

    index: int
    approximate: bool
    slots: List[Tuple[str, int, int, bool]] = dataclasses.field(default_factory=list)
    capacity: int = CACHE_LINE_BYTES

    @property
    def used_bytes(self) -> int:
        if not self.slots:
            return 0
        _, offset, size, _ = self.slots[-1]
        return offset + size

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def fits(self, size: int) -> bool:
        return self.free_bytes >= size

    def add(self, name: str, size: int, wanted_approx: bool) -> int:
        """Append a field; returns its offset within the line."""
        offset = self.used_bytes
        if offset + size > self.capacity:
            raise ValueError(f"field {name!r} ({size}B) does not fit in line {self.index}")
        self.slots.append((name, offset, size, wanted_approx))
        return offset


class LineMap:
    """The per-line approximation bitmap for one object or array.

    Exposes which fields ended up in approximate storage — the quantity
    the byte-second accounting and Figure 3 need.
    """

    def __init__(self, lines: List[CacheLine]) -> None:
        self.lines = lines
        self._field_line = {}
        for line in lines:
            for name, _offset, _size, _wanted in line.slots:
                self._field_line[name] = line

    @property
    def total_bytes(self) -> int:
        return sum(line.capacity for line in self.lines)

    @property
    def approx_bytes(self) -> int:
        """Bytes of field data resident in approximate lines."""
        return sum(
            size
            for line in self.lines
            if line.approximate
            for _name, _offset, size, _wanted in line.slots
        )

    @property
    def precise_bytes(self) -> int:
        return sum(
            size
            for line in self.lines
            if not line.approximate
            for _name, _offset, size, _wanted in line.slots
        )

    @property
    def demoted_bytes(self) -> int:
        """Bytes of approximate-typed fields stuck in precise lines.

        These still benefit from approximate registers and operations
        (the paper notes this explicitly) but save no storage energy.
        """
        return sum(
            size
            for line in self.lines
            if not line.approximate
            for _name, _offset, size, wanted in line.slots
            if wanted
        )

    def field_is_approx_storage(self, name: str) -> bool:
        """Whether the named field landed in an approximate line."""
        line = self._field_line.get(name)
        return bool(line and line.approximate)

    def line_of(self, name: str) -> CacheLine:
        return self._field_line[name]
