"""Object and array layout into cache lines (paper Section 4.1).

The paper's scheme for objects mixing precise and approximate fields:

1. Lay out the precise portion (including the vtable pointer)
   contiguously; every line containing at least one precise field is
   marked precise.
2. Lay out approximate fields after the end of the precise data.  Those
   that land in the trailing precise line stay precise (demoted — no
   memory-energy saving; wasting the space would cost *more* energy).
   The remainder go into approximate lines.
3. Superclass fields may not be reordered in subclasses, so a subclass
   appends its own precise-then-approximate groups after the superclass
   layout, possibly wasting approximate-line space to put its precise
   fields in precise lines.

Arrays of approximate primitives: the first line (length + type header)
is precise; all remaining lines are approximate.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.memory.cacheline import CACHE_LINE_BYTES, CacheLine, LineMap

__all__ = [
    "FieldSpec",
    "VTABLE_POINTER_BYTES",
    "ARRAY_HEADER_BYTES",
    "layout_object",
    "layout_array",
    "field_sizes",
]

#: Size of the object header / vtable pointer, placed first and precise.
VTABLE_POINTER_BYTES = 8

#: Array header: length word + type info, always precise (Section 2.6).
ARRAY_HEADER_BYTES = 16

#: Field sizes in bytes by EnerPy kind (Java-like widths).
field_sizes = {"int": 4, "float": 4, "double": 8, "bool": 1, "ref": 8}


@dataclasses.dataclass(frozen=True)
class FieldSpec:
    """One declared field: name, kind (see :data:`field_sizes`), qualifier.

    ``approximate`` reflects the field's *adapted* qualifier for the
    instance being laid out — a ``@Context`` field is approximate in an
    approximate instance and precise in a precise one.
    """

    name: str
    kind: str
    approximate: bool

    @property
    def size(self) -> int:
        return field_sizes[self.kind]


def _append_group(
    lines: List[CacheLine],
    fields: Sequence[FieldSpec],
    approximate_line: bool,
    line_bytes: int,
) -> None:
    """Pack fields into lines of one mode, opening new lines as needed."""
    for field in fields:
        if lines and lines[-1].approximate == approximate_line and lines[-1].fits(field.size):
            lines[-1].add(field.name, field.size, field.approximate)
            continue
        line = CacheLine(index=len(lines), approximate=approximate_line, capacity=line_bytes)
        line.add(field.name, field.size, field.approximate)
        lines.append(line)


def layout_object(
    field_groups: Sequence[Sequence[FieldSpec]],
    include_header: bool = True,
    line_bytes: int = CACHE_LINE_BYTES,
) -> LineMap:
    """Lay out an object whose fields come in superclass-to-subclass groups.

    ``field_groups`` is one sequence of :class:`FieldSpec` per class in
    the inheritance chain, base class first; groups may not be reordered
    across each other (paper rule), but within each group precise fields
    are placed before approximate ones.
    """
    lines: List[CacheLine] = []
    if include_header:
        header = CacheLine(index=0, approximate=False, capacity=line_bytes)
        header.add("__vtable__", VTABLE_POINTER_BYTES, False)
        lines.append(header)

    for group in field_groups:
        precise_fields = [f for f in group if not f.approximate]
        approx_fields = [f for f in group if f.approximate]

        # Precise fields go into precise lines, filling the trailing
        # precise line first if one is open.
        _append_group(lines, precise_fields, False, line_bytes)

        # Approximate fields: first fill the free space of the trailing
        # precise line (they are demoted there), then open approximate
        # lines for the rest.
        remaining = list(approx_fields)
        if lines and not lines[-1].approximate:
            still_remaining = []
            for field in remaining:
                if lines[-1].fits(field.size):
                    lines[-1].add(field.name, field.size, field.approximate)
                else:
                    still_remaining.append(field)
            remaining = still_remaining
        _append_group(lines, remaining, True, line_bytes)

    return LineMap(lines)


def layout_array(
    length: int,
    element_kind: str,
    elements_approximate: bool,
    header_bytes: int = ARRAY_HEADER_BYTES,
    line_bytes: int = CACHE_LINE_BYTES,
) -> Tuple[LineMap, int, int]:
    """Lay out an array; returns (line map, approx bytes, precise bytes).

    The first line holds the precise header; if the elements are
    precise everything is precise.  If approximate, elements that share
    the header line are demoted; later lines are approximate.
    """
    element_size = field_sizes[element_kind]
    data_bytes = element_size * max(0, length)

    lines: List[CacheLine] = []
    header = CacheLine(index=0, approximate=False, capacity=line_bytes)
    header.add("__header__", header_bytes, False)
    lines.append(header)

    if data_bytes == 0:
        return LineMap(lines), 0, 0

    if not elements_approximate:
        remaining = data_bytes
        index = 0
        while remaining > 0:
            take = min(lines[-1].free_bytes, remaining)
            if take > 0:
                lines[-1].add(f"__data{index}__", take, False)
                remaining -= take
                index += 1
            if remaining > 0:
                lines.append(CacheLine(index=len(lines), approximate=False, capacity=line_bytes))
        return LineMap(lines), 0, data_bytes

    # Approximate elements: fill the header line first (demoted bytes),
    # then approximate lines.
    demoted = min(header.free_bytes, data_bytes)
    if demoted:
        header.add("__data0__", demoted, True)
    remaining = data_bytes - demoted
    index = 1
    while remaining > 0:
        line = CacheLine(index=len(lines), approximate=True, capacity=line_bytes)
        take = min(line_bytes, remaining)
        line.add(f"__data{index}__", take, True)
        lines.append(line)
        remaining -= take
        index += 1
    line_map = LineMap(lines)
    return line_map, line_map.approx_bytes, demoted
