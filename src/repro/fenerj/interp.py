"""Big-step operational semantics of FEnerJ (paper Section 3.2).

One evaluator implements all three semantics of the paper:

* the **precise** semantics — evaluate with no approximation policy;
* the **approximating** semantics — the paper's extra rule lets any
  expression of approximate type produce a different value of the same
  type; an :class:`ApproxPolicy` decides which (our fault models are
  instances of it);
* the **checked** semantics — every runtime value carries a precision
  tag, and any flow of an approximate-tagged value into precise state
  (a precise field slot, a condition, a precise parameter) raises
  :class:`~repro.errors.IsolationViolation`.  The paper proves
  well-typed programs never trip these checks; the non-interference
  tests exercise exactly that claim.

The heap maps addresses to objects carrying their *runtime* type (with
a concrete ``precise``/``approx`` qualifier); each field slot's
precision is the declared qualifier adapted through the instance
qualifier.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.qualifiers import APPROX, CONTEXT, PRECISE, Qualifier, adapt
from repro.errors import FEnerJRuntimeError, IsolationViolation
from repro.fenerj.syntax import (
    BinOp,
    Cast,
    Endorse,
    Expr,
    FieldRead,
    FieldWrite,
    FloatLit,
    If,
    IntLit,
    MethodCall,
    New,
    NullLit,
    Program,
    Seq,
    Var,
)
from repro.fenerj.typesys import ClassTable

__all__ = ["Value", "HeapObject", "Heap", "ApproxPolicy", "Interpreter", "run_program"]

DEFAULT_FUEL = 100_000


@dataclasses.dataclass(frozen=True)
class Value:
    """A runtime value with its precision tag.

    ``data`` is a Python int/float, an address (int) for references, or
    ``None`` for null.  ``approx`` is the checked-semantics tag; ``kind``
    is "int", "float", or "ref".
    """

    data: object
    kind: str
    approx: bool = False

    def as_bool(self) -> bool:
        return self.data != 0


NULL = Value(None, "ref", approx=False)


@dataclasses.dataclass
class HeapObject:
    class_name: str
    qualifier: Qualifier  # precise or approx (the instance precision)
    fields: Dict[str, Value]
    #: field name -> True if this slot's adapted precision is approx.
    slot_approx: Dict[str, bool]


class Heap:
    """Address-indexed object store."""

    def __init__(self) -> None:
        self._objects: Dict[int, HeapObject] = {}
        self._next = 1

    def allocate(self, obj: HeapObject) -> int:
        address = self._next
        self._next += 1
        self._objects[address] = obj
        return address

    def get(self, address: int) -> HeapObject:
        try:
            return self._objects[address]
        except KeyError:
            raise FEnerJRuntimeError(f"dangling address {address}") from None

    def objects(self) -> Dict[int, HeapObject]:
        return dict(self._objects)

    def precise_projection(self) -> Dict[int, Tuple[str, Qualifier, Dict[str, object]]]:
        """The heap restricted to precise slots — the ``~=`` of the paper.

        Two heaps are equal "disregarding approximate values" when their
        projections match: same objects, same types, same values in all
        precise slots.
        """
        projection = {}
        for address, obj in self._objects.items():
            precise_fields = {
                name: value.data
                for name, value in obj.fields.items()
                if not obj.slot_approx.get(name, False)
            }
            projection[address] = (obj.class_name, obj.qualifier, precise_fields)
        return projection


class ApproxPolicy:
    """Decides what approximate expressions actually produce.

    The default policy is the identity — approximate execution with no
    faults.  Subclasses override :meth:`perturb`; it receives the
    correct value and must return a value of the same kind.
    """

    def perturb(self, value: Value) -> Value:
        return value


class Interpreter:
    """Evaluates FEnerJ programs under the checked big-step semantics."""

    def __init__(
        self,
        program: Program,
        policy: Optional[ApproxPolicy] = None,
        check_isolation: bool = True,
        fuel: int = DEFAULT_FUEL,
    ) -> None:
        self.program = program
        self.table = ClassTable(program)
        self.policy = policy or ApproxPolicy()
        self.check_isolation = check_isolation
        self.fuel = fuel
        self.heap = Heap()

    # ------------------------------------------------------------------
    def run(self) -> Value:
        """Instantiate the main class and evaluate the main expression."""
        address = self._instantiate(self.program.main_qualifier, self.program.main_class)
        env = {"this": Value(address, "ref")}
        try:
            return self.eval(self.program.main_expr, env)
        except RecursionError:
            # Deep method recursion blows the Python stack before the
            # fuel counter; report it as the same out-of-fuel failure.
            raise FEnerJRuntimeError("out of fuel (diverging program?)") from None

    # ------------------------------------------------------------------
    def _instantiate(self, qualifier: Qualifier, class_name: str) -> int:
        fields: Dict[str, Value] = {}
        slot_approx: Dict[str, bool] = {}
        for decl in self.table.all_fields(class_name):
            adapted = adapt(qualifier, decl.type.qualifier)
            is_approx = adapted is APPROX
            slot_approx[decl.name] = is_approx
            if decl.type.is_primitive:
                zero = 0 if decl.type.base == "int" else 0.0
                fields[decl.name] = Value(zero, decl.type.base, approx=is_approx)
            else:
                fields[decl.name] = NULL
        obj = HeapObject(class_name, qualifier, fields, slot_approx)
        return self.heap.allocate(obj)

    def _receiver_qualifier(self, env: Dict[str, Value]) -> Qualifier:
        this = env.get("this")
        if this is None or this.data is None:
            return PRECISE
        return self.heap.get(this.data).qualifier

    # ------------------------------------------------------------------
    def eval(self, expr: Expr, env: Dict[str, Value]) -> Value:
        self.fuel -= 1
        if self.fuel <= 0:
            raise FEnerJRuntimeError("out of fuel (diverging program?)")

        if isinstance(expr, NullLit):
            return NULL
        if isinstance(expr, IntLit):
            return Value(expr.value, "int")
        if isinstance(expr, FloatLit):
            return Value(expr.value, "float")
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise FEnerJRuntimeError(f"unbound variable {expr.name}") from None
        if isinstance(expr, New):
            qualifier = expr.qualifier
            if qualifier is CONTEXT:
                qualifier = self._receiver_qualifier(env)
            address = self._instantiate(qualifier, expr.class_name)
            return Value(address, "ref")
        if isinstance(expr, FieldRead):
            receiver = self._eval_receiver(expr.receiver, env)
            obj = self.heap.get(receiver.data)
            try:
                return obj.fields[expr.field]
            except KeyError:
                raise FEnerJRuntimeError(
                    f"object of class {obj.class_name} has no field {expr.field}"
                ) from None
        if isinstance(expr, FieldWrite):
            receiver = self._eval_receiver(expr.receiver, env)
            obj = self.heap.get(receiver.data)
            if expr.field not in obj.fields:
                raise FEnerJRuntimeError(
                    f"object of class {obj.class_name} has no field {expr.field}"
                )
            value = self.eval(expr.value, env)
            slot_is_approx = obj.slot_approx.get(expr.field, False)
            if value.approx and not slot_is_approx:
                self._violation(
                    f"approximate value written to precise slot {expr.field}"
                )
            if slot_is_approx and value.kind != "ref":
                value = Value(value.data, value.kind, approx=True)
                value = self._perturb(value)
            obj.fields[expr.field] = value
            return value
        if isinstance(expr, MethodCall):
            return self._eval_call(expr, env)
        if isinstance(expr, Cast):
            value = self.eval(expr.expr, env)
            target_approx = expr.type.qualifier is APPROX
            if value.approx and not target_approx and expr.type.is_primitive:
                self._violation("approximate value cast to a precise type")
            if target_approx and expr.type.is_primitive and not value.approx:
                value = Value(value.data, value.kind, approx=True)
            return value
        if isinstance(expr, BinOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            return self._binop(expr.op, left, right)
        if isinstance(expr, If):
            cond = self.eval(expr.cond, env)
            if cond.approx:
                self._violation("approximate value used as a condition")
            branch = expr.then if cond.as_bool() else expr.orelse
            return self.eval(branch, env)
        if isinstance(expr, Seq):
            self.eval(expr.first, env)
            return self.eval(expr.second, env)
        if isinstance(expr, Endorse):
            value = self.eval(expr.expr, env)
            return Value(value.data, value.kind, approx=False)
        raise FEnerJRuntimeError(f"unknown expression {expr!r}")

    # ------------------------------------------------------------------
    def _eval_receiver(self, expr: Expr, env: Dict[str, Value]) -> Value:
        receiver = self.eval(expr, env)
        if receiver.data is None:
            raise FEnerJRuntimeError("null dereference")
        return receiver

    def _eval_call(self, expr: MethodCall, env: Dict[str, Value]) -> Value:
        receiver = self._eval_receiver(expr.receiver, env)
        obj = self.heap.get(receiver.data)
        decl = self.table.method_decl(obj.class_name, expr.method, obj.qualifier)
        if decl is None:
            raise FEnerJRuntimeError(
                f"class {obj.class_name} has no method {expr.method}"
            )
        if len(decl.params) != len(expr.args):
            raise FEnerJRuntimeError(f"arity mismatch calling {expr.method}")
        callee_env: Dict[str, Value] = {"this": receiver}
        for (ptype, pname), arg in zip(decl.params, expr.args):
            value = self.eval(arg, env)
            adapted = adapt(obj.qualifier, ptype.qualifier)
            if value.approx and adapted is PRECISE and ptype.is_primitive:
                self._violation(
                    f"approximate argument bound to precise parameter {pname}"
                )
            if adapted is APPROX and ptype.is_primitive and not value.approx:
                value = Value(value.data, value.kind, approx=True)
            callee_env[pname] = value
        return self.eval(decl.body, callee_env)

    def _binop(self, op: str, left: Value, right: Value) -> Value:
        if left.kind == "ref" or right.kind == "ref":
            raise FEnerJRuntimeError(f"operator {op} on references")
        approx = left.approx or right.approx
        a, b = left.data, right.data
        if op == "+":
            data = a + b
        elif op == "-":
            data = a - b
        elif op == "*":
            data = a * b
        elif op == "/":
            if b == 0:
                if approx:
                    data = 0 if isinstance(a, int) and isinstance(b, int) else float("nan")
                else:
                    raise FEnerJRuntimeError("division by zero")
            elif isinstance(a, int) and isinstance(b, int):
                data = a // b
            else:
                data = a / b
        elif op == "==":
            data = 1 if a == b else 0
        elif op == "!=":
            data = 1 if a != b else 0
        elif op == "<":
            data = 1 if a < b else 0
        elif op == "<=":
            data = 1 if a <= b else 0
        elif op == ">":
            data = 1 if a > b else 0
        elif op == ">=":
            data = 1 if a >= b else 0
        else:
            raise FEnerJRuntimeError(f"unknown operator {op}")
        kind = "float" if isinstance(data, float) else "int"
        if op in ("==", "!=", "<", "<=", ">", ">="):
            kind = "int"
        result = Value(data, kind, approx=approx)
        if approx:
            result = self._perturb(result)
        return result

    def _perturb(self, value: Value) -> Value:
        perturbed = self.policy.perturb(value)
        if perturbed.kind != value.kind:
            raise FEnerJRuntimeError(
                "approximation policy changed the kind of a value"
            )
        if not perturbed.approx:
            perturbed = Value(perturbed.data, perturbed.kind, approx=True)
        return perturbed

    def _violation(self, message: str) -> None:
        if self.check_isolation:
            raise IsolationViolation(message)


def run_program(
    program: Program,
    policy: Optional[ApproxPolicy] = None,
    check_isolation: bool = True,
    fuel: int = DEFAULT_FUEL,
) -> Tuple[Value, Heap]:
    """Evaluate a program; returns (result value, final heap)."""
    interpreter = Interpreter(program, policy, check_isolation, fuel)
    result = interpreter.run()
    return result, interpreter.heap
