"""Recursive-descent parser for FEnerJ's concrete syntax.

Grammar (see :mod:`repro.fenerj.syntax` for the abstract syntax)::

    program  := class* "main" [qual] Cid "{" expr "}"
    class    := "class" Cid "extends" Cid "{" member* "}"
    member   := type ident ";"                              (field)
              | type ident "(" params ")" qual "{" expr "}" (method)
    type     := [qual] ("int" | "float" | Cid)
    qual     := "precise" | "approx" | "top" | "context" | "lost"
    expr     := assign (";" assign)*                        (Seq)
    assign   := compare [":=" assign]      (target must be a field read)
    compare  := additive [("=="|"!="|"<"|"<="|">"|">=") additive]
    additive := term (("+"|"-") term)*
    term     := unary (("*"|"/") unary)*
    unary    := primary
    primary  := "null" | INT | FLOAT | "this" | ident
              | "new" [qual] Cid "(" ")"
              | "(" qual base ")" unary                     (cast)
              | "(" expr ")"
              | "if" "(" expr ")" "{" expr "}" "else" "{" expr "}"
              | "endorse" "(" expr ")"
              | primary "." ident ["(" args ")"]            (postfix)

An omitted qualifier defaults to ``precise``, as in EnerJ.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.qualifiers import PRECISE, Qualifier
from repro.errors import FEnerJSyntaxError
from repro.fenerj.lexer import Token, tokenize
from repro.fenerj.syntax import (
    BinOp,
    Cast,
    ClassDecl,
    Endorse,
    Expr,
    FieldDecl,
    FieldRead,
    FieldWrite,
    FloatLit,
    If,
    IntLit,
    MethodCall,
    MethodDecl,
    New,
    NullLit,
    Program,
    Seq,
    Type,
    Var,
)

__all__ = ["parse_program", "parse_expression"]

_QUALIFIER_WORDS = {"precise", "approx", "top", "context", "lost"}
_BASE_WORDS = {"int", "float"}
_COMPARE_OPS = ("==", "!=", "<=", ">=", "<", ">")


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, text: str) -> bool:
        return self._peek().text == text and self._peek().kind in ("kw", "punct")

    def _match(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if not self._match(text):
            raise FEnerJSyntaxError(
                f"expected {text!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "ident":
            raise FEnerJSyntaxError(
                f"expected identifier, found {token.text!r}", token.line, token.column
            )
        self._advance()
        return token.text

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _peek_is_qualifier(self) -> bool:
        return self._peek().kind == "kw" and self._peek().text in _QUALIFIER_WORDS

    def _parse_qualifier(self, default: Qualifier = PRECISE) -> Qualifier:
        if self._peek_is_qualifier():
            return Qualifier(self._advance().text)
        return default

    def _parse_type(self) -> Type:
        qualifier = self._parse_qualifier()
        token = self._peek()
        if token.kind == "kw" and token.text in _BASE_WORDS:
            self._advance()
            return Type(qualifier, token.text)
        if token.kind == "ident":
            self._advance()
            return Type(qualifier, token.text)
        raise FEnerJSyntaxError(
            f"expected a type, found {token.text!r}", token.line, token.column
        )

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        classes = []
        while self._check("class"):
            classes.append(self._parse_class())
        self._expect("main")
        main_qualifier = self._parse_qualifier()
        main_class = self._expect_ident()
        self._expect("{")
        main_expr = self._parse_expr()
        self._expect("}")
        token = self._peek()
        if token.kind != "eof":
            raise FEnerJSyntaxError(
                f"trailing input {token.text!r}", token.line, token.column
            )
        return Program(
            classes=tuple(classes),
            main_class=main_class,
            main_expr=main_expr,
            main_qualifier=main_qualifier,
        )

    def _parse_class(self) -> ClassDecl:
        self._expect("class")
        name = self._expect_ident()
        self._expect("extends")
        superclass = self._expect_ident()
        self._expect("{")
        fields = []
        methods = []
        while not self._check("}"):
            member_type = self._parse_type()
            member_name = self._expect_ident()
            if self._match(";"):
                fields.append(FieldDecl(member_type, member_name))
                continue
            self._expect("(")
            params = self._parse_params()
            self._expect(")")
            precision = self._parse_qualifier()
            self._expect("{")
            body = self._parse_expr()
            self._expect("}")
            methods.append(
                MethodDecl(member_type, member_name, tuple(params), precision, body)
            )
        self._expect("}")
        return ClassDecl(name, superclass, tuple(fields), tuple(methods))

    def _parse_params(self) -> List[Tuple[Type, str]]:
        params: List[Tuple[Type, str]] = []
        if self._check(")"):
            return params
        while True:
            ptype = self._parse_type()
            pname = self._expect_ident()
            params.append((ptype, pname))
            if not self._match(","):
                return params

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        # Sequencing is right-associative: ``a ; b ; c`` is
        # ``Seq(a, Seq(b, c))``.  The two nestings evaluate identically;
        # right nesting keeps the "statements then result" shape of
        # generated programs and makes print/parse a round trip.
        expr = self._parse_assign()
        if self._match(";"):
            return Seq(expr, self._parse_expr())
        return expr

    def _parse_assign(self) -> Expr:
        target = self._parse_compare()
        if self._check(":="):
            if not isinstance(target, FieldRead):
                token = self._peek()
                raise FEnerJSyntaxError(
                    "only field reads may be assigned", token.line, token.column
                )
            self._advance()
            value = self._parse_assign()
            return FieldWrite(target.receiver, target.field, value)
        return target

    def _parse_compare(self) -> Expr:
        left = self._parse_additive()
        for op in _COMPARE_OPS:
            if self._check(op):
                self._advance()
                right = self._parse_additive()
                return BinOp(op, left, right)
        return left

    def _parse_additive(self) -> Expr:
        expr = self._parse_term()
        while self._check("+") or self._check("-"):
            op = self._advance().text
            expr = BinOp(op, expr, self._parse_term())
        return expr

    def _parse_term(self) -> Expr:
        expr = self._parse_unary()
        while self._check("*") or self._check("/"):
            op = self._advance().text
            expr = BinOp(op, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> Expr:
        if self._check("-"):
            self._advance()
            operand = self._parse_unary()
            # Fold negation of literals into negative literals; other
            # operands desugar to 0 - e (the AST has no unary node).
            if isinstance(operand, IntLit):
                return IntLit(-operand.value)
            if isinstance(operand, FloatLit):
                return FloatLit(-operand.value)
            return BinOp("-", IntLit(0), operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._match("."):
            member = self._expect_ident()
            if self._match("("):
                args = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_assign())
                        if not self._match(","):
                            break
                self._expect(")")
                expr = MethodCall(expr, member, tuple(args))
            else:
                expr = FieldRead(expr, member)
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()

        if self._match("null"):
            return NullLit()
        if self._match("this"):
            return Var("this")
        if token.kind == "int":
            self._advance()
            return IntLit(int(token.text))
        if token.kind == "float":
            self._advance()
            return FloatLit(float(token.text))
        if self._match("new"):
            qualifier = self._parse_qualifier()
            name = self._expect_ident()
            self._expect("(")
            self._expect(")")
            return New(qualifier, name)
        if self._match("if"):
            self._expect("(")
            cond = self._parse_expr()
            self._expect(")")
            self._expect("{")
            then = self._parse_expr()
            self._expect("}")
            self._expect("else")
            self._expect("{")
            orelse = self._parse_expr()
            self._expect("}")
            return If(cond, then, orelse)
        if self._match("endorse"):
            self._expect("(")
            inner = self._parse_expr()
            self._expect(")")
            return Endorse(inner)
        if self._match("("):
            if self._peek_is_qualifier():
                cast_type = self._parse_type()
                self._expect(")")
                return Cast(cast_type, self._parse_unary())
            inner = self._parse_expr()
            self._expect(")")
            return inner
        if token.kind == "ident":
            self._advance()
            return Var(token.text)

        raise FEnerJSyntaxError(
            f"unexpected token {token.text!r}", token.line, token.column
        )


def parse_program(source: str) -> Program:
    """Parse a complete FEnerJ program."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single FEnerJ expression (for tests and the REPL)."""
    parser = _Parser(tokenize(source))
    expr = parser._parse_expr()
    token = parser._peek()
    if token.kind != "eof":
        raise FEnerJSyntaxError(f"trailing input {token.text!r}", token.line, token.column)
    return expr
