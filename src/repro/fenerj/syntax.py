"""Abstract syntax of FEnerJ (paper Figure 1).

::

    Prg ::= Cls*, C, e
    Cls ::= class Cid extends C { fd* md* }
    fd  ::= T f ;
    md  ::= T m(T pid*) q { e }
    T   ::= q C | q P        P ::= int | float
    q   ::= precise | approx | top | context | lost
    e   ::= null | L | x | new q C() | e.f | e0.f := e1
          | e0.m(e*) | (q C) e | e0 (+) e1 | if(e0) {e1} else {e2}

Extensions beyond the paper's figure, kept minimal and explicit:

* ``e0 ; e1`` — sequencing (evaluate and discard ``e0``), standard in
  Featherweight-Java-style formalisations with state;
* ``endorse(e)`` — present in the *surface* language but omitted from
  FEnerJ; the type checker rejects it unless explicitly enabled, which
  is exactly how we run the negative control of the non-interference
  experiments.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple, Union

from repro.core.qualifiers import Qualifier

__all__ = [
    "Type",
    "ClassType",
    "PrimType",
    "FieldDecl",
    "MethodDecl",
    "ClassDecl",
    "Program",
    "Expr",
    "NullLit",
    "IntLit",
    "FloatLit",
    "Var",
    "New",
    "FieldRead",
    "FieldWrite",
    "MethodCall",
    "Cast",
    "BinOp",
    "If",
    "Seq",
    "Endorse",
    "OBJECT",
]

OBJECT = "Object"

PRIMITIVES = ("int", "float")


@dataclasses.dataclass(frozen=True)
class Type:
    """A qualified type: qualifier plus class name or primitive name."""

    qualifier: Qualifier
    base: str

    @property
    def is_primitive(self) -> bool:
        return self.base in PRIMITIVES

    @property
    def is_reference(self) -> bool:
        return not self.is_primitive

    def with_qualifier(self, qualifier: Qualifier) -> "Type":
        return Type(qualifier, self.base)

    def __str__(self) -> str:
        return f"{self.qualifier} {self.base}"


def ClassType(qualifier: Qualifier, name: str) -> Type:
    return Type(qualifier, name)


def PrimType(qualifier: Qualifier, name: str) -> Type:
    if name not in PRIMITIVES:
        raise ValueError(f"unknown primitive {name!r}")
    return Type(qualifier, name)


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FieldDecl:
    type: Type
    name: str


@dataclasses.dataclass(frozen=True)
class MethodDecl:
    """``T m(T pid) q { e }`` — ``precision`` is the receiver qualifier
    this implementation serves (the overloading of Section 2.5.2)."""

    return_type: Type
    name: str
    params: Tuple[Tuple[Type, str], ...]
    precision: Qualifier
    body: "Expr"


@dataclasses.dataclass(frozen=True)
class ClassDecl:
    name: str
    superclass: str
    fields: Tuple[FieldDecl, ...]
    methods: Tuple[MethodDecl, ...]


@dataclasses.dataclass(frozen=True)
class Program:
    """Classes, the main class, and the main expression.

    Execution instantiates the main class (as a *precise* instance,
    unless ``main_qualifier`` says otherwise) binding ``this``, then
    evaluates the main expression.
    """

    classes: Tuple[ClassDecl, ...]
    main_class: str
    main_expr: "Expr"
    main_qualifier: Qualifier = None  # set in __post_init__

    def __post_init__(self):
        if self.main_qualifier is None:
            from repro.core.qualifiers import PRECISE

            object.__setattr__(self, "main_qualifier", PRECISE)

    def class_decl(self, name: str) -> Optional[ClassDecl]:
        for decl in self.classes:
            if decl.name == name:
                return decl
        return None


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for FEnerJ expressions."""

    __slots__ = ()


@dataclasses.dataclass(frozen=True)
class NullLit(Expr):
    pass


@dataclasses.dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclasses.dataclass(frozen=True)
class FloatLit(Expr):
    value: float


@dataclasses.dataclass(frozen=True)
class Var(Expr):
    name: str  # parameter identifier or "this"


@dataclasses.dataclass(frozen=True)
class New(Expr):
    qualifier: Qualifier
    class_name: str


@dataclasses.dataclass(frozen=True)
class FieldRead(Expr):
    receiver: Expr
    field: str


@dataclasses.dataclass(frozen=True)
class FieldWrite(Expr):
    receiver: Expr
    field: str
    value: Expr


@dataclasses.dataclass(frozen=True)
class MethodCall(Expr):
    receiver: Expr
    method: str
    args: Tuple[Expr, ...]


@dataclasses.dataclass(frozen=True)
class Cast(Expr):
    type: Type
    expr: Expr


@dataclasses.dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * / == != < <= > >=
    left: Expr
    right: Expr


@dataclasses.dataclass(frozen=True)
class If(Expr):
    cond: Expr
    then: Expr
    orelse: Expr


@dataclasses.dataclass(frozen=True)
class Seq(Expr):
    first: Expr
    second: Expr


@dataclasses.dataclass(frozen=True)
class Endorse(Expr):
    """Surface-language endorsement; rejected by the FEnerJ checker
    unless explicitly enabled (the non-interference negative control)."""

    expr: Expr
