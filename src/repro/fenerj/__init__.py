"""FEnerJ: the paper's formal core language (Section 3), implemented.

Lexer, parser, type system (with the ``lost`` qualifier and context
adaptation), big-step interpreter with the approximating rule, checked
semantics, and non-interference testing machinery.
"""

from repro.fenerj.interp import (
    ApproxPolicy,
    Heap,
    HeapObject,
    Interpreter,
    Value,
    run_program,
)
from repro.fenerj.noninterference import (
    IdentityPolicy,
    NIResult,
    OffsetPolicy,
    RandomPerturbPolicy,
    check_noninterference,
    random_program,
)
from repro.fenerj.parser import parse_expression, parse_program
from repro.fenerj.printer import print_expression, print_program
from repro.fenerj.syntax import Program, Type
from repro.fenerj.typesys import ClassTable, TypeChecker, is_subtype

__all__ = [
    "parse_program",
    "parse_expression",
    "print_program",
    "print_expression",
    "Program",
    "Type",
    "TypeChecker",
    "ClassTable",
    "is_subtype",
    "Interpreter",
    "run_program",
    "Value",
    "Heap",
    "HeapObject",
    "ApproxPolicy",
    "IdentityPolicy",
    "RandomPerturbPolicy",
    "OffsetPolicy",
    "check_noninterference",
    "random_program",
    "NIResult",
]
