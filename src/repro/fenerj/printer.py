"""Pretty-printer for FEnerJ programs (the inverse of the parser).

Produces concrete syntax that re-parses to an equal AST — the
round-trip property is part of the test suite, which makes the
printer/parser pair a reliable interchange format for generated
programs (the non-interference harness logs failing programs in
re-runnable form).
"""

from __future__ import annotations

from typing import List

from repro.core.qualifiers import PRECISE, Qualifier
from repro.errors import FEnerJError
from repro.fenerj.syntax import (
    BinOp,
    Cast,
    ClassDecl,
    Endorse,
    Expr,
    FieldDecl,
    FieldRead,
    FieldWrite,
    FloatLit,
    If,
    IntLit,
    MethodCall,
    MethodDecl,
    New,
    NullLit,
    Program,
    Seq,
    Type,
    Var,
)

__all__ = ["print_program", "print_expression", "print_type"]

#: Binding strengths, loosest first; used to parenthesise minimally.
_LEVEL_SEQ = 0
_LEVEL_ASSIGN = 1
_LEVEL_COMPARE = 2
_LEVEL_ADD = 3
_LEVEL_MUL = 4
_LEVEL_UNARY = 5
_LEVEL_POSTFIX = 6

_BINOP_LEVEL = {
    "==": _LEVEL_COMPARE,
    "!=": _LEVEL_COMPARE,
    "<": _LEVEL_COMPARE,
    "<=": _LEVEL_COMPARE,
    ">": _LEVEL_COMPARE,
    ">=": _LEVEL_COMPARE,
    "+": _LEVEL_ADD,
    "-": _LEVEL_ADD,
    "*": _LEVEL_MUL,
    "/": _LEVEL_MUL,
}


def print_type(t: Type) -> str:
    """``precise`` is the default and is printed explicitly anyway for
    field/parameter declarations — round-tripping is exact either way;
    we keep it explicit for readability of generated programs."""
    return f"{t.qualifier.value} {t.base}"


def _wrap(text: str, inner_level: int, outer_level: int) -> str:
    if inner_level < outer_level:
        return f"({text})"
    return text


def print_expression(expr: Expr, level: int = _LEVEL_SEQ) -> str:
    if isinstance(expr, NullLit):
        return "null"
    if isinstance(expr, IntLit):
        text = str(expr.value)
        if expr.value < 0:
            return _wrap(text, _LEVEL_UNARY, level)
        return text
    if isinstance(expr, FloatLit):
        text = repr(expr.value)
        if "." not in text and "e" not in text and "inf" not in text and "nan" not in text:
            text += ".0"
        if expr.value < 0:
            return _wrap(text, _LEVEL_UNARY, level)
        return text
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, New):
        qual = "" if expr.qualifier is PRECISE else f"{expr.qualifier.value} "
        return f"new {qual}{expr.class_name}()"
    if isinstance(expr, FieldRead):
        receiver = print_expression(expr.receiver, _LEVEL_POSTFIX)
        return f"{receiver}.{expr.field}"
    if isinstance(expr, FieldWrite):
        receiver = print_expression(expr.receiver, _LEVEL_POSTFIX)
        value = print_expression(expr.value, _LEVEL_ASSIGN)
        return _wrap(f"{receiver}.{expr.field} := {value}", _LEVEL_ASSIGN, level)
    if isinstance(expr, MethodCall):
        receiver = print_expression(expr.receiver, _LEVEL_POSTFIX)
        args = ", ".join(print_expression(a, _LEVEL_ASSIGN) for a in expr.args)
        return f"{receiver}.{expr.method}({args})"
    if isinstance(expr, Cast):
        inner = print_expression(expr.expr, _LEVEL_UNARY)
        return _wrap(f"({print_type(expr.type)}) {inner}", _LEVEL_UNARY, level)
    if isinstance(expr, BinOp):
        my_level = _BINOP_LEVEL[expr.op]
        left = print_expression(expr.left, my_level)
        # Operators are left-associative: the right child needs one more
        # binding level to round-trip (a - (b - c)) correctly.
        right = print_expression(expr.right, my_level + 1)
        return _wrap(f"{left} {expr.op} {right}", my_level, level)
    if isinstance(expr, If):
        cond = print_expression(expr.cond, _LEVEL_SEQ)
        then = print_expression(expr.then, _LEVEL_SEQ)
        orelse = print_expression(expr.orelse, _LEVEL_SEQ)
        return f"if ({cond}) {{ {then} }} else {{ {orelse} }}"
    if isinstance(expr, Seq):
        first = print_expression(expr.first, _LEVEL_ASSIGN)
        second = print_expression(expr.second, _LEVEL_SEQ)
        return _wrap(f"{first} ; {second}", _LEVEL_SEQ, level)
    if isinstance(expr, Endorse):
        return f"endorse({print_expression(expr.expr, _LEVEL_SEQ)})"
    raise FEnerJError(f"cannot print expression {expr!r}")


def _print_field(field: FieldDecl) -> str:
    return f"  {print_type(field.type)} {field.name};"


def _print_method(method: MethodDecl) -> str:
    params = ", ".join(f"{print_type(t)} {n}" for t, n in method.params)
    body = print_expression(method.body, _LEVEL_SEQ)
    return (
        f"  {print_type(method.return_type)} {method.name}({params}) "
        f"{method.precision.value} {{ {body} }}"
    )


def _print_class(decl: ClassDecl) -> str:
    lines: List[str] = [f"class {decl.name} extends {decl.superclass} {{"]
    lines.extend(_print_field(field) for field in decl.fields)
    lines.extend(_print_method(method) for method in decl.methods)
    lines.append("}")
    return "\n".join(lines)


def print_program(program: Program) -> str:
    """Concrete syntax for a whole program (re-parseable)."""
    parts = [_print_class(decl) for decl in program.classes]
    qual = "" if program.main_qualifier is PRECISE else f"{program.main_qualifier.value} "
    body = print_expression(program.main_expr, _LEVEL_SEQ)
    parts.append(f"main {qual}{program.main_class} {{ {body} }}")
    return "\n".join(parts) + "\n"
