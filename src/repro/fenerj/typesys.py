"""Static semantics of FEnerJ (paper Section 3.1).

Implements well-formedness, subtyping, the ``FType``/``MSig`` lookup
functions with context adaptation, and the expression type rules.  The
judgments follow the paper:

* field read — ``sG |- e0 : q C``, ``FType(q C, f) = T`` gives
  ``sG |- e0.f : T`` (reading at ``lost`` precision is allowed);
* field write — additionally requires ``lost`` not to occur in the
  adapted field type, and the value to be a subtype of it;
* conditional — the condition must be a **precise** primitive, and the
  branches must share a type;
* method call — parameters/return adapt through the receiver
  qualifier; the method *precision* qualifier selects the overload for
  the receiver's precision (Section 2.5.2).

``endorse`` is not part of FEnerJ; :class:`TypeChecker` rejects it
unless constructed with ``allow_endorse=True`` (the negative control in
the non-interference experiments).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.qualifiers import (
    APPROX,
    CONTEXT,
    LOST,
    PRECISE,
    TOP,
    Qualifier,
    adapt,
    is_subqualifier,
    qualifier_lub,
)
from repro.errors import FEnerJTypeError
from repro.fenerj.syntax import (
    OBJECT,
    BinOp,
    Cast,
    ClassDecl,
    Endorse,
    Expr,
    FieldDecl,
    FieldRead,
    FieldWrite,
    FloatLit,
    If,
    IntLit,
    MethodCall,
    MethodDecl,
    New,
    NullLit,
    Program,
    Seq,
    Type,
    Var,
)

__all__ = ["ClassTable", "TypeChecker", "is_subtype", "type_wf"]

_NULL = Type(PRECISE, "$null")
_COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")


# ----------------------------------------------------------------------
# Class table
# ----------------------------------------------------------------------
class ClassTable:
    """Declarations indexed by name, with inheritance-aware lookups."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.by_name: Dict[str, ClassDecl] = {}
        for decl in program.classes:
            if decl.name in self.by_name or decl.name == OBJECT:
                raise FEnerJTypeError(f"duplicate class {decl.name}")
            self.by_name[decl.name] = decl
        self._check_hierarchy()

    def _check_hierarchy(self) -> None:
        for decl in self.by_name.values():
            seen = {decl.name}
            current = decl.superclass
            while current != OBJECT:
                if current in seen:
                    raise FEnerJTypeError(f"inheritance cycle at {current}")
                if current not in self.by_name:
                    raise FEnerJTypeError(
                        f"class {decl.name} extends unknown class {current}"
                    )
                seen.add(current)
                current = self.by_name[current].superclass

    def exists(self, name: str) -> bool:
        return name == OBJECT or name in self.by_name

    def is_subclass(self, sub: str, sup: str) -> bool:
        if sup == OBJECT:
            return True
        current = sub
        while current != OBJECT:
            if current == sup:
                return True
            decl = self.by_name.get(current)
            if decl is None:
                return False
            current = decl.superclass
        return False

    def _chain(self, name: str) -> List[ClassDecl]:
        chain = []
        current = name
        while current != OBJECT:
            decl = self.by_name.get(current)
            if decl is None:
                break
            chain.append(decl)
            current = decl.superclass
        return chain

    def all_fields(self, name: str) -> List[FieldDecl]:
        """Fields from the root of the hierarchy down (superclass first)."""
        fields: List[FieldDecl] = []
        for decl in reversed(self._chain(name)):
            fields.extend(decl.fields)
        return fields

    def field_decl(self, class_name: str, field: str) -> Optional[FieldDecl]:
        for decl in self._chain(class_name):
            for fd in decl.fields:
                if fd.name == field:
                    return fd
        return None

    # ------------------------------------------------------------------
    # FType and MSig (paper Section 3.1)
    # ------------------------------------------------------------------
    def ftype(self, receiver: Type, field: str) -> Optional[Type]:
        """``FType(q C, f)``: the declared type adapted through ``q``."""
        decl = self.field_decl(receiver.base, field)
        if decl is None:
            return None
        return _adapt_type(receiver.qualifier, decl.type)

    def method_decl(self, class_name: str, method: str, receiver_qual: Qualifier) -> Optional[MethodDecl]:
        """Select the overload for the receiver precision.

        An ``approx`` receiver prefers the ``approx``-precision variant
        and falls back to the ``context`` (serves-both) variant; any
        other receiver prefers ``precise`` then ``context``.  This
        realises the method-precision overloading of Section 2.5.2.
        """
        if receiver_qual is APPROX:
            preference = (APPROX, CONTEXT, PRECISE)
        elif receiver_qual is PRECISE:
            preference = (PRECISE, CONTEXT)
        else:
            preference = (CONTEXT, PRECISE)
        for decl in self._chain(class_name):
            candidates = [md for md in decl.methods if md.name == method]
            for wanted in preference:
                for md in candidates:
                    if md.precision is wanted:
                        return md
            if candidates:
                return candidates[0]
        return None

    def msig(
        self, receiver: Type, method: str
    ) -> Optional[Tuple[List[Type], Type, MethodDecl]]:
        """``MSig``: parameter and return types adapted through the receiver."""
        decl = self.method_decl(receiver.base, method, receiver.qualifier)
        if decl is None:
            return None
        params = [_adapt_type(receiver.qualifier, ptype) for ptype, _ in decl.params]
        returns = _adapt_type(receiver.qualifier, decl.return_type)
        return params, returns, decl


def _adapt_type(receiver: Qualifier, declared: Type) -> Type:
    return declared.with_qualifier(adapt(receiver, declared.qualifier))


# ----------------------------------------------------------------------
# Subtyping
# ----------------------------------------------------------------------
def is_subtype(table: Optional[ClassTable], sub: Type, sup: Type) -> bool:
    """``sub <: sup`` per the paper: qualifier ordering plus subclassing,
    with the extra primitive axiom ``precise P <: approx P``."""
    if sub.base == "$null":
        return sup.is_reference or sup.base == "$null"
    if sub.is_primitive and sup.is_primitive:
        if sub.base != sup.base:
            return False
        if is_subqualifier(sub.qualifier, sup.qualifier):
            return True
        if sub.qualifier is PRECISE and sup.qualifier in (APPROX, CONTEXT):
            return True
        return sub.qualifier is CONTEXT and sup.qualifier is APPROX
    if sub.is_reference and sup.is_reference:
        if not is_subqualifier(sub.qualifier, sup.qualifier):
            return False
        if table is None:
            return sub.base == sup.base or sup.base == OBJECT
        return table.is_subclass(sub.base, sup.base)
    return False


def type_lub(table: ClassTable, a: Type, b: Type) -> Optional[Type]:
    if is_subtype(table, a, b):
        return b
    if is_subtype(table, b, a):
        return a
    if a.base == b.base:
        return Type(qualifier_lub(a.qualifier, b.qualifier), a.base)
    if a.is_reference and b.is_reference:
        return Type(qualifier_lub(a.qualifier, b.qualifier), OBJECT)
    return None


def type_wf(table: ClassTable, t: Type, in_class: bool) -> None:
    """Well-formedness: known base; ``context`` only inside classes."""
    if t.is_reference and not table.exists(t.base):
        raise FEnerJTypeError(f"unknown class {t.base} in type {t}")
    if t.qualifier is CONTEXT and not in_class:
        raise FEnerJTypeError("context qualifier outside a class body")
    if t.qualifier is LOST:
        raise FEnerJTypeError("lost may not be written in a program")


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------
class TypeChecker:
    """Checks a whole program; exposes expression typing for tests."""

    def __init__(self, program: Program, allow_endorse: bool = False) -> None:
        self.program = program
        self.table = ClassTable(program)
        self.allow_endorse = allow_endorse

    # ------------------------------------------------------------------
    def check_program(self) -> Type:
        """Check every class and the main expression; returns its type."""
        for decl in self.table.by_name.values():
            self._check_class(decl)
        if not self.table.exists(self.program.main_class) or self.program.main_class == OBJECT:
            raise FEnerJTypeError(f"unknown main class {self.program.main_class}")
        if self.program.main_qualifier not in (PRECISE, APPROX):
            raise FEnerJTypeError("the main instance must be precise or approx")
        env = {"this": Type(self.program.main_qualifier, self.program.main_class)}
        return self.check_expr(self.program.main_expr, env)

    def _check_class(self, decl: ClassDecl) -> None:
        seen_fields = set()
        for field in self.table.all_fields(decl.name):
            type_wf(self.table, field.type, in_class=True)
        for field in decl.fields:
            if field.name in seen_fields:
                raise FEnerJTypeError(f"duplicate field {decl.name}.{field.name}")
            seen_fields.add(field.name)
            inherited = self.table.field_decl(decl.superclass, field.name)
            if inherited is not None:
                raise FEnerJTypeError(
                    f"field {decl.name}.{field.name} shadows a superclass field"
                )
        seen_methods = set()
        for method in decl.methods:
            key = (method.name, method.precision)
            if key in seen_methods:
                raise FEnerJTypeError(
                    f"duplicate method {decl.name}.{method.name} at precision "
                    f"{method.precision}"
                )
            seen_methods.add(key)
            self._check_method(decl, method)

    def _check_method(self, decl: ClassDecl, method: MethodDecl) -> None:
        type_wf(self.table, method.return_type, in_class=True)
        if method.precision not in (PRECISE, APPROX, CONTEXT):
            raise FEnerJTypeError(
                f"method precision must be precise/approx/context, got "
                f"{method.precision}"
            )
        env: Dict[str, Type] = {"this": Type(method.precision, decl.name)}
        for ptype, pname in method.params:
            type_wf(self.table, ptype, in_class=True)
            if pname in env:
                raise FEnerJTypeError(f"duplicate parameter {pname}")
            env[pname] = ptype
        body_type = self.check_expr(method.body, env)
        if not is_subtype(self.table, body_type, method.return_type):
            raise FEnerJTypeError(
                f"{decl.name}.{method.name}: body has type {body_type}, "
                f"declared {method.return_type}"
            )
        # Override compatibility: same signature at the same precision
        # in superclasses must match exactly (FJ-style).
        parent = self.table.method_decl(decl.superclass, method.name, method.precision)
        if parent is not None and parent.precision is method.precision:
            if len(parent.params) != len(method.params):
                raise FEnerJTypeError(
                    f"{decl.name}.{method.name} overrides with different arity"
                )
            for (ptype, _), (qtype, _) in zip(parent.params, method.params):
                if ptype != qtype:
                    raise FEnerJTypeError(
                        f"{decl.name}.{method.name} overrides with different "
                        f"parameter types"
                    )
            if parent.return_type != method.return_type:
                raise FEnerJTypeError(
                    f"{decl.name}.{method.name} overrides with different "
                    f"return type"
                )

    # ------------------------------------------------------------------
    # Expression typing
    # ------------------------------------------------------------------
    def check_expr(self, expr: Expr, env: Dict[str, Type]) -> Type:
        if isinstance(expr, NullLit):
            return _NULL
        if isinstance(expr, IntLit):
            return Type(PRECISE, "int")
        if isinstance(expr, FloatLit):
            return Type(PRECISE, "float")
        if isinstance(expr, Var):
            if expr.name not in env:
                raise FEnerJTypeError(f"unbound variable {expr.name}")
            return env[expr.name]
        if isinstance(expr, New):
            if expr.qualifier not in (PRECISE, APPROX, CONTEXT):
                raise FEnerJTypeError(
                    f"cannot instantiate at qualifier {expr.qualifier}"
                )
            if not self.table.exists(expr.class_name) or expr.class_name == OBJECT:
                raise FEnerJTypeError(f"unknown class {expr.class_name}")
            if expr.qualifier is CONTEXT and "this" not in env:
                raise FEnerJTypeError("context instantiation outside a class")
            return Type(expr.qualifier, expr.class_name)
        if isinstance(expr, FieldRead):
            receiver = self.check_expr(expr.receiver, env)
            if not receiver.is_reference or receiver.base == "$null":
                raise FEnerJTypeError(f"field read on non-object type {receiver}")
            ftype = self.table.ftype(receiver, expr.field)
            if ftype is None:
                raise FEnerJTypeError(
                    f"class {receiver.base} has no field {expr.field}"
                )
            return ftype
        if isinstance(expr, FieldWrite):
            receiver = self.check_expr(expr.receiver, env)
            if not receiver.is_reference or receiver.base == "$null":
                raise FEnerJTypeError(f"field write on non-object type {receiver}")
            ftype = self.table.ftype(receiver, expr.field)
            if ftype is None:
                raise FEnerJTypeError(
                    f"class {receiver.base} has no field {expr.field}"
                )
            if ftype.qualifier is LOST:
                raise FEnerJTypeError(
                    f"cannot write field {expr.field}: adapted precision is lost"
                )
            value = self.check_expr(expr.value, env)
            if not is_subtype(self.table, value, ftype):
                raise FEnerJTypeError(
                    f"cannot assign {value} to field {expr.field} of type {ftype}"
                )
            return ftype
        if isinstance(expr, MethodCall):
            receiver = self.check_expr(expr.receiver, env)
            if not receiver.is_reference or receiver.base == "$null":
                raise FEnerJTypeError(f"method call on non-object type {receiver}")
            sig = self.table.msig(receiver, expr.method)
            if sig is None:
                raise FEnerJTypeError(
                    f"class {receiver.base} has no method {expr.method}"
                )
            params, returns, _decl = sig
            if len(params) != len(expr.args):
                raise FEnerJTypeError(
                    f"{expr.method} expects {len(params)} arguments, got "
                    f"{len(expr.args)}"
                )
            for param, arg in zip(params, expr.args):
                if param.qualifier is LOST:
                    raise FEnerJTypeError(
                        f"cannot pass argument at lost precision to {expr.method}"
                    )
                arg_type = self.check_expr(arg, env)
                if not is_subtype(self.table, arg_type, param):
                    raise FEnerJTypeError(
                        f"argument of type {arg_type} does not match parameter "
                        f"{param} of {expr.method}"
                    )
            return returns
        if isinstance(expr, Cast):
            type_wf(self.table, expr.type, in_class="this" in env)
            inner = self.check_expr(expr.expr, env)
            if not is_subtype(self.table, inner, expr.type):
                raise FEnerJTypeError(f"illegal cast from {inner} to {expr.type}")
            return expr.type
        if isinstance(expr, BinOp):
            left = self.check_expr(expr.left, env)
            right = self.check_expr(expr.right, env)
            if not left.is_primitive or not right.is_primitive:
                raise FEnerJTypeError(
                    f"operator {expr.op} on non-primitive types {left}, {right}"
                )
            if left.qualifier in (TOP, LOST) or right.qualifier in (TOP, LOST):
                raise FEnerJTypeError(
                    f"operator {expr.op} on top/lost-qualified operands"
                )
            qualifier = PRECISE
            for operand in (left, right):
                if operand.qualifier is APPROX:
                    qualifier = APPROX
                elif operand.qualifier is CONTEXT and qualifier is PRECISE:
                    qualifier = CONTEXT
            if expr.op in _COMPARISON_OPS:
                return Type(qualifier, "int")
            base = "float" if "float" in (left.base, right.base) else "int"
            return Type(qualifier, base)
        if isinstance(expr, If):
            cond = self.check_expr(expr.cond, env)
            if not (cond.is_primitive and cond.qualifier is PRECISE):
                raise FEnerJTypeError(
                    f"condition must be a precise primitive, got {cond}"
                )
            then_type = self.check_expr(expr.then, env)
            else_type = self.check_expr(expr.orelse, env)
            joined = type_lub(self.table, then_type, else_type)
            if joined is None:
                raise FEnerJTypeError(
                    f"branches have incompatible types {then_type} / {else_type}"
                )
            return joined
        if isinstance(expr, Seq):
            self.check_expr(expr.first, env)
            return self.check_expr(expr.second, env)
        if isinstance(expr, Endorse):
            if not self.allow_endorse:
                raise FEnerJTypeError(
                    "endorse is not part of FEnerJ (enable allow_endorse for "
                    "the negative control)"
                )
            inner = self.check_expr(expr.expr, env)
            if not inner.is_primitive:
                raise FEnerJTypeError("endorse applies to primitives only")
            return inner.with_qualifier(PRECISE)
        raise FEnerJTypeError(f"unknown expression {expr!r}")
