"""Non-interference machinery for FEnerJ (paper Section 3.3).

The paper proves: changing approximate values in the heap or runtime
environment does not change the precise parts of the heap or the result
of the computation.  This module provides

* fault-injection :class:`~repro.fenerj.interp.ApproxPolicy` instances
  (seeded random perturbation of approximate values),
* :func:`check_noninterference` — run a program under two different
  policies and compare the precise projections of result and heap,
* a random well-typed program generator (:func:`random_program`) used
  by the hypothesis property tests: type soundness and non-interference
  hold on every generated program; with ``endorse`` enabled they can be
  made to fail (the negative control).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.qualifiers import APPROX, CONTEXT, PRECISE, Qualifier
from repro.fenerj.interp import ApproxPolicy, Heap, Interpreter, Value, run_program
from repro.fenerj.syntax import (
    BinOp,
    ClassDecl,
    Endorse,
    Expr,
    FieldDecl,
    FieldRead,
    FieldWrite,
    FloatLit,
    If,
    IntLit,
    MethodCall,
    MethodDecl,
    New,
    NullLit,
    Program,
    Seq,
    Type,
    Var,
)

__all__ = [
    "IdentityPolicy",
    "RandomPerturbPolicy",
    "OffsetPolicy",
    "check_noninterference",
    "random_program",
    "NIResult",
]


class IdentityPolicy(ApproxPolicy):
    """Approximate execution with no faults (one valid execution)."""


class RandomPerturbPolicy(ApproxPolicy):
    """Replace approximate values with random ones of the same kind.

    This is the paper's approximating-semantics rule instantiated with
    maximum adversity: every approximate value may become anything.
    ``rate`` controls how often (1.0 = always).
    """

    def __init__(self, seed: int, rate: float = 0.5) -> None:
        self._random = random.Random(seed)
        self.rate = rate

    def perturb(self, value: Value) -> Value:
        if self._random.random() >= self.rate:
            return value
        if value.kind == "int":
            return Value(self._random.randint(-(2**31), 2**31 - 1), "int", True)
        if value.kind == "float":
            return Value(self._random.uniform(-1e6, 1e6), "float", True)
        return value


class OffsetPolicy(ApproxPolicy):
    """Add a constant offset to every approximate value (deterministic)."""

    def __init__(self, offset: int = 1) -> None:
        self.offset = offset

    def perturb(self, value: Value) -> Value:
        if value.kind == "int":
            return Value(value.data + self.offset, "int", True)
        if value.kind == "float":
            return Value(value.data + float(self.offset), "float", True)
        return value


class NIResult:
    """Outcome of a non-interference comparison."""

    def __init__(
        self,
        interferes: bool,
        detail: str,
        result_a: Value,
        result_b: Value,
    ) -> None:
        self.interferes = interferes
        self.detail = detail
        self.result_a = result_a
        self.result_b = result_b

    def __bool__(self) -> bool:  # truthy when non-interference HOLDS
        return not self.interferes


def _precise_result_part(value: Value) -> Optional[object]:
    """The precise observable of the final result (None if approximate)."""
    if value.approx:
        return None
    return value.data


def check_noninterference(
    program: Program,
    policy_a: Optional[ApproxPolicy] = None,
    policy_b: Optional[ApproxPolicy] = None,
    fuel: int = 100_000,
) -> NIResult:
    """Run a program under two approximation policies and compare.

    Non-interference holds when the precise projections of the final
    heaps agree and the results agree whenever the result is precise.
    Isolation checking is on: a violation would surface as an exception
    rather than a silent disagreement.
    """
    policy_a = policy_a or IdentityPolicy()
    policy_b = policy_b or RandomPerturbPolicy(seed=0)

    result_a, heap_a = run_program(program, policy_a, check_isolation=True, fuel=fuel)
    result_b, heap_b = run_program(program, policy_b, check_isolation=True, fuel=fuel)

    if heap_a.precise_projection() != heap_b.precise_projection():
        return NIResult(True, "precise heap projections differ", result_a, result_b)

    precise_a = _precise_result_part(result_a)
    precise_b = _precise_result_part(result_b)
    if (result_a.approx, result_b.approx) == (False, False) and precise_a != precise_b:
        return NIResult(True, "precise results differ", result_a, result_b)
    if result_a.approx != result_b.approx:
        return NIResult(True, "result precision tags differ", result_a, result_b)
    return NIResult(False, "", result_a, result_b)


# ----------------------------------------------------------------------
# Random well-typed program generation
# ----------------------------------------------------------------------
_FIELD_POOL: List[Tuple[str, Qualifier]] = [
    ("p0", PRECISE),
    ("p1", PRECISE),
    ("a0", APPROX),
    ("a1", APPROX),
    ("c0", CONTEXT),
]


def random_program(
    seed: int,
    depth: int = 3,
    statements: int = 6,
    with_endorse: bool = False,
    main_approx: bool = False,
) -> Program:
    """A random well-typed FEnerJ program over one generated class.

    The class ``Cell`` has precise, approximate, and context int fields
    and a helper method per precision.  The main expression is a
    sequence of random field writes whose right-hand sides are random
    well-typed expressions; the final expression reads a precise field,
    so the program's observable is precise state.

    With ``with_endorse=True`` the generator may wrap approximate
    sub-expressions in ``endorse`` — such programs still typecheck (in
    permissive mode) but can interfere: the negative control.
    """
    rng = random.Random(seed)

    cell = ClassDecl(
        name="Cell",
        superclass="Object",
        fields=tuple(
            FieldDecl(Type(qual, "int"), name) for name, qual in _FIELD_POOL
        ),
        methods=(
            MethodDecl(
                Type(PRECISE, "int"),
                "getp",
                ((Type(PRECISE, "int"), "x"),),
                PRECISE,
                BinOp("+", FieldRead(Var("this"), "p0"), Var("x")),
            ),
            MethodDecl(
                Type(APPROX, "int"),
                "geta",
                ((Type(APPROX, "int"), "x"),),
                CONTEXT,
                BinOp("+", FieldRead(Var("this"), "a0"), Var("x")),
            ),
        ),
    )

    main_qual = APPROX if main_approx else PRECISE

    def gen_expr(want_approx: bool, depth_left: int) -> Expr:
        """A random expression of (at most) the requested precision."""
        choices = ["lit", "field", "binop", "if", "call"]
        if depth_left <= 0:
            choices = ["lit", "field"]
        kind = rng.choice(choices)

        if kind == "lit":
            return IntLit(rng.randint(-10, 10))
        if kind == "field":
            candidates = ["p0", "p1"]
            if want_approx:
                candidates = candidates + ["a0", "a1"]
                if main_qual is APPROX:
                    candidates.append("c0")
                elif not want_approx:
                    candidates.append("c0")
            if not want_approx and main_qual is PRECISE:
                candidates.append("c0")
            name = rng.choice(candidates)
            expr: Expr = FieldRead(Var("this"), name)
            if with_endorse and want_approx is False and rng.random() < 0.4:
                # Sneak approximate data through an endorsement.
                expr = Endorse(FieldRead(Var("this"), "a0"))
            return expr
        if kind == "binop":
            op = rng.choice(["+", "-", "*"])
            return BinOp(
                op,
                gen_expr(want_approx, depth_left - 1),
                gen_expr(want_approx, depth_left - 1),
            )
        if kind == "if":
            cond = BinOp(
                rng.choice(["<", "==", ">"]),
                gen_expr(False, depth_left - 1),
                gen_expr(False, depth_left - 1),
            )
            return If(
                cond,
                gen_expr(want_approx, depth_left - 1),
                gen_expr(want_approx, depth_left - 1),
            )
        # call
        if want_approx:
            return MethodCall(Var("this"), "geta", (gen_expr(True, depth_left - 1),))
        return MethodCall(Var("this"), "getp", (gen_expr(False, depth_left - 1),))

    def writable_fields() -> List[Tuple[str, bool]]:
        """(field, slot-wants-approx-rhs) pairs writable from main."""
        fields = [("p0", False), ("p1", False), ("a0", True), ("a1", True)]
        # context field: adapts to the main instance's precision.
        fields.append(("c0", main_qual is APPROX))
        return fields

    stmts: List[Expr] = []
    for _ in range(statements):
        field, approx_ok = rng.choice(writable_fields())
        value = gen_expr(approx_ok, depth)
        stmts.append(FieldWrite(Var("this"), field, value))

    # Observable: a precise field read at the end.
    expr: Expr = FieldRead(Var("this"), "p0")
    for stmt in reversed(stmts):
        expr = Seq(stmt, expr)

    return Program(
        classes=(cell,),
        main_class="Cell",
        main_expr=expr,
        main_qualifier=main_qual,
    )
