"""Lexer for the FEnerJ concrete syntax."""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

from repro.errors import FEnerJSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "class",
        "extends",
        "new",
        "if",
        "else",
        "null",
        "this",
        "main",
        "endorse",
        "precise",
        "approx",
        "top",
        "context",
        "lost",
        "int",
        "float",
    }
)

_TWO_CHAR = ("==", "!=", "<=", ">=", ":=")
_ONE_CHAR = "{}();.,+-*/<>="


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str  # "kw", "ident", "int", "float", "punct", "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Split FEnerJ source into tokens; raises on illegal characters."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def push(kind: str, text: str) -> None:
        tokens.append(Token(kind, text, line, start_column))

    while i < length:
        ch = source[i]
        start_column = column

        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "/" and i + 1 < length and source[i + 1] == "/":
            while i < length and source[i] != "\n":
                i += 1
            continue

        if ch.isdigit() or (ch == "." and i + 1 < length and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < length and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # Don't swallow a field access after an int: "1.f".
                    if j + 1 >= length or not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            text = source[i:j]
            push("float" if "." in text else "int", text)
            column += j - i
            i = j
            continue

        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            push("kw" if text in KEYWORDS else "ident", text)
            column += j - i
            i = j
            continue

        two = source[i : i + 2]
        if two in _TWO_CHAR:
            push("punct", two)
            i += 2
            column += 2
            continue
        if ch in _ONE_CHAR:
            push("punct", ch)
            i += 1
            column += 1
            continue

        raise FEnerJSyntaxError(f"illegal character {ch!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens
