"""Command-line interface for the EnerPy toolchain.

Usage::

    python -m repro check FILE [FILE...]          # static qualifier check
    python -m repro lint [APP...]                 # endorsement audit + inference
    python -m repro analyze reliability [APP...]  # static corruption bounds
    python -m repro run FILE --entry F [args...]  # simulate a program
    python -m repro census FILE [FILE...]         # annotation statistics
    python -m repro experiments NAME              # regenerate a table/figure
    python -m repro trace APP                     # traced run -> JSONL events
    python -m repro trace-report FILE             # summarise a JSONL trace
    python -m repro cache {stats,gc,verify}       # run-store maintenance
    python -m repro serve                         # simulation daemon
    python -m repro submit APP                    # query a daemon or fleet
    python -m repro tune [APP...]                 # online QoS-budget frontier
    python -m repro recover frontier [APP...]     # guaranteed-quality frontier
    python -m repro fabric {serve,shards}         # campaign coordinator

``run`` compiles the file(s), executes ``--entry`` with integer/float
arguments under the chosen configuration, and reports the output plus
the measured statistics and estimated energy.  ``trace`` runs one of
the ported paper applications with the observability layer attached
(see ``OBSERVABILITY.md`` for the event schema).

``experiments`` keeps a persistent, content-addressed run cache under
``--cache-dir`` (default ``.repro-cache/``): completed cells are never
recomputed, an interrupted campaign resumes where it stopped
(``--resume`` insists a cache exists), and ``--no-cache`` opts out.
``cache`` inspects (``stats``), checks (``verify``) or prunes (``gc``)
that store — see the "Caching & resume" section of ``EXPERIMENTS.md``.

``serve`` boots the long-lived simulation daemon (warm worker pool,
bounded admission queue, live ``/metrics``; see ``SERVICE.md``), and
``submit`` sends single or batched QoS queries to a running daemon —
or, with ``--fleet HOST:PORT``, to a fabric coordinator.
``experiments --via-service HOST:PORT`` routes a driver's QoS queries
through the daemon instead of simulating locally;
``--via-fleet HOST:PORT`` does the same through a ``fabric serve``
coordinator, falling back to local execution if the fleet is lost
mid-campaign.  ``fabric serve`` shards campaigns across a fleet of
daemons by consistent hashing (``fabric shards`` prints the map); the
wire protocol and failure semantics are specified in ``FABRIC.md``.

``lint`` and ``analyze`` run the whole-program approximation-flow
analyses over the ported apps (see ``ANALYSIS.md``): the endorsement
audit plus checker-validated ``@Approx`` relaxation suggestions, and
static per-op corruption bounds with an optional dynamic soundness
check (``--verify``).  Both share the exit-code contract of ``check``:
0 on success, 1 on failure (checker errors, baseline drift, or a
soundness violation), and both emit canonical JSON under
``--format json`` — byte-identical across runs and under ``--jobs``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

from repro.core.checker import check_modules
from repro.core.pipeline import compile_program
from repro.energy import MOBILE, SERVER, estimate_energy
from repro.errors import ReproError, TypeCheckError
from repro.hardware import AGGRESSIVE, BASELINE, MEDIUM, MILD
from repro.runtime import Simulator
from repro.service.config import DEFAULT_PORT as _DEFAULT_SERVICE_PORT

# Imported lazily elsewhere; these two are argparse defaults, constant
# and dependency-free (repro.fabric pulls in the service layer).
_DEFAULT_FABRIC_PORT = 7747
_DEFAULT_VNODES = 64

_CONFIGS = {
    "baseline": BASELINE,
    "mild": MILD,
    "medium": MEDIUM,
    "aggressive": AGGRESSIVE,
}

#: Default location of the persistent run store (repro.store).
_DEFAULT_CACHE_DIR = ".repro-cache"

_EXPERIMENTS = (
    "table2",
    "table3",
    "figure3",
    "figure4",
    "figure5",
    "sensitivity",
    "ablation",
    "autotune",
    "static_vs_dynamic",
    "online_monitor",
)


def _load_sources(paths: List[str]) -> Dict[str, str]:
    sources = {}
    for path in paths:
        name = os.path.splitext(os.path.basename(path))[0]
        with open(path, "r", encoding="utf-8") as handle:
            sources[name] = handle.read()
    return sources


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def cmd_check(args: argparse.Namespace) -> int:
    result = check_modules(_load_sources(args.files))
    if args.format == "json":
        from repro.analysis.report import canonical_json, diagnostics_payload

        payload = diagnostics_payload(
            " ".join(args.files), result.ok, result.diagnostics
        )
        print(canonical_json(payload), end="")
        return 0 if result.ok else 1
    for diagnostic in result.diagnostics:
        print(diagnostic)
    if result.ok:
        count = len(result.diagnostics)
        suffix = f" ({count} warnings)" if count else ""
        print(f"OK: {len(args.files)} module(s) are well-typed EnerPy{suffix}")
        return 0
    print(f"FAILED: {len(result.sink.errors)} error(s)")
    return 1


# ----------------------------------------------------------------------
# Approximation-flow analysis (repro lint / repro analyze)
# ----------------------------------------------------------------------
def _resolve_apps(names: List[str]) -> List[str]:
    """CLI app arguments -> canonical spec names (default: every app)."""
    from repro.apps import ALL_APPS, app_by_name

    if not names:
        return [spec.name for spec in ALL_APPS]
    return [app_by_name(name).name for name in names]


def _fan_out(worker, items: list, jobs) -> list:
    """``map(worker, items)``, optionally across processes.

    Results come back in item order either way, so output is
    byte-identical to the serial path (the analyses themselves are
    deterministic; parallelism only reorders wall-clock completion).
    """
    if not jobs or jobs <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - platform dependent
        context = multiprocessing.get_context()
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        return list(pool.map(worker, items))


def _lint_one(item):
    """Worker: (app name, suggest?) -> (findings, suggestions)."""
    name, suggest = item
    from repro.analysis import infer_relaxations, run_lints
    from repro.analysis.flowgraph import build_flow_graph
    from repro.apps import app_by_name, load_sources

    spec = app_by_name(name)
    sources = load_sources(spec)
    result = check_modules(sources)
    if not result.ok:
        raise ReproError(f"{spec.name}: sources fail the checker: {result.codes()}")
    graph = build_flow_graph(result)
    findings = run_lints(graph=graph)
    suggestions = (
        infer_relaxations(sources, result=result, graph=graph) if suggest else []
    )
    return findings, suggestions


def _analyze_one(item):
    """Worker: (app name, levels, verify?, seeds, residency) -> (bounds, soundness)."""
    name, levels, verify, seeds, residency = item
    from repro.analysis import app_reliability, soundness_check
    from repro.apps import app_by_name

    spec = app_by_name(name)
    profile = "profiled" if residency == "profiled" else None
    bounds = app_reliability(spec, levels, profile=profile)
    records = None
    if verify:
        records = soundness_check(
            spec, levels, fault_seeds=tuple(range(1, seeds + 1)), profile=profile
        )
    return bounds, records


def _placement_one(item):
    """Worker: (app name, levels, verify?, seeds, threshold) -> (plans, verifications)."""
    name, levels, verify, seeds, threshold = item
    from repro.analysis.placement import DEFAULT_THRESHOLD, PlacementAnalysis
    from repro.apps import app_by_name

    if threshold is None:
        threshold = DEFAULT_THRESHOLD
    spec = app_by_name(name)
    plans = []
    verifications = None
    for level in levels:
        analysis = PlacementAnalysis(spec, level=level, threshold=threshold)
        plans.append(analysis.plan())
        if verify:
            if verifications is None:
                verifications = []
            for fault_seed in range(1, seeds + 1):
                verifications.append(analysis.verify(fault_seed=fault_seed))
    return plans, verifications


def _baseline_path(directory: str, app: str) -> str:
    return os.path.join(directory, f"{app.lower()}.json")


#: Exit code when ``--fail-on`` trips: distinct from 1 (operational or
#: verification failure) so CI can tell "the analysis found something"
#: from "the analysis broke".
EXIT_FAIL_ON = 2

_SEVERITY_RANK = {"info": 0, "warning": 1, "error": 2}


def _fail_on_tripped(fail_on, severities) -> bool:
    """True when any reported severity meets the ``--fail-on`` bar."""
    if not fail_on:
        return False
    bar = _SEVERITY_RANK[fail_on]
    return any(_SEVERITY_RANK.get(s, 0) >= bar for s in severities)


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.report import canonical_json, lint_payload, render_lint_text

    try:
        apps = _resolve_apps(args.apps)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    if args.write_baselines and not args.baseline_dir:
        print("error: --write-baselines requires --baseline-dir", file=sys.stderr)
        return 1

    suggest = not args.no_suggest
    results = _fan_out(_lint_one, [(name, suggest) for name in apps], args.jobs)
    payloads = {
        name: lint_payload(name, findings, suggestions)
        for name, (findings, suggestions) in zip(apps, results)
    }
    fail_on = _fail_on_tripped(
        args.fail_on,
        [f.severity for findings, _ in results for f in findings],
    )

    if args.write_baselines:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for name in apps:
            path = _baseline_path(args.baseline_dir, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(canonical_json(payloads[name]))
            print(f"wrote {path}")
        return 0

    if args.baseline_dir:
        drifted = []
        for name in apps:
            path = _baseline_path(args.baseline_dir, name)
            current = canonical_json(payloads[name])
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    committed = handle.read()
            except FileNotFoundError:
                print(f"{name}: MISSING baseline {path}")
                drifted.append(name)
                continue
            if committed != current:
                print(f"{name}: DRIFT against {path}")
                drifted.append(name)
            else:
                print(f"{name}: ok ({len(payloads[name]['findings'])} finding(s))")
        if drifted:
            print(
                f"FAILED: {len(drifted)} app(s) drifted; regenerate with "
                "'repro lint --baseline-dir DIR --write-baselines'"
            )
            return 1
        return EXIT_FAIL_ON if fail_on else 0

    if args.format == "json":
        if len(apps) == 1:
            print(canonical_json(payloads[apps[0]]), end="")
        else:
            print(canonical_json({"apps": [payloads[name] for name in apps]}), end="")
        return EXIT_FAIL_ON if fail_on else 0

    blocks = [
        render_lint_text(name, findings, suggestions)
        for name, (findings, suggestions) in zip(apps, results)
    ]
    print("\n\n".join(blocks))
    return EXIT_FAIL_ON if fail_on else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.what == "placement":
        return _cmd_analyze_placement(args)

    from repro.analysis.report import (
        canonical_json,
        reliability_payload,
        render_reliability_text,
    )

    try:
        apps = _resolve_apps(args.apps)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1

    levels = args.level or None
    items = [
        (name, levels, args.verify, args.seeds, args.residency) for name in apps
    ]
    results = _fan_out(_analyze_one, items, args.jobs)

    violations = 0
    for _, records in results:
        if records:
            violations += sum(1 for record in records if not record.sound)
    # --fail-on warning gates on saturated bounds: a bound pinned at 1.0
    # is an honest "no guarantee", which CI may refuse to ship.
    fail_on = _fail_on_tripped(
        args.fail_on,
        [
            "warning"
            for bounds, _ in results
            for bound in bounds
            if bound.saturated
        ],
    )

    if args.format == "json":
        payloads = [
            reliability_payload(name, bounds, records)
            for name, (bounds, records) in zip(apps, results)
        ]
        document = payloads[0] if len(apps) == 1 else {"apps": payloads}
        print(canonical_json(document), end="")
    else:
        blocks = [
            render_reliability_text(name, bounds, records)
            for name, (bounds, records) in zip(apps, results)
        ]
        print("\n\n".join(blocks))
        if args.verify:
            checked = sum(len(records or ()) for _, records in results)
            if violations:
                print(f"FAILED: {violations}/{checked} soundness record(s) violated")
            else:
                print(f"OK: {checked} soundness record(s), observed <= bound")
    if violations:
        return 1
    return EXIT_FAIL_ON if fail_on else 0


def _cmd_analyze_placement(args: argparse.Namespace) -> int:
    from repro.analysis.report import (
        canonical_json,
        placement_payload,
        render_placement_text,
    )

    try:
        apps = _resolve_apps(args.apps)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    if args.write_baselines and not args.baseline_dir:
        print("error: --write-baselines requires --baseline-dir", file=sys.stderr)
        return 1

    # Plans default to all three levels (that is the baseline shape);
    # --verify simulates, so it defaults to Mild — the level where the
    # annotated programs are known-acceptable — unless levels are given.
    if args.level:
        levels = list(dict.fromkeys(args.level))
    else:
        levels = ["mild"] if args.verify else ["mild", "medium", "aggressive"]
    items = [
        (name, levels, args.verify, args.seeds, args.threshold) for name in apps
    ]
    results = _fan_out(_placement_one, items, args.jobs)

    # Golden baselines carry plans only: verification depends on fault
    # seeds and is asserted live, not diffed.
    payloads = {
        name: placement_payload(name, plans)
        for name, (plans, _) in zip(apps, results)
    }
    rejected = sum(
        1
        for _, verifications in results
        for v in verifications or ()
        if not v.accepted
    )
    fail_on = _fail_on_tripped(
        args.fail_on,
        [
            "warning"
            for plans, _ in results
            for plan in plans
            if not plan.feasible or not plan.validated
        ],
    )

    if args.write_baselines:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for name in apps:
            path = _baseline_path(args.baseline_dir, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(canonical_json(payloads[name]))
            print(f"wrote {path}")
        return 0

    if args.baseline_dir:
        drifted = []
        for name in apps:
            path = _baseline_path(args.baseline_dir, name)
            current = canonical_json(payloads[name])
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    committed = handle.read()
            except FileNotFoundError:
                print(f"{name}: MISSING baseline {path}")
                drifted.append(name)
                continue
            if committed != current:
                print(f"{name}: DRIFT against {path}")
                drifted.append(name)
            else:
                demotions = sum(
                    len(plan["decisions"]) for plan in payloads[name]["plans"]
                )
                print(f"{name}: ok ({demotions} decision(s))")
        if drifted:
            print(
                f"FAILED: {len(drifted)} app(s) drifted; regenerate with "
                "'repro analyze placement --baseline-dir DIR --write-baselines'"
            )
            return 1
        return EXIT_FAIL_ON if fail_on else 0

    if args.format == "json":
        documents = [
            placement_payload(name, plans, verifications)
            for name, (plans, verifications) in zip(apps, results)
        ]
        document = documents[0] if len(apps) == 1 else {"apps": documents}
        print(canonical_json(document), end="")
    else:
        blocks = [
            render_placement_text(name, plans, verifications)
            for name, (plans, verifications) in zip(apps, results)
        ]
        print("\n\n".join(blocks))
        if args.verify:
            checked = sum(len(v or ()) for _, v in results)
            beaten = sum(
                1
                for _, verifications in results
                for v in verifications or ()
                if v.beats_measured and v.beats_modeled
            )
            if rejected:
                print(
                    f"FAILED: {rejected}/{checked} placement(s) rejected by "
                    f"the acceptability check"
                )
            else:
                print(
                    f"OK: {checked} placement(s) accepted; {beaten} beat the "
                    f"all-precise-DRAM energy (modeled and measured)"
                )
    if rejected:
        return 1
    return EXIT_FAIL_ON if fail_on else 0


def cmd_run(args: argparse.Namespace) -> int:
    config = _CONFIGS[args.config]
    try:
        program = compile_program(_load_sources(args.files))
    except TypeCheckError as error:
        print(error)
        return 1
    module = args.module or os.path.splitext(os.path.basename(args.files[0]))[0]
    call_args = [_parse_value(a) for a in args.args]
    with Simulator(config, seed=args.seed) as simulator:
        output = program.call(module, args.entry, *call_args)
    stats = simulator.stats()

    print(f"output   : {output!r}" if not args.quiet_output else "output   : <suppressed>")
    print(f"config   : {config.name} (seed {args.seed})")
    print(
        f"ops      : {stats.int_ops_total} int ({stats.int_approx_fraction:.1%} approx), "
        f"{stats.fp_ops_total} fp ({stats.fp_approx_fraction:.1%} approx)"
    )
    print(
        f"storage  : DRAM {stats.dram_approx_fraction:.1%} approx, "
        f"SRAM {stats.sram_approx_fraction:.1%} approx (byte-ticks)"
    )
    print(f"faults   : {stats.total_faults}, endorsements: {stats.endorsements}")
    params = MOBILE if args.mobile else SERVER
    energy = estimate_energy(stats, config, params)
    print(f"energy   : {energy.total:.1%} of precise ({params.name} split)")
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    from repro.experiments.annotations_census import census_sources

    census = census_sources(_load_sources(args.files))
    print(f"lines of code      : {census.lines_of_code}")
    print(f"declarations       : {census.declarations}")
    print(
        f"annotated          : {census.annotated} "
        f"({census.annotated_fraction:.1%})"
    )
    print(f"endorsement sites  : {census.endorsements}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.apps import app_by_name
    from repro.observability import (
        TraceFilter,
        merge_trace_results,
        traced_runs,
        write_trace,
    )

    try:
        spec = app_by_name(args.app)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    try:
        trace_filter = TraceFilter.parse(args.trace_filter)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    config = _CONFIGS[args.level]
    fault_seeds = range(args.seed, args.seed + args.runs)
    results = traced_runs(
        spec, config, fault_seeds, workload_seed=args.workload_seed, jobs=args.jobs
    )
    stats, metrics, events, dropped = merge_trace_results(results)

    written = None
    if args.trace_out:
        written = write_trace(args.trace_out, results, trace_filter)

    counters = metrics.as_dict()["counters"]
    print(f"app       : {spec.name} @ {config.name}, fault seeds {list(fault_seeds)}")
    print(f"events    : {len(events)} emitted, {dropped} dropped by ring buffer")
    for kind in sorted(counters):
        if counters[kind]:
            print(f"  {kind:<26} {counters[kind]:>10}")
    print(f"faults    : {stats.total_faults}, ops: {stats.ops_total}, "
          f"cycles: {stats.ticks}")
    if written is not None:
        kept = "all kinds" if trace_filter.is_empty else "filtered"
        print(f"wrote     : {written} events ({kept}) -> {args.trace_out}")
    return 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.observability import read_trace, summarize

    try:
        trace = read_trace(args.file)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(summarize(trace, top=args.top))
    return 0


def _parse_host_port(text: str):
    """``HOST:PORT`` (or bare ``PORT``) -> (host, port); raises ValueError."""
    host, _, port_text = text.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid HOST:PORT {text!r}") from None
    return host, port


def cmd_experiments(args: argparse.Namespace) -> int:
    import importlib
    import inspect

    from repro import store as run_store

    if args.resume and args.no_cache:
        print("error: --resume and --no-cache are contradictory", file=sys.stderr)
        return 1
    if args.resume and not os.path.isdir(args.cache_dir):
        print(
            f"error: --resume: no run store at {args.cache_dir!r} "
            "(nothing to resume; drop --resume for a cold start)",
            file=sys.stderr,
        )
        return 1

    from repro.experiments.executor import ExecutionPlan

    # One resolver for the routing/parallelism flag surface; the same
    # documented precedence (route, then jobs, then batch) the harness
    # applies per query.
    try:
        plan = ExecutionPlan.resolve(
            via_service=args.via_service,
            via_fleet=args.via_fleet,
            jobs=args.jobs,
            batch=args.batch,
            recover=args.recover,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    module = importlib.import_module(f"repro.experiments.{args.name}")
    store = None if args.no_cache else run_store.configure(args.cache_dir)
    try:
        # Drivers rewired through the parallel executor accept jobs=N,
        # and seed-sweep drivers additionally accept batch=N; the
        # remainder (e.g. table2) are pure formatting, stay serial,
        # and never touch the store.
        parameters = inspect.signature(module.main).parameters
        kwargs, notes = plan.driver_kwargs(parameters)
        for note in notes:
            print(f"note: {args.name} does not support {note}")
        with plan.activate():
            module.main(**kwargs)
    finally:
        if store is not None:
            run_store.reset_active_store()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import json
    import signal
    import threading

    from repro.service import ServiceConfig, SimulationServer

    if args.warm_apps == "none":
        warm_apps = ()
    else:
        warm_apps = tuple(name.strip() for name in args.warm_apps.split(",") if name.strip())
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_bound=args.queue_bound,
            default_deadline_ms=args.default_deadline_ms,
            drain_timeout_s=args.drain_timeout,
            cache_dir=None if args.no_cache else args.cache_dir,
            warm_apps=warm_apps,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.dump_config:
        print(json.dumps(config.as_dict(), indent=2, sort_keys=True))
        return 0

    server = SimulationServer(config)
    host, port = server.start()
    print(
        f"repro-serve: listening on {host}:{port} "
        f"({config.workers} workers, queue bound {config.queue_bound}, "
        f"store {config.cache_dir or 'disabled'})",
        flush=True,
    )
    stop = threading.Event()

    def _graceful(signum, frame):
        server.initiate_drain()
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    stop.wait()
    print("repro-serve: draining...", flush=True)
    drained = server.drain()
    server.stop()
    if not drained:
        print("repro-serve: drain timed out; some requests were abandoned", flush=True)
        return 1
    print("repro-serve: drained cleanly", flush=True)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient

    host, port = args.host, args.port
    if args.fleet:
        # A coordinator answers the same submit/batch protocol, so the
        # only difference is where the connection points.
        try:
            host, port = _parse_host_port(args.fleet)
        except ValueError as error:
            print(f"error: --fleet: {error}", file=sys.stderr)
            return 1
    if args.deadline_ms is not None and args.deadline_ms < 0:
        print(
            "error: --deadline-ms must be >= 0 (0 means no deadline)",
            file=sys.stderr,
        )
        return 1
    if args.recover is not None:
        if args.qos_budget is not None:
            print(
                "error: --recover and --qos-budget are mutually "
                "exclusive: one quality authority per request "
                "(a budget tunes levels, a recover mode re-executes "
                "violations)",
                file=sys.stderr,
            )
            return 1
        if args.trace_summary:
            print(
                "error: --recover and --trace-summary are mutually "
                "exclusive: a retry would make the trace ambiguous",
                file=sys.stderr,
            )
            return 1
    if args.qos_budget is not None:
        if args.level is not None:
            print(
                "error: --level and --qos-budget are mutually exclusive: "
                "submit a fixed configuration or a budget, not both",
                file=sys.stderr,
            )
            return 1
        if args.seed is not None or args.workload_seed is not None:
            print(
                "error: --seed/--workload-seed do not apply under "
                "--qos-budget (the daemon's online tuner owns the "
                "sampling schedule)",
                file=sys.stderr,
            )
            return 1
        with ServiceClient(host, port) as client:
            results = [
                client.submit(
                    args.app,
                    qos_budget=args.qos_budget,
                    want_trace_summary=args.trace_summary,
                    deadline_ms=args.deadline_ms,
                )
                for _ in range(args.runs)
            ]
        return _print_submit_results(args, results, budget=True)

    level = args.level if args.level is not None else "medium"
    seed = args.seed if args.seed is not None else 1
    workload_seed = args.workload_seed if args.workload_seed is not None else 0
    seeds = range(seed, seed + args.runs)
    with ServiceClient(host, port) as client:
        if args.runs == 1:
            results = [
                client.submit(
                    args.app,
                    level,
                    fault_seed=seed,
                    workload_seed=workload_seed,
                    want_trace_summary=args.trace_summary,
                    deadline_ms=args.deadline_ms,
                    recover=args.recover,
                )
            ]
        else:
            items = [
                {
                    "app": args.app,
                    "config": level,
                    "fault_seed": fault_seed,
                    "workload_seed": workload_seed,
                    "want_trace_summary": args.trace_summary,
                    **(
                        {"recover": args.recover}
                        if args.recover is not None
                        else {}
                    ),
                    **(
                        {"deadline_ms": args.deadline_ms}
                        if args.deadline_ms is not None
                        else {}
                    ),
                }
                for fault_seed in seeds
            ]
            results = client.submit_batch(items)
    return _print_submit_results(args, results, budget=False)


def _print_submit_results(args: argparse.Namespace, results, budget: bool) -> int:
    import json

    if args.json:
        payload = []
        for r in results:
            row = {
                "app": r.app,
                "config": r.config,
                "fault_seed": r.fault_seed,
                "workload_seed": r.workload_seed,
                "qos": r.qos,
                "cached": r.cached,
                "server_ms": r.server_ms,
                "trace_summary": r.trace_summary,
            }
            if budget:
                row.update(
                    {
                        "qos_budget": r.qos_budget,
                        "levels": r.levels,
                        "energy": r.energy,
                        "within_budget": r.within_budget,
                        "tuner": r.tuner,
                    }
                )
            if r.recovery is not None:
                row["recovery"] = r.recovery
            payload.append(row)
        print(json.dumps(payload, indent=2))
        return 0
    hits = sum(1 for r in results if r.cached)
    for r in results:
        origin = "store" if r.cached else "worker"
        if budget:
            levels = ",".join(f"{k}={v}" for k, v in sorted(r.levels.items()))
            flag = "ok" if r.within_budget else "OVER"
            print(
                f"seed {r.fault_seed:>4}  qos {r.qos:<22.17g} {flag:<4} "
                f"energy {r.energy:.3f}  [{levels}] "
                f"[{origin}, {r.server_ms:.1f} ms]"
            )
        else:
            note = ""
            if r.recovery is not None:
                if r.recovery["violation"]:
                    note = (
                        f"  RECOVERED[{r.recovery['retry_kind']}] "
                        f"energy {r.recovery['total_energy']:.3f}"
                    )
                else:
                    note = f"  clean energy {r.recovery['total_energy']:.3f}"
            print(
                f"seed {r.fault_seed:>4}  qos {r.qos:<22.17g} "
                f"[{origin}, {r.server_ms:.1f} ms]{note}"
            )
    mean = sum(r.qos for r in results) / len(results)
    if budget:
        last = results[-1].tuner or {}
        print(
            f"{results[-1].app} @ budget {results[-1].qos_budget:g}: mean qos "
            f"{mean:.6g} over {len(results)} request(s) "
            f"({hits} served from store; phase {last.get('phase')}, "
            f"{last.get('observations')} observation(s))"
        )
    else:
        tail = f"({hits} served from store)"
        if results[-1].recovery is not None:
            recovered = sum(
                1 for r in results if r.recovery and r.recovery["violation"]
            )
            tail = f"({recovered} violation(s) recovered)"
        print(
            f"{results[-1].app} @ {results[-1].config}: mean qos {mean:.6g} "
            f"over {len(results)} seed(s) {tail}"
        )
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from repro import store as run_store
    from repro.tuner import DEFAULT_BUDGETS, app_frontier, format_frontier

    try:
        apps = _resolve_apps(args.apps)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    budgets = tuple(args.budget) if args.budget else DEFAULT_BUDGETS
    if any(budget <= 0 for budget in budgets):
        print("error: --budget must be positive (a QoS error budget)", file=sys.stderr)
        return 1

    from repro.apps import app_by_name

    store = None if args.no_cache else run_store.configure(args.cache_dir)
    try:
        frontier = {
            name: app_frontier(app_by_name(name), budgets) for name in apps
        }
    finally:
        if store is not None:
            run_store.reset_active_store()

    if args.format == "json":
        from repro.analysis.report import canonical_json

        payload = {
            "budgets": list(budgets),
            "apps": {
                name: [point.to_dict() for point in points]
                for name, points in frontier.items()
            },
        }
        print(canonical_json(payload), end="")
        return 0
    print(format_frontier(frontier))
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    from repro import store as run_store
    from repro.recovery import (
        RecoveryPolicy,
        format_recovery_frontier,
        suite_recovery_frontier,
    )

    try:
        apps = _resolve_apps(args.apps)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    if args.runs <= 0:
        print("error: --runs must be positive", file=sys.stderr)
        return 1

    from repro.apps import app_by_name

    policy = RecoveryPolicy(args.mode)
    store = None if args.no_cache else run_store.configure(args.cache_dir)
    try:
        frontier = suite_recovery_frontier(
            [app_by_name(name) for name in apps],
            runs=args.runs,
            policy=policy,
        )
    finally:
        if store is not None:
            run_store.reset_active_store()

    if args.format == "json":
        from repro.analysis.report import canonical_json

        payload = {
            "mode": policy.mode,
            "runs": args.runs,
            "apps": {
                name: [point.to_dict() for point in points]
                for name, points in frontier.items()
            },
        }
        print(canonical_json(payload), end="")
        return 0
    print(format_recovery_frontier(frontier))
    return 0


def cmd_fabric(args: argparse.Namespace) -> int:
    import json
    import signal
    import threading

    from repro.fabric import FabricConfig, FabricCoordinator, ShardMap

    nodes = tuple(args.node or ())

    if args.action == "shards":
        # Pure computation, no network: the same map every process
        # derives (tests/test_fabric.py pins cross-process determinism).
        if not nodes:
            print("error: fabric shards requires at least one --node", file=sys.stderr)
            return 1
        try:
            shard_map = ShardMap(list(nodes), vnodes=args.vnodes)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        payload = shard_map.as_dict()
        if args.digest:
            payload["assignments"] = {
                digest: shard_map.assign(digest) for digest in args.digest
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if args.action != "serve":
        raise AssertionError(f"unhandled fabric action {args.action!r}")

    try:
        config = FabricConfig(
            nodes=nodes,
            host=args.host,
            port=args.port,
            vnodes=args.vnodes,
            hedge_ms=None if args.hedge_ms < 0 else args.hedge_ms,
            timeout_s=args.timeout,
            connect_timeout_s=args.connect_timeout,
            drain_timeout_s=args.drain_timeout,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.dump_config:
        print(json.dumps(config.as_dict(), indent=2, sort_keys=True))
        return 0

    coordinator = FabricCoordinator(config)
    host, port = coordinator.start()
    print(
        f"repro-fabric: coordinating {len(config.nodes)} node(s) on "
        f"{host}:{port} (vnodes {config.vnodes}, hedge "
        f"{'off' if config.hedge_ms is None else f'{config.hedge_ms} ms'})",
        flush=True,
    )
    stop = threading.Event()

    def _graceful(signum, frame):
        coordinator.initiate_drain()
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    stop.wait()
    print("repro-fabric: draining...", flush=True)
    drained = coordinator.drain()
    coordinator.stop()
    if not drained:
        print("repro-fabric: drain timed out; some requests were abandoned", flush=True)
        return 1
    print("repro-fabric: drained cleanly", flush=True)
    return 0


def _format_bytes(count: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{count} B"
        count /= 1024
    return f"{count} B"  # pragma: no cover - unreachable


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.store import RunStore, StoreError

    try:
        store = RunStore(args.cache_dir, create=False)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.action == "stats":
        stats = store.stats()
        print(f"store     : {stats.root}")
        print(
            f"schema    : store v{stats.store_schema}, "
            f"keys v{stats.key_schema}"
        )
        print(
            f"entries   : {stats.entries} "
            f"({_format_bytes(stats.total_bytes)}, "
            f"{stats.with_trace_summary} with trace summaries)"
        )
        for app in sorted(stats.per_app):
            print(f"  {app:<24} {stats.per_app[app]:>8}")
        return 0

    if args.action == "verify":
        problems = store.verify()
        entries = store.stats().entries
        if problems:
            for problem in problems:
                print(f"BAD {problem}")
            print(f"FAILED: {len(problems)} problem entr(y/ies)")
            return 1
        print(f"OK: {entries} entr(y/ies) decode and checksum cleanly")
        return 0

    if args.action == "gc":
        result = store.gc(all_entries=args.all)
        what = "all entries" if args.all else "stale entries"
        print(
            f"gc ({what}): removed {result.removed}, kept {result.kept}, "
            f"reclaimed {_format_bytes(result.reclaimed_bytes)}"
        )
        return 0

    raise AssertionError(f"unhandled cache action {args.action!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EnerPy: approximate data types for Python (EnerJ reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="statically check EnerPy modules")
    check.add_argument("files", nargs="+", help="EnerPy source files")
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json: canonical diagnostics payload on stdout; the exit "
        "code stays 0 iff the modules are well-typed",
    )
    check.set_defaults(fn=cmd_check)

    lint = commands.add_parser(
        "lint",
        help="audit endorsements and suggest @Approx relaxations (ANALYSIS.md)",
    )
    lint.add_argument(
        "apps", nargs="*", help="ported app names, e.g. fft sor (default: all)"
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json: canonical payload, byte-identical across runs",
    )
    lint.add_argument(
        "--no-suggest",
        action="store_true",
        help="skip annotation inference (faster; findings only)",
    )
    lint.add_argument(
        "--baseline-dir",
        metavar="DIR",
        help="compare canonical JSON against DIR/<app>.json and exit "
        "nonzero on drift (the CI analysis lane)",
    )
    lint.add_argument(
        "--write-baselines",
        action="store_true",
        help="write DIR/<app>.json instead of comparing",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan apps across N processes (output identical to serial)",
    )
    lint.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default=None,
        help="exit 2 when any finding at or above this severity is "
        "reported (CI gate; default: findings never affect the exit code)",
    )
    lint.set_defaults(fn=cmd_lint)

    analyze = commands.add_parser(
        "analyze",
        help="static reliability bounds and data placement for app QoS "
        "outputs (ANALYSIS.md)",
    )
    analyze.add_argument(
        "what", choices=("reliability", "placement"), help="analysis to run"
    )
    analyze.add_argument(
        "apps", nargs="*", help="ported app names (default: all)"
    )
    analyze.add_argument(
        "--level",
        action="append",
        choices=("mild", "medium", "aggressive"),
        help="hardware level to analyze (repeatable; default: all three, "
        "except placement --verify which defaults to mild)",
    )
    analyze.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json: canonical payload, byte-identical across runs",
    )
    analyze.add_argument(
        "--verify",
        action="store_true",
        help="reliability: replay traced runs and fail unless observed "
        "fault impact stays within every static bound; placement: "
        "simulate each suggested placement, fail unless the PR-9 "
        "acceptability check passes, and report whether measured energy "
        "beats the all-precise-DRAM placement",
    )
    analyze.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="N",
        help="--verify replays fault seeds 1..N per level (default: 1)",
    )
    analyze.add_argument(
        "--residency",
        choices=("assumed", "profiled"),
        default="assumed",
        help="reliability: DRAM residency charge per array/field — the "
        "conservative 1 s constant, or measured per-container lifetime "
        "spans from one fault-free traced run (desaturates array-heavy "
        "Aggressive bounds; placement always profiles)",
    )
    analyze.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="P",
        help="placement: demote sites until the static per-op corruption "
        "bound of the QoS output is at most P (default: 1e-2)",
    )
    analyze.add_argument(
        "--baseline-dir",
        metavar="DIR",
        help="placement: compare canonical plan JSON against "
        "DIR/<app>.json and exit nonzero on drift (the CI analysis lane)",
    )
    analyze.add_argument(
        "--write-baselines",
        action="store_true",
        help="placement: write DIR/<app>.json instead of comparing",
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan apps across N processes (output identical to serial)",
    )
    analyze.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default=None,
        help="exit 2 on analysis warnings: saturated reliability bounds, "
        "or infeasible/unvalidated placement plans (CI gate)",
    )
    analyze.set_defaults(fn=cmd_analyze)

    run = commands.add_parser("run", help="simulate an EnerPy program")
    run.add_argument("files", nargs="+", help="EnerPy source files")
    run.add_argument("--entry", required=True, help="entry function name")
    run.add_argument("--module", help="module of the entry (default: first file)")
    run.add_argument("--config", choices=sorted(_CONFIGS), default="medium")
    run.add_argument("--seed", type=int, default=0, help="fault seed")
    run.add_argument("--mobile", action="store_true", help="mobile energy split")
    run.add_argument("--quiet-output", action="store_true")
    run.add_argument(
        "--args",
        nargs="*",
        default=[],
        help="entry arguments (parsed as int/float when possible)",
    )
    run.set_defaults(fn=cmd_run)

    census = commands.add_parser("census", help="annotation statistics")
    census.add_argument("files", nargs="+")
    census.set_defaults(fn=cmd_census)

    trace = commands.add_parser(
        "trace",
        help="run a ported app with structured fault/energy tracing",
    )
    trace.add_argument("app", help="application name (e.g. fft, sor, montecarlo)")
    trace.add_argument(
        "--level",
        choices=sorted(_CONFIGS),
        default="medium",
        help="approximation level (default: medium)",
    )
    trace.add_argument("--seed", type=int, default=1, help="first fault seed")
    trace.add_argument(
        "--runs", type=int, default=1, help="number of consecutive fault seeds"
    )
    trace.add_argument("--workload-seed", type=int, default=0)
    trace.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan the traced seeds across N worker processes "
        "(merged traces are bit-identical to serial)",
    )
    trace.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the merged trace as JSONL (meta + events + summary)",
    )
    trace.add_argument(
        "--trace-filter",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="keep only matching events in --trace-out, e.g. "
        "component=sram,dram or kind=dram.decay (repeatable; terms AND)",
    )
    trace.set_defaults(fn=cmd_trace)

    trace_report = commands.add_parser(
        "trace-report", help="summarise a JSONL trace written by 'trace'"
    )
    trace_report.add_argument("file", help="trace file (JSONL)")
    trace_report.add_argument(
        "--top", type=int, default=5, help="sites/bits to list per section"
    )
    trace_report.set_defaults(fn=cmd_trace_report)

    experiments = commands.add_parser(
        "experiments", help="regenerate a paper table/figure"
    )
    experiments.add_argument("name", choices=_EXPERIMENTS)
    experiments.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan the experiment grid across N worker processes "
        "(default: serial; results are bit-identical either way)",
    )
    experiments.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="sweep fault-seed blocks of size N through one batched "
        "simulation each (default: unbatched; results are "
        "bit-identical either way, see DESIGN.md)",
    )
    experiments.add_argument(
        "--recover",
        nargs="?",
        const="selective",
        choices=("selective", "precise"),
        default=None,
        help="guaranteed-quality mode: gate every approximate run "
        "through its acceptability check and re-execute violations "
        "(selective: only the output's approximate slice goes "
        "precise; see RECOVERY.md; mutually exclusive with "
        "--via-service/--via-fleet and --jobs)",
    )
    experiments.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="persistent run store: completed cells are served from "
        "here and fresh runs written through (default: %(default)s)",
    )
    experiments.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the run store entirely for this invocation",
    )
    experiments.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted campaign: require an existing "
        "store at --cache-dir, then skip every completed cell "
        "(results are bit-identical to an uninterrupted run)",
    )
    experiments.add_argument(
        "--via-service",
        metavar="HOST:PORT",
        default=None,
        help="route QoS queries through a running 'repro serve' daemon "
        "(bit-identical results; see SERVICE.md)",
    )
    experiments.add_argument(
        "--via-fleet",
        metavar="HOST:PORT",
        default=None,
        help="route QoS queries through a running 'repro fabric serve' "
        "coordinator; if the fleet is lost mid-campaign the remaining "
        "cells execute locally (bit-identical either way; see FABRIC.md)",
    )
    experiments.set_defaults(fn=cmd_experiments)

    cache = commands.add_parser(
        "cache", help="inspect or prune the persistent run store"
    )
    cache.add_argument(
        "action",
        choices=("stats", "gc", "verify"),
        help="stats: entry counts and sizes; verify: decode + checksum "
        "every entry; gc: drop entries invalidated by source changes",
    )
    cache.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="run store location (default: %(default)s)",
    )
    cache.add_argument(
        "--all",
        action="store_true",
        help="gc only: remove every entry, not just stale ones",
    )
    cache.set_defaults(fn=cmd_cache)

    serve = commands.add_parser(
        "serve",
        help="run the long-lived simulation daemon (see SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=_DEFAULT_SERVICE_PORT,
        help="TCP port (0 binds an ephemeral port; default: %(default)s)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="resident warm worker processes (default: %(default)s)",
    )
    serve.add_argument(
        "--queue-bound",
        type=int,
        default=64,
        metavar="N",
        help="admission-queue depth; requests beyond it are rejected "
        "with a backpressure error (default: %(default)s)",
    )
    serve.add_argument(
        "--default-deadline-ms",
        type=int,
        default=30_000,
        metavar="MS",
        help="deadline for requests that carry none; 0 disables "
        "(default: %(default)s)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="SIGTERM shutdown: seconds to wait for queued and "
        "in-flight requests (default: %(default)s)",
    )
    serve.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="run store served inline on hits and written through on "
        "misses (default: %(default)s)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without a run store (every request executes)",
    )
    serve.add_argument(
        "--warm-apps",
        default="all",
        metavar="NAMES",
        help="comma-separated apps to compile once at boot, 'all' or "
        "'none' (default: %(default)s)",
    )
    serve.add_argument(
        "--dump-config",
        action="store_true",
        help="print the effective service config as JSON and exit "
        "(for reproducible deployments)",
    )
    serve.set_defaults(fn=cmd_serve)

    submit = commands.add_parser(
        "submit",
        help="send QoS queries to a running simulation daemon",
    )
    submit.add_argument("app", help="application name (e.g. fft, sor, montecarlo)")
    submit.add_argument(
        "--level",
        choices=("aggressive", "baseline", "medium", "mild", "software"),
        default=None,
        help="approximation level (default: medium; mutually exclusive "
        "with --qos-budget)",
    )
    submit.add_argument(
        "--qos-budget",
        type=float,
        default=None,
        metavar="Q",
        help="QoS error budget: the daemon's online tuner picks the "
        "approximation levels (protocol v2; mutually exclusive with "
        "--level and --seed)",
    )
    submit.add_argument(
        "--seed", type=int, default=None, help="first fault seed (default: 1)"
    )
    submit.add_argument(
        "--runs",
        type=int,
        default=1,
        metavar="N",
        help="consecutive fault seeds submitted as one batch (under "
        "--qos-budget: consecutive budget requests)",
    )
    submit.add_argument("--workload-seed", type=int, default=None)
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=_DEFAULT_SERVICE_PORT)
    submit.add_argument(
        "--fleet",
        metavar="HOST:PORT",
        default=None,
        help="submit to a 'repro fabric serve' coordinator instead of a "
        "single daemon (overrides --host/--port; same wire protocol)",
    )
    submit.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        metavar="MS",
        help="per-request deadline; 0 explicitly disables the daemon's "
        "default deadline (default: the daemon's)",
    )
    submit.add_argument(
        "--recover",
        nargs="?",
        const="selective",
        choices=("selective", "precise"),
        default=None,
        help="guaranteed-quality submit (protocol v3): the daemon "
        "checks each output and re-executes violations before "
        "answering (see RECOVERY.md; mutually exclusive with "
        "--qos-budget and --trace-summary)",
    )
    submit.add_argument(
        "--trace-summary",
        action="store_true",
        help="also request the compact trace summary per run",
    )
    submit.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    submit.set_defaults(fn=cmd_submit)

    tune = commands.add_parser(
        "tune",
        help="online autotuner: energy-vs-guaranteed-quality frontier "
        "per app (see SERVICE.md)",
    )
    tune.add_argument(
        "apps", nargs="*", help="ported app names, e.g. fft sor (default: all)"
    )
    tune.add_argument(
        "--budget",
        action="append",
        type=float,
        metavar="Q",
        help="QoS error budget to converge under (repeatable; default "
        "ladder: 0.01 0.02 0.05 0.10)",
    )
    tune.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json: canonical frontier payload, byte-identical across runs",
    )
    tune.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="persistent run store backing the tuner's probes "
        "(default: %(default)s)",
    )
    tune.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the run store (every probe simulates)",
    )
    tune.set_defaults(fn=cmd_tune)

    recover = commands.add_parser(
        "recover",
        help="quality-recovery runtime: checked execution with "
        "selective precise re-execution (see RECOVERY.md)",
    )
    recover.add_argument(
        "action",
        choices=("frontier",),
        help="frontier: sweep the Table 2 levels per app, reporting "
        "the energy cost of guaranteed quality next to the raw "
        "best-effort QoS",
    )
    recover.add_argument(
        "apps", nargs="*", help="ported app names, e.g. fft sor (default: all)"
    )
    recover.add_argument(
        "--runs",
        type=int,
        default=10,
        metavar="N",
        help="fault seeds per (app, level) cell (default: %(default)s)",
    )
    recover.add_argument(
        "--mode",
        choices=("selective", "precise"),
        default="selective",
        help="retry policy on violation: selective re-executes only "
        "the output's approximate slice precisely; precise disables "
        "every mechanism (default: %(default)s)",
    )
    recover.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json: canonical frontier payload, byte-identical across runs",
    )
    recover.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="persistent run store backing attempts and retries "
        "(default: %(default)s)",
    )
    recover.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the run store (every attempt and retry simulates)",
    )
    recover.set_defaults(fn=cmd_recover)

    fabric = commands.add_parser(
        "fabric",
        help="coordinate a fleet of simulation daemons (see FABRIC.md)",
    )
    fabric.add_argument(
        "action",
        choices=("serve", "shards"),
        help="serve: run the campaign coordinator; shards: print the "
        "consistent-hash shard map for a node list (no network)",
    )
    fabric.add_argument(
        "--node",
        action="append",
        metavar="HOST:PORT",
        help="a fleet daemon's address (repeat once per node)",
    )
    fabric.add_argument("--host", default="127.0.0.1")
    fabric.add_argument(
        "--port",
        type=int,
        default=_DEFAULT_FABRIC_PORT,
        help="coordinator TCP port (0 binds an ephemeral port; "
        "default: %(default)s)",
    )
    fabric.add_argument(
        "--vnodes",
        type=int,
        default=_DEFAULT_VNODES,
        metavar="N",
        help="ring points per node; more points = finer keyspace "
        "balance (default: %(default)s)",
    )
    fabric.add_argument(
        "--hedge-ms",
        type=int,
        default=15_000,
        metavar="MS",
        help="straggler deadline before a group re-dispatches to the "
        "ring successor; 0 hedges immediately, negative disables "
        "(default: %(default)s)",
    )
    fabric.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="per-dispatch ceiling before items fail fleet_unavailable "
        "(default: %(default)s)",
    )
    fabric.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        metavar="S",
        help="per-node connect budget at boot; an unreachable node is "
        "a hard error (default: %(default)s)",
    )
    fabric.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="SIGTERM shutdown: seconds to wait for in-flight "
        "dispatches (default: %(default)s)",
    )
    fabric.add_argument(
        "--digest",
        action="append",
        metavar="SHA256",
        help="shards only: also print the home node of each digest "
        "(repeatable)",
    )
    fabric.add_argument(
        "--dump-config",
        action="store_true",
        help="print the effective fabric config as JSON and exit",
    )
    fabric.set_defaults(fn=cmd_fabric)

    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
