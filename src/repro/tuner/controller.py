"""The online per-app QoS controller and the daemon-side bank of them.

An :class:`OnlineTuner` answers one question, one budget request at a
time: *which level vector should this request run at?*  It is a
deterministic state machine over :class:`~repro.tuner.state.TunerState`
driven purely by observed QoS feedback:

* **Explore** — candidates are the single-step upgrades of the
  committed vector (:func:`~repro.tuner.search.candidate_upgrades`),
  ordered by estimated energy gain from one baseline profile.  A
  candidate whose static reliability bound saturates is **pruned
  before any simulation** (it certifies nothing; see
  :func:`~repro.tuner.search.levels_bound`); the survivor with the
  best energy gain becomes the trial.  Each budget request samples the
  trial once (fault seed = sample index + 1, the same seed schedule as
  ``mean_qos``, so trial verdicts agree with the offline tuner's);
  after :data:`TRIAL_SAMPLES` samples the trial commits if its mean is
  within budget and is rejected otherwise.  No admissible candidates
  left => **converged**, enter steady.
* **Steady** — requests run the committed vector over a cycling seed
  window (:data:`SEED_CYCLE` wide, so a warm store serves the steady
  state from cache).  **Hysteresis**: one bad fault draw changes
  nothing; only :data:`VIOLATION_STREAK` consecutive over-budget
  observations step the largest static-bound contributor down one
  level.  Conversely, :data:`RELAX_STREAK` consecutive observations
  with at least 2x headroom clear the rejected set and re-enter
  explore — the "tightened/relaxed from observed QoS" loop.

Every transition is a pure function of (state, observation), so a
replica that replays the same feedback reproduces every state digest
bit-identically — which is what lets the fabric replicate controller
state with plain ``store_push``/``store_pull`` and adopt whichever
snapshot has seen more observations.

The :class:`TunerBank` is the daemon-side registry: one controller per
(app, budget) identity, a lock per controller (budget requests for one
app serialise on it — controller state is not idempotent, unlike
key-addressed runs), and the install/lookup surface the replication
path uses.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Dict, Optional, Tuple

from repro.apps import AppSpec, app_by_name
from repro.tuner.search import (
    MAX_LEVEL,
    TUNABLE,
    candidate_upgrades,
    levels_bound,
    levels_energy,
)
from repro.tuner.state import (
    PHASE_EXPLORE,
    PHASE_STEADY,
    TunerState,
)

__all__ = [
    "TRIAL_SAMPLES",
    "VIOLATION_STREAK",
    "RELAX_STREAK",
    "RELAX_MARGIN",
    "SEED_CYCLE",
    "OnlineTuner",
    "TunerBank",
]

#: QoS samples per trial before a commit/reject verdict.
TRIAL_SAMPLES = 3

#: Consecutive over-budget steady observations before a step-down.
VIOLATION_STREAK = 3

#: Consecutive steady observations with >= 2x headroom before the
#: rejected set clears and exploration resumes.
RELAX_STREAK = 16

#: "Headroom" means observed QoS at or below this fraction of budget.
RELAX_MARGIN = 0.5

#: Steady-phase fault seeds cycle over this window so a warm store
#: serves the steady state from cache instead of running forever.
SEED_CYCLE = 16

_ENERGY_EPS = 1e-9


class OnlineTuner:
    """One app's online controller (see the module docstring).

    ``graph`` and ``baseline_stats`` are derivable from ``spec`` and
    are only injectable to share work across controllers; they carry no
    decision state.  ``prune=False`` disables static-bound pruning and
    exists so tests can quantify what pruning saves.

    ``mechanisms`` restricts exploration to the named strategies — pass
    the string ``"placement"`` to derive the restriction from the
    data-placement analysis (mechanisms with no approximate state in
    the QoS output's cone never earn a trial).  Opt-in: the default
    ``None`` explores all of :data:`~repro.tuner.search.TUNABLE`, so
    existing digest trails are unchanged.
    """

    def __init__(
        self,
        spec: AppSpec,
        qos_budget: float,
        state: Optional[TunerState] = None,
        graph=None,
        baseline_stats=None,
        trial_samples: int = TRIAL_SAMPLES,
        max_level: int = MAX_LEVEL,
        prune: bool = True,
        mechanisms=None,
    ) -> None:
        self.spec = spec
        self.qos_budget = float(qos_budget)
        self.trial_samples = trial_samples
        self.max_level = max_level
        self.prune = prune
        self._mechanisms = mechanisms
        #: Serialises budget requests against this controller.
        self.lock = threading.RLock()
        self._graph = graph
        self._stats = baseline_stats
        self._bound_memo: Dict[Tuple[int, ...], object] = {}
        if state is None:
            state = TunerState(
                app=spec.name,
                source_digest=self._source_digest(),
                qos_budget=self.qos_budget,
                committed=(0,) * len(TUNABLE),
            )
            state = self._select_trial(state, None)
        self.state = state

    # ------------------------------------------------------------------
    # Derived, deterministic context (no decision state lives here)
    # ------------------------------------------------------------------
    def _source_digest(self) -> str:
        from repro.experiments.runkey import source_digest

        return source_digest(self.spec)

    def baseline_stats(self):
        if self._stats is None:
            from repro.experiments.harness import run_key
            from repro.experiments.runkey import RunKey
            from repro.hardware.config import BASELINE

            self._stats = run_key(
                RunKey(spec=self.spec, config=BASELINE, fault_seed=0, workload_seed=0)
            ).stats
        return self._stats

    def _flow_graph(self):
        if self._graph is None:
            from repro.analysis.reliability import app_flow_graph

            self._graph = app_flow_graph(self.spec)
        return self._graph

    def mechanism_restriction(self):
        """The resolved mechanism restriction (``None`` = unrestricted)."""
        if self._mechanisms == "placement":
            from repro.analysis.placement import placement_mechanisms
            from repro.analysis.reliability import app_output_id

            self._mechanisms = placement_mechanisms(
                self._flow_graph(), app_output_id(self.spec)
            )
        if self._mechanisms is None:
            return None
        return frozenset(self._mechanisms)

    def bound_for(self, levels: Dict[str, int]):
        """Memoised static reliability bound of a level vector."""
        key = tuple(levels[s] for s in TUNABLE)
        bound = self._bound_memo.get(key)
        if bound is None:
            from repro.analysis.reliability import app_output_id

            bound = levels_bound(self._flow_graph(), app_output_id(self.spec), levels)
            self._bound_memo[key] = bound
        return bound

    # ------------------------------------------------------------------
    # The probe surface the daemon drives
    # ------------------------------------------------------------------
    def next_probe(self) -> Tuple[Dict[str, int], int, int]:
        """(levels, fault_seed, workload_seed) for the next observation.

        A pure function of the current state: explore probes sample the
        trial vector on the ``mean_qos`` seed schedule (sample k =>
        fault seed k+1); steady probes cycle the committed vector over
        the :data:`SEED_CYCLE` window.
        """
        state = self.state
        if state.phase == PHASE_EXPLORE and state.trial is not None:
            return state.trial_dict(), len(state.trial_samples) + 1, 0
        return state.levels_dict(), (state.observations % SEED_CYCLE) + 1, 0

    def observe(self, qos: float) -> Dict[str, int]:
        """Feed one observed QoS error; advances the state machine.

        Returns the event counts of this transition (the daemon turns
        them into ``tuner.*`` metrics): commits, rejections, pruned,
        backoffs, relaxes, converged, violations.
        """
        events = {
            "commits": 0,
            "rejections": 0,
            "pruned": 0,
            "backoffs": 0,
            "relaxes": 0,
            "converged": 0,
            "violations": 0,
        }
        state = self.state
        replace = dataclasses.replace
        if state.phase == PHASE_EXPLORE and state.trial is not None:
            samples = state.trial_samples + (float(qos),)
            state = replace(
                state, observations=state.observations + 1, trial_samples=samples
            )
            if float(qos) > state.qos_budget:
                events["violations"] = 1
            if len(samples) >= self.trial_samples:
                mean = sum(samples) / len(samples)
                trial = state.trial
                mechanism = self._trial_mechanism(state)
                state = replace(
                    state, explored=state.explored + 1, trial=None, trial_samples=()
                )
                if mean <= state.qos_budget:
                    state = replace(state, committed=trial)
                    events["commits"] = 1
                else:
                    state = self._reject(state, mechanism, trial)
                    events["rejections"] = 1
                state = self._select_trial(state, events)
        else:
            state = replace(state, observations=state.observations + 1)
            if float(qos) > state.qos_budget:
                events["violations"] = 1
                streak = state.violation_streak + 1
                if streak >= VIOLATION_STREAK:
                    state = self._step_down(state)
                    events["backoffs"] = 1
                    streak = 0
                state = replace(state, violation_streak=streak, headroom_streak=0)
            else:
                headroom = (
                    state.headroom_streak + 1
                    if float(qos) <= state.qos_budget * RELAX_MARGIN
                    else 0
                )
                if headroom >= RELAX_STREAK and state.rejected:
                    state = replace(
                        state,
                        rejected=(),
                        phase=PHASE_EXPLORE,
                        converged=False,
                        violation_streak=0,
                        headroom_streak=0,
                    )
                    events["relaxes"] = 1
                    state = self._select_trial(state, events)
                else:
                    state = replace(
                        state, violation_streak=0, headroom_streak=headroom
                    )
        self.state = state
        return events

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    @staticmethod
    def _trial_mechanism(state: TunerState) -> str:
        """The one mechanism the trial vector upgrades."""
        for index, strategy in enumerate(TUNABLE):
            if state.trial[index] != state.committed[index]:
                return strategy
        raise AssertionError("trial vector equals the committed vector")

    @staticmethod
    def _reject(state: TunerState, mechanism: str, trial: Tuple[int, ...]) -> TunerState:
        level = trial[TUNABLE.index(mechanism)]
        rejected = tuple(sorted(set(state.rejected) | {(mechanism, level)}))
        return dataclasses.replace(state, rejected=rejected)

    def _select_trial(self, state: TunerState, events) -> TunerState:
        """Pick the next trial (or converge): the admissible single-step
        upgrade with the best estimated energy, static-bound pruned."""
        stats = self.baseline_stats()
        committed = dict(zip(TUNABLE, state.committed))
        current_energy = levels_energy(stats, committed)
        ruled_out = set(state.rejected)
        newly_ruled_out = []
        pruned_now = 0
        best = None  # (energy, strategy, candidate levels tuple)
        for strategy, candidate in candidate_upgrades(
            committed, self.max_level, self.mechanism_restriction()
        ):
            target = (strategy, candidate[strategy])
            if target in ruled_out:
                continue
            energy = levels_energy(stats, candidate)
            if energy >= current_energy - _ENERGY_EPS:
                # No energy benefit (e.g. no FP work): raising the
                # level only adds error.  Permanently out.
                newly_ruled_out.append(target)
                ruled_out.add(target)
                continue
            if self.prune and self.bound_for(candidate).saturated:
                newly_ruled_out.append(target)
                ruled_out.add(target)
                pruned_now += 1
                continue
            if best is None or energy < best[0]:
                best = (energy, strategy, tuple(candidate[s] for s in TUNABLE))
        if newly_ruled_out:
            state = dataclasses.replace(
                state,
                rejected=tuple(sorted(set(state.rejected) | set(newly_ruled_out))),
                pruned=state.pruned + pruned_now,
            )
            if events is not None:
                events["pruned"] += pruned_now
        if best is None:
            freshly_converged = not state.converged
            state = dataclasses.replace(
                state,
                phase=PHASE_STEADY,
                converged=True,
                trial=None,
                trial_samples=(),
            )
            if events is not None and freshly_converged:
                events["converged"] = 1
            return state
        return dataclasses.replace(
            state, phase=PHASE_EXPLORE, trial=best[2], trial_samples=()
        )

    def _step_down(self, state: TunerState) -> TunerState:
        """Hysteresis step-down: demote the largest bound contributor.

        Deterministic victim choice: among mechanisms above level 0,
        the one whose static-bound share at the committed vector is
        largest (ties break in TUNABLE order); its vacated level is
        marked rejected so exploration does not immediately re-commit
        it.
        """
        committed = dict(zip(TUNABLE, state.committed))
        if all(level == 0 for level in state.committed):
            return state  # nothing left to demote; budget is infeasible
        bound = self.bound_for(committed)
        shares = bound.by_mechanism if bound is not None else {}
        victim = max(
            (s for s in TUNABLE if committed[s] > 0),
            key=lambda s: (self._mechanism_share(shares, s), -TUNABLE.index(s)),
        )
        old_level = committed[victim]
        committed[victim] = old_level - 1
        rejected = tuple(sorted(set(state.rejected) | {(victim, old_level)}))
        return dataclasses.replace(
            state,
            committed=tuple(committed[s] for s in TUNABLE),
            rejected=rejected,
        )

    @staticmethod
    def _mechanism_share(shares: Dict[str, float], strategy: str) -> float:
        """Bound share attributed to one tunable mechanism.

        The bound reports per *fault mechanism* (``dram``, ``sram_read``,
        ``sram_write``, ``timing`` ...); fold the SRAM pair into the one
        SRAM knob.
        """
        if strategy == "sram":
            return shares.get("sram_read", 0.0) + shares.get("sram_write", 0.0)
        if strategy == "float_width":
            return 0.0  # mantissa truncation is deterministic, not in the bound
        return shares.get(strategy, 0.0)

    # ------------------------------------------------------------------
    def info(self) -> Dict[str, object]:
        """The ``tuner`` block budget responses carry (wire-safe)."""
        state = self.state
        return {
            "identity": state.identity,
            "state_digest": state.digest,
            "phase": state.phase,
            "committed": state.levels_dict(),
            "observations": state.observations,
            "explored": state.explored,
            "pruned": state.pruned,
            "converged": state.converged,
        }


class TunerBank:
    """Daemon-side registry of controllers, keyed by state identity.

    ``on_event(name, amount)`` receives ``tuner.*`` counter increments
    (catalogued in :mod:`repro.tuner.catalog`); the daemon points it at
    its metrics registry.
    """

    def __init__(self, on_event: Optional[Callable[[str, int], None]] = None) -> None:
        self._lock = threading.Lock()
        self._tuners: Dict[str, OnlineTuner] = {}
        self._on_event = on_event or (lambda name, amount: None)

    def obtain(self, spec: AppSpec, qos_budget: float) -> OnlineTuner:
        """The controller for (app, budget), created on first use."""
        with self._lock:
            for tuner in self._tuners.values():
                if tuner.spec.name == spec.name and tuner.qos_budget == float(qos_budget):
                    return tuner
        tuner = OnlineTuner(spec, qos_budget)
        with self._lock:
            existing = self._tuners.get(tuner.state.identity)
            if existing is not None:
                return existing
            self._tuners[tuner.state.identity] = tuner
        self._on_event("tuner.controllers", 1)
        return tuner

    def state_payload(self, digest: str) -> Optional[Dict[str, object]]:
        """The wire payload of the controller whose *current* state has
        this digest (the ``store_pull`` lookup), or ``None``."""
        with self._lock:
            tuners = list(self._tuners.values())
        for tuner in tuners:
            with tuner.lock:
                if tuner.state.digest == digest:
                    return tuner.state.to_payload()
        return None

    def install(self, payload: object) -> bool:
        """Adopt a replicated controller state (the ``store_push`` path).

        Validation failures return ``False`` (never raise — the push
        answer is ``stored: false``).  An incoming snapshot is adopted
        when no controller exists for its identity, or when it has seen
        strictly more observations than the local one (the replica that
        answered requests is ahead); otherwise the local state wins.
        ``True`` means the daemon now holds a state at least as fresh
        as the pushed one.
        """
        try:
            state = TunerState.from_payload(payload)
            spec = app_by_name(state.app)
        except (ValueError, KeyError):
            return False
        with self._lock:
            existing = self._tuners.get(state.identity)
        if existing is None:
            tuner = OnlineTuner(spec, state.qos_budget, state=state)
            if tuner.state.source_digest != tuner._source_digest():
                return False  # state from different app sources; stale
            with self._lock:
                race = self._tuners.get(state.identity)
                if race is None:
                    self._tuners[state.identity] = tuner
                    installed = True
                else:
                    existing, installed = race, False
            if installed:
                self._on_event("tuner.controllers", 1)
                self._on_event("tuner.state_installs", 1)
                return True
        with existing.lock:
            if state.observations > existing.state.observations:
                existing.state = state
                self._on_event("tuner.state_installs", 1)
                return True
            return existing.state.observations >= state.observations

    def identities(self) -> Dict[str, Dict[str, object]]:
        """identity digest -> info block, for introspection payloads."""
        with self._lock:
            tuners = list(self._tuners.items())
        payload = {}
        for identity, tuner in sorted(tuners):
            with tuner.lock:
                payload[identity] = tuner.info()
        return payload
