"""Deterministic, content-addressed controller state.

A :class:`TunerState` is the *entire* decision state of one online
controller: the committed level vector, the trial in flight, the
samples it has collected, every candidate ruled out and why-streaks for
hysteresis.  It is a frozen value object whose :attr:`TunerState.digest`
is a SHA-256 over the canonical JSON of every field — keyed exactly
like a :class:`~repro.experiments.runkey.RunKey` digest is keyed:

* anchored to the app's **source digest**, so a controller state never
  survives an app edit (the QoS landscape it learned is stale);
* a pure function of the observation sequence, so replaying the same
  QoS feedback from the same initial state reproduces every digest
  bit-identically (the fabric replicates these states between nodes and
  relies on this to compare them);
* versioned by :data:`TUNER_STATE_SCHEMA_VERSION`, bumped whenever a
  field changes meaning.

The wire form (:meth:`TunerState.to_payload` /
:meth:`TunerState.from_payload`) is self-validating — kind, schema and
recomputed digest are all checked on install — and travels over the
same ``store_push``/``store_pull`` ops as run-store entries (the
daemon routes on the ``kind`` marker; see SERVICE.md).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Dict, Optional, Tuple

from repro.tuner.search import TUNABLE

__all__ = [
    "TUNER_STATE_SCHEMA_VERSION",
    "TUNER_STATE_KIND",
    "PHASE_EXPLORE",
    "PHASE_STEADY",
    "TunerState",
]

#: Bump whenever a field of :class:`TunerState` changes meaning; old
#: states then fail installation instead of silently misbehaving.
TUNER_STATE_SCHEMA_VERSION = 1

#: The ``kind`` marker distinguishing a controller state from a run
#: entry on the ``store_push``/``store_pull`` wire.
TUNER_STATE_KIND = "tuner_state"

PHASE_EXPLORE = "explore"
PHASE_STEADY = "steady"


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass(frozen=True)
class TunerState:
    """One controller's complete decision state (immutable snapshot)."""

    app: str
    #: The app's source digest at state creation (RunKey anchoring).
    source_digest: str
    qos_budget: float
    #: Committed level per mechanism, index-aligned with TUNABLE.
    committed: Tuple[int, ...]
    phase: str = PHASE_EXPLORE
    #: The level vector under trial (None outside a trial).
    trial: Optional[Tuple[int, ...]] = None
    #: QoS samples collected for the current trial.
    trial_samples: Tuple[float, ...] = ()
    #: ``(mechanism, level)`` pairs ruled out — by measurement, by the
    #: static bound (pruned), or for lack of energy benefit.  Sorted.
    rejected: Tuple[Tuple[str, int], ...] = ()
    violation_streak: int = 0
    headroom_streak: int = 0
    #: Total QoS observations consumed (the feedback-round counter).
    observations: int = 0
    #: Trial configurations actually simulated to a verdict.
    explored: int = 0
    #: Candidates pruned by a saturated static bound (never simulated).
    pruned: int = 0
    converged: bool = False
    schema: int = TUNER_STATE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not isinstance(self.qos_budget, float) or not math.isfinite(self.qos_budget):
            raise ValueError("qos_budget must be a finite float")
        if self.qos_budget <= 0:
            raise ValueError("qos_budget must be positive")
        if len(self.committed) != len(TUNABLE):
            raise ValueError(f"committed must have {len(TUNABLE)} levels")
        if self.phase not in (PHASE_EXPLORE, PHASE_STEADY):
            raise ValueError(f"unknown phase {self.phase!r}")

    # ------------------------------------------------------------------
    @property
    def identity(self) -> str:
        """The controller identity digest: one per (app, budget, schema).

        This is what budget requests shard on in the fabric — it must
        not change as the state advances, so only the immutable fields
        are folded in.
        """
        material = {
            "kind": TUNER_STATE_KIND,
            "schema": self.schema,
            "app": self.app,
            "source": self.source_digest,
            "qos_budget": self.qos_budget,
        }
        return hashlib.sha256(_canonical(material).encode("utf-8")).hexdigest()

    @property
    def digest(self) -> str:
        """The content digest of this exact snapshot (all fields)."""
        return hashlib.sha256(_canonical(self._state_dict()).encode("utf-8")).hexdigest()

    def levels_dict(self) -> Dict[str, int]:
        """The committed vector as a mechanism -> level mapping."""
        return dict(zip(TUNABLE, self.committed))

    def trial_dict(self) -> Optional[Dict[str, int]]:
        if self.trial is None:
            return None
        return dict(zip(TUNABLE, self.trial))

    # ------------------------------------------------------------------
    def _state_dict(self) -> Dict[str, object]:
        return {
            "kind": TUNER_STATE_KIND,
            "schema": self.schema,
            "app": self.app,
            "source_digest": self.source_digest,
            "qos_budget": self.qos_budget,
            "committed": list(self.committed),
            "phase": self.phase,
            "trial": list(self.trial) if self.trial is not None else None,
            "trial_samples": list(self.trial_samples),
            "rejected": [list(pair) for pair in self.rejected],
            "violation_streak": self.violation_streak,
            "headroom_streak": self.headroom_streak,
            "observations": self.observations,
            "explored": self.explored,
            "pruned": self.pruned,
            "converged": self.converged,
        }

    def to_payload(self) -> Dict[str, object]:
        """The self-validating wire form (``store_push`` entry)."""
        return {
            "kind": TUNER_STATE_KIND,
            "schema": self.schema,
            "digest": self.digest,
            "state": self._state_dict(),
        }

    @classmethod
    def from_payload(cls, payload: object) -> "TunerState":
        """Parse and validate a wire payload; raises :class:`ValueError`.

        The digest is recomputed over the carried state and must match
        the carried digest — a corrupt or tampered payload is refused
        rather than installed.
        """
        if not isinstance(payload, dict):
            raise ValueError("tuner-state payload must be an object")
        if payload.get("kind") != TUNER_STATE_KIND:
            raise ValueError(f"not a tuner state (kind={payload.get('kind')!r})")
        if payload.get("schema") != TUNER_STATE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported tuner-state schema {payload.get('schema')!r} "
                f"(expected {TUNER_STATE_SCHEMA_VERSION})"
            )
        raw = payload.get("state")
        if not isinstance(raw, dict):
            raise ValueError("missing or invalid 'state'")
        try:
            state = cls(
                app=raw["app"],
                source_digest=raw["source_digest"],
                qos_budget=float(raw["qos_budget"]),
                committed=tuple(int(level) for level in raw["committed"]),
                phase=raw["phase"],
                trial=(
                    tuple(int(level) for level in raw["trial"])
                    if raw.get("trial") is not None
                    else None
                ),
                trial_samples=tuple(float(q) for q in raw["trial_samples"]),
                rejected=tuple(
                    (str(mechanism), int(level)) for mechanism, level in raw["rejected"]
                ),
                violation_streak=int(raw["violation_streak"]),
                headroom_streak=int(raw["headroom_streak"]),
                observations=int(raw["observations"]),
                explored=int(raw["explored"]),
                pruned=int(raw["pruned"]),
                converged=bool(raw["converged"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed tuner state: {exc}") from exc
        expected = payload.get("digest")
        if state.digest != expected:
            raise ValueError(
                f"tuner-state digest mismatch: carried {expected!r}, "
                f"recomputed {state.digest}"
            )
        return state
