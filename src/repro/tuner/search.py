"""The coordinate-search core shared by the offline and online tuners.

Both tuners explore the same space: a per-mechanism level vector over
the four tunable approximation mechanisms (DRAM refresh, SRAM voltage,
FP width, ALU voltage), each at one of the Table 2 ladder levels
(off/Mild/Medium/Aggressive).  This module owns the pieces they share:

* :func:`compose_config` — a level vector as a heterogeneous
  :class:`~repro.hardware.config.HardwareConfig` (e.g. Aggressive DRAM
  with Mild functional units, which no uniform Table 2 level can
  express);
* :func:`candidate_upgrades` — the single-step neighbourhood a
  coordinate search explores from a committed vector;
* :func:`levels_energy` — the estimated normalised energy of a vector
  (the search's preference order), from one baseline profile;
* :func:`levels_bound` — the static reliability bound (PR 5) of a
  vector, which lets a tuner prune candidates that carry **no
  certifiable guarantee** (a saturated bound) before spending any
  simulation on them.

:mod:`repro.experiments.autotune` (offline, profile-driven) and
:mod:`repro.tuner.controller` (online, request-driven) are both thin
drivers over these primitives, so their decisions agree wherever their
feedback does.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.energy.model import SERVER, estimate_energy
from repro.hardware.config import (
    AGGRESSIVE,
    BASELINE,
    MEDIUM,
    MILD,
    HardwareConfig,
)
from repro.runtime.stats import RunStats

__all__ = [
    "LEVELS",
    "LEVEL_NAMES",
    "TUNABLE",
    "MAX_LEVEL",
    "STRATEGY_FIELDS",
    "compose_config",
    "candidate_upgrades",
    "levels_energy",
    "levels_bound",
]

#: Level ladder indexed by the tuners (0 = off).
LEVELS = (BASELINE, MILD, MEDIUM, AGGRESSIVE)

#: Short display names, index-aligned with :data:`LEVELS`.
LEVEL_NAMES = ("off", "mild", "med", "aggr")

#: Tunable mechanisms.  Unlike the ablation study's five strategies,
#: SRAM read upsets and write failures are one knob here: both are
#: consequences of the same supply-voltage reduction, so a config with
#: them at different levels is not physically realisable.
TUNABLE = ("dram", "sram", "float_width", "timing")

#: Highest level index (Aggressive).
MAX_LEVEL = len(LEVELS) - 1

#: Which HardwareConfig fields each mechanism controls.
STRATEGY_FIELDS = {
    "dram": ("dram_flip_per_second", "dram_power_saving"),
    "sram": ("sram_read_upset", "sram_write_failure", "sram_power_saving"),
    "float_width": ("float_mantissa_bits", "double_mantissa_bits", "fp_op_saving"),
    "timing": ("timing_error_prob", "int_op_saving"),
}


def compose_config(levels: Dict[str, int], name: str = "tuned") -> HardwareConfig:
    """Build a heterogeneous config from per-mechanism level indices."""
    fields = dataclasses.asdict(BASELINE)
    for strategy, level_index in levels.items():
        source = LEVELS[level_index]
        for field_name in STRATEGY_FIELDS[strategy]:
            # A mechanism at a higher level may not *lower* a shared
            # saving another mechanism already raised (sram_read and
            # sram_write share the supply-power saving).
            value = getattr(source, field_name)
            if field_name.endswith("_saving"):
                fields[field_name] = max(fields[field_name], value)
            else:
                fields[field_name] = value
    fields["name"] = name
    return HardwareConfig(**fields)


def candidate_upgrades(
    levels: Dict[str, int],
    max_level: int = MAX_LEVEL,
    mechanisms: Optional[Set[str]] = None,
) -> Iterator[Tuple[str, Dict[str, int]]]:
    """Every single-step upgrade of one mechanism, in TUNABLE order.

    Yields ``(strategy, candidate_levels)`` pairs; the deterministic
    order is what makes both tuners' tie-breaking reproducible.

    ``mechanisms`` restricts the neighbourhood to the named strategies
    (``None`` leaves all of :data:`TUNABLE` open).  The data-placement
    analysis derives such a restriction statically — a mechanism with no
    approximate state in the QoS output's dependency cone can neither
    change the output nor buy energy on it, so pruning its ladder before
    any simulation is free (see
    :func:`repro.analysis.placement.placement_mechanisms`).
    """
    for strategy in TUNABLE:
        if mechanisms is not None and strategy not in mechanisms:
            continue
        if levels.get(strategy, 0) >= max_level:
            continue
        candidate = dict(levels)
        candidate[strategy] = candidate.get(strategy, 0) + 1
        yield strategy, candidate


def levels_energy(stats: RunStats, levels: Dict[str, int]) -> float:
    """Estimated normalised energy of a level vector (1.0 = precise).

    ``stats`` is one baseline run profile of the app; the estimate is
    the search's preference order, the *measured* QoS its gatekeeper.
    """
    return estimate_energy(stats, compose_config(levels), SERVER).total


def levels_bound(graph, output_id: str, levels: Dict[str, int]):
    """The static reliability bound (PR 5) of a composed level vector.

    Returns a :class:`~repro.analysis.reliability.ReliabilityBound`.  A
    *saturated* bound (>= 1.0) certifies nothing: the tuners treat such
    a vector as provably outside any SLO guarantee and prune it before
    simulation — sound in the only direction that matters, because the
    bound over-approximates the per-op corruption probability.
    """
    from repro.analysis.reliability import reliability_bound

    return reliability_bound(graph, output_id, compose_config(levels))
