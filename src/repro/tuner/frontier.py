"""The energy-vs-guaranteed-quality frontier (``repro tune``).

Drives an :class:`~repro.tuner.controller.OnlineTuner` to convergence
for each budget on a ladder, entirely locally: each probe the
controller proposes is executed through the ordinary harness (store
hits apply, so reruns are warm), its QoS error fed back, and the
converged point recorded.  A frontier point couples:

* the **measured** mean QoS error of the converged vector (the budget
  the controller actually holds), and
* the **guaranteed** quality — the static reliability bound of that
  vector (PR 5), which is sound: a certifiable point's per-op
  corruption probability provably stays below the bound.

Sweeping the budget ladder therefore reports, per app, how much energy
each quality guarantee costs — the online analogue of the offline
``repro experiments autotune`` table.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.apps import ALL_APPS, AppSpec
from repro.tuner.controller import TRIAL_SAMPLES, OnlineTuner
from repro.tuner.search import LEVEL_NAMES, TUNABLE, compose_config, levels_energy

__all__ = [
    "DEFAULT_BUDGETS",
    "FrontierPoint",
    "converge",
    "app_frontier",
    "suite_frontier",
    "format_frontier",
]

#: The default budget ladder ``repro tune`` sweeps (QoS error).
DEFAULT_BUDGETS = (0.01, 0.02, 0.05, 0.10)

#: Convergence is bounded by construction: every mechanism can be
#: trialled at most once per level, each trial costs TRIAL_SAMPLES
#: observations.  The driver enforces the bound with margin.
MAX_OBSERVATIONS = len(TUNABLE) * 3 * TRIAL_SAMPLES + 8


@dataclasses.dataclass(frozen=True)
class FrontierPoint:
    """One converged (budget, config) point of an app's frontier."""

    app: str
    qos_budget: float
    levels: Dict[str, int]
    measured_qos: float
    energy: float
    #: The static reliability bound of the converged vector; the
    #: guarantee axis of the frontier (None when the cone is empty).
    static_bound: float
    certifiable: bool
    observations: int
    explored: int
    pruned: int
    converged: bool
    state_digest: str

    @property
    def savings(self) -> float:
        return 1.0 - self.energy

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def converge(
    tuner: OnlineTuner, max_observations: int = MAX_OBSERVATIONS
) -> OnlineTuner:
    """Feed locally executed probes until the controller converges.

    The observation loop is exactly what a daemon does per budget
    request: ask :meth:`~OnlineTuner.next_probe`, run it, feed the QoS
    back.  Bounded by ``max_observations`` as a backstop; the state
    machine itself converges in at most
    ``len(TUNABLE) * max_level * trial_samples`` observations.
    """
    from repro.experiments.harness import qos_error
    from repro.experiments.runkey import RunKey

    while not tuner.state.converged and tuner.state.observations < max_observations:
        levels, fault_seed, workload_seed = tuner.next_probe()
        key = RunKey(
            spec=tuner.spec,
            config=compose_config(levels, name=f"tuned:{tuner.spec.name}"),
            fault_seed=fault_seed,
            workload_seed=workload_seed,
        )
        tuner.observe(qos_error(key))
    return tuner


def _point(tuner: OnlineTuner) -> FrontierPoint:
    from repro.experiments.harness import mean_qos

    state = tuner.state
    levels = state.levels_dict()
    config = compose_config(levels, name=f"tuned:{tuner.spec.name}")
    measured = mean_qos(tuner.spec, config, runs=tuner.trial_samples)
    bound = tuner.bound_for(levels)
    return FrontierPoint(
        app=tuner.spec.name,
        qos_budget=tuner.qos_budget,
        levels=levels,
        measured_qos=measured,
        energy=levels_energy(tuner.baseline_stats(), levels),
        static_bound=bound.bound,
        certifiable=not bound.saturated,
        observations=state.observations,
        explored=state.explored,
        pruned=state.pruned,
        converged=state.converged,
        state_digest=state.digest,
    )


def app_frontier(
    spec: AppSpec,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    max_observations: int = MAX_OBSERVATIONS,
) -> List[FrontierPoint]:
    """One converged point per budget; shares graph/profile across them."""
    points = []
    graph = None
    stats = None
    for budget in budgets:
        tuner = OnlineTuner(spec, budget, graph=graph, baseline_stats=stats)
        converge(tuner, max_observations=max_observations)
        graph = tuner._flow_graph()
        stats = tuner.baseline_stats()
        points.append(_point(tuner))
    return points


def suite_frontier(
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    apps: Optional[Sequence[AppSpec]] = None,
) -> Dict[str, List[FrontierPoint]]:
    return {
        spec.name: app_frontier(spec, budgets) for spec in (apps or ALL_APPS)
    }


def format_frontier(frontier: Dict[str, List[FrontierPoint]]) -> str:
    """The ``repro tune`` table: one line per (app, budget) point."""
    header = (
        f"{'Application':14s} {'budget':>7s} "
        + "".join(f" {name:>11s}" for name in TUNABLE)
        + f" {'QoS':>7s} {'bound':>9s} {'saved':>7s} {'obs':>5s} {'pruned':>6s}"
    )
    lines = [header, "-" * len(header)]
    for app in sorted(frontier):
        for point in frontier[app]:
            bound = f"{point.static_bound:9.2e}" if point.certifiable else "   (sat.)"
            lines.append(
                f"{point.app:14s} {point.qos_budget:>7.3f} "
                + "".join(
                    f" {LEVEL_NAMES[point.levels[n]]:>11s}" for n in TUNABLE
                )
                + f" {point.measured_qos:>7.3f} {bound} {point.savings:>7.1%} "
                f"{point.observations:>5d} {point.pruned:>6d}"
            )
    return "\n".join(lines)
