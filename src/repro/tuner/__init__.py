"""Online QoS-SLO autotuning: budget-driven approximation control.

The paper suggests an approximate execution substrate "could benefit
from tuning to the characteristics of each application, either offline
via profiling or online via continuous QoS measurement as in Green".
PR 3's ``experiments/autotune.py`` is the offline half; this package is
the online half, living in the service loop:

* :mod:`repro.tuner.search` — the coordinate-search core both tuners
  share (level vectors, composed configs, energy ordering, static-bound
  pruning);
* :mod:`repro.tuner.state` — deterministic, content-addressed
  controller state (replayable bit-identically, replicable over
  ``store_push``/``store_pull``);
* :mod:`repro.tuner.controller` — the per-app online state machine
  (explore/steady, hysteresis) and the daemon-side
  :class:`~repro.tuner.controller.TunerBank`;
* :mod:`repro.tuner.frontier` — the energy-vs-guaranteed-quality
  frontier behind ``repro tune``;
* :mod:`repro.tuner.catalog` — the ``tuner.*`` metrics catalog
  (drift-pinned to SERVICE.md by ``tests/test_docs.py``).

Protocol v2 (``{app, qos_budget}`` submits) threads these through the
daemon, the fleet coordinator and the CLI; see SERVICE.md and
FABRIC.md.
"""

from repro.tuner.catalog import TUNER_METRIC_NAMES
from repro.tuner.controller import (
    RELAX_MARGIN,
    RELAX_STREAK,
    SEED_CYCLE,
    TRIAL_SAMPLES,
    VIOLATION_STREAK,
    OnlineTuner,
    TunerBank,
)
from repro.tuner.frontier import (
    DEFAULT_BUDGETS,
    MAX_OBSERVATIONS,
    FrontierPoint,
    app_frontier,
    converge,
    format_frontier,
    suite_frontier,
)
from repro.tuner.search import (
    LEVEL_NAMES,
    LEVELS,
    MAX_LEVEL,
    TUNABLE,
    candidate_upgrades,
    compose_config,
    levels_bound,
    levels_energy,
)
from repro.tuner.state import (
    TUNER_STATE_KIND,
    TUNER_STATE_SCHEMA_VERSION,
    TunerState,
)

__all__ = [
    "TUNER_METRIC_NAMES",
    "OnlineTuner",
    "TunerBank",
    "TunerState",
    "TUNER_STATE_KIND",
    "TUNER_STATE_SCHEMA_VERSION",
    "TRIAL_SAMPLES",
    "VIOLATION_STREAK",
    "RELAX_STREAK",
    "RELAX_MARGIN",
    "SEED_CYCLE",
    "LEVELS",
    "LEVEL_NAMES",
    "TUNABLE",
    "MAX_LEVEL",
    "compose_config",
    "candidate_upgrades",
    "levels_energy",
    "levels_bound",
    "DEFAULT_BUDGETS",
    "MAX_OBSERVATIONS",
    "FrontierPoint",
    "converge",
    "app_frontier",
    "suite_frontier",
    "format_frontier",
]
