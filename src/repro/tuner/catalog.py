"""The ``tuner.*`` metrics catalog — data only, drift-pinned to docs.

Every counter the online tuner emits through the daemon's metrics
registry, with its meaning.  ``tests/test_docs.py`` asserts each name
appears in SERVICE.md, so the observable surface cannot drift from the
documentation.  This module must stay import-free (no repro imports):
it is folded into :data:`repro.service.protocol.METRIC_NAMES` and must
never create an import cycle.
"""

from __future__ import annotations

__all__ = ["TUNER_METRIC_NAMES"]

TUNER_METRIC_NAMES = {
    "tuner.requests_total": "budget submits answered by an online controller",
    "tuner.controllers": "controllers instantiated on this node (one per app+budget)",
    "tuner.observations": "QoS feedback samples consumed across all controllers",
    "tuner.trials": "trial configurations simulated to a commit/reject verdict",
    "tuner.commits": "level upgrades committed under budget",
    "tuner.rejections": "trial configurations rejected on measured QoS",
    "tuner.pruned_static": "candidates pruned by a saturated static reliability bound",
    "tuner.backoffs": "hysteresis step-downs after sustained budget violations",
    "tuner.relaxes": "rejected-set resets after sustained headroom",
    "tuner.converged": "controllers entering the steady phase",
    "tuner.violations": "observations above their controller's budget",
    "tuner.state_installs": "replicated controller states adopted via store_push",
}
