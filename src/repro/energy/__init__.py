"""Energy estimation (paper Section 5.4)."""

from repro.energy.model import (
    MOBILE,
    SERVER,
    EnergyBreakdown,
    EnergyParameters,
    estimate_energy,
)

__all__ = [
    "EnergyParameters",
    "EnergyBreakdown",
    "estimate_energy",
    "SERVER",
    "MOBILE",
]
