"""The paper's energy model (Section 5.4).

Abstract energy units:

* integer instruction = 37 units, floating-point instruction = 40 units;
* 22 units of each are instruction fetch + decode and cannot be reduced
  by approximation;
* the remaining *execute* component (15 / 18 units) scales down for
  approximate instructions by the per-operation savings of Table 2
  (ALU voltage scaling for integers; mantissa-width reduction for FP);
* SRAM storage and the instructions accessing it are ~35% of
  microarchitecture power, execution logic the other 65%; SRAM savings
  scale with the approximate fraction of SRAM byte-seconds times the
  supply-power saving;
* system energy = 55% CPU + 45% DRAM (server; mobile: 75% / 25%), with
  DRAM savings scaling with the approximate fraction of DRAM
  byte-seconds times the refresh-power saving.

The model intentionally omits mode-switching overheads, as the paper's
does ("our results can be considered optimistic").

Inputs are a :class:`~repro.runtime.stats.RunStats` (the measured
approximation fractions) and a :class:`~repro.hardware.config
.HardwareConfig` (the savings percentages); the output is energy
normalised to fully precise execution of the same run, i.e. the bars of
Figure 4.
"""

from __future__ import annotations

import dataclasses

from repro.errors import EnergyModelError
from repro.hardware.config import HardwareConfig
from repro.runtime.stats import RunStats

__all__ = [
    "EnergyParameters",
    "SERVER",
    "MOBILE",
    "EnergyBreakdown",
    "estimate_energy",
]


@dataclasses.dataclass(frozen=True)
class EnergyParameters:
    """The constants of Section 5.4, overridable for ablations."""

    int_op_units: float = 37.0
    fp_op_units: float = 40.0
    fetch_decode_units: float = 22.0
    sram_share_of_cpu: float = 0.35
    cpu_share_of_system: float = 0.55
    dram_share_of_system: float = 0.45
    name: str = "server"

    def __post_init__(self) -> None:
        if self.fetch_decode_units > min(self.int_op_units, self.fp_op_units):
            raise EnergyModelError("fetch/decode cannot exceed total op energy")
        share_sum = self.cpu_share_of_system + self.dram_share_of_system
        if abs(share_sum - 1.0) > 1e-9:
            raise EnergyModelError("CPU and DRAM system shares must sum to 1")
        if not 0.0 <= self.sram_share_of_cpu <= 1.0:
            raise EnergyModelError("SRAM share of CPU must be in [0, 1]")


#: Server-like setting: DRAM is 45% of system power (Fan et al.).
SERVER = EnergyParameters()

#: Mobile setting: memory is only ~25% of power (Carroll & Heiser).
MOBILE = EnergyParameters(cpu_share_of_system=0.75, dram_share_of_system=0.25, name="mobile")


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Normalised energy of one run (1.0 = fully precise baseline)."""

    instruction_energy: float
    sram_energy: float
    dram_energy: float
    cpu_energy: float
    total: float

    @property
    def savings(self) -> float:
        """Fraction of system energy saved versus precise execution."""
        return 1.0 - self.total


def _instruction_energy_fraction(stats: RunStats, config: HardwareConfig, params: EnergyParameters) -> float:
    """Energy of the instruction stream relative to its precise cost."""
    int_total = stats.int_ops_total
    fp_total = stats.fp_ops_total
    if int_total == 0 and fp_total == 0:
        return 1.0

    int_exec = params.int_op_units - params.fetch_decode_units
    fp_exec = params.fp_op_units - params.fetch_decode_units

    precise_cost = int_total * params.int_op_units + fp_total * params.fp_op_units

    int_cost = (
        int_total * params.fetch_decode_units
        + stats.int_ops_precise * int_exec
        + stats.int_ops_approx * int_exec * (1.0 - config.int_op_saving)
    )
    fp_cost = (
        fp_total * params.fetch_decode_units
        + stats.fp_ops_precise * fp_exec
        + stats.fp_ops_approx * fp_exec * (1.0 - config.fp_op_saving)
    )
    return (int_cost + fp_cost) / precise_cost


def estimate_energy(
    stats: RunStats,
    config: HardwareConfig,
    params: EnergyParameters = SERVER,
) -> EnergyBreakdown:
    """Estimate normalised CPU+memory energy for one measured run.

    All components are fractions of their own precise-execution energy;
    ``total`` weights them by the Section 5.4 shares.
    """
    if stats.ops_total < 0:
        raise EnergyModelError("negative operation counts")

    instruction = _instruction_energy_fraction(stats, config, params)

    sram = 1.0 - stats.sram_approx_fraction * config.sram_power_saving
    dram = 1.0 - stats.dram_approx_fraction * config.dram_power_saving

    cpu = (1.0 - params.sram_share_of_cpu) * instruction + params.sram_share_of_cpu * sram
    total = params.cpu_share_of_system * cpu + params.dram_share_of_system * dram

    return EnergyBreakdown(
        instruction_energy=instruction,
        sram_energy=sram,
        dram_energy=dram,
        cpu_energy=cpu,
        total=total,
    )
