"""Qualified types for the EnerPy checker (paper Sections 2.1, 2.6, 3.1).

A *qualified type* pairs a precision qualifier with a base type.  Base
types are:

* primitives — ``int``, ``float`` (the paper's ``int``/``float``; Python
  has no separate ``double``, but we keep a ``double`` width distinction
  for the FPU model via :class:`FloatWidth` in the hardware package);
* ``bool`` — primitive; approximate booleans arise from comparisons on
  approximate numbers and are what the condition rule rejects;
* reference types — user classes, possibly ``@approximable``;
* arrays — element type plus the always-precise length (Section 2.6);
* ``void``/``none`` for statements and functions without results.

Subtyping (Section 2.1):

* For **primitives**, ``precise P <: approx P`` — precise-to-approximate
  flow is allowed by subtyping, and both are below ``top P``.
* For **reference types**, qualifiers must match up to the ``<:q``
  ordering *without* the precise-below-approx axiom: a precise instance
  is *not* a subtype of an approximate instance (mutable-reference
  unsoundness, Section 2.5), but anything is below ``top C``.
* Arrays are invariant in their element type.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.qualifiers import (
    APPROX,
    CONTEXT,
    LOST,
    PRECISE,
    TOP,
    Qualifier,
    adapt,
    is_subqualifier,
    qualifier_lub,
)

__all__ = [
    "BaseKind",
    "QualifiedType",
    "primitive",
    "reference",
    "array_of",
    "VOID",
    "is_subtype",
    "type_lub",
    "adapt_type",
]


class BaseKind:
    """Kinds of base types, used for quick dispatch in the checker."""

    PRIMITIVE = "primitive"
    REFERENCE = "reference"
    ARRAY = "array"
    VOID = "void"


#: Primitive base-type names understood by the checker.
PRIMITIVE_NAMES = frozenset({"int", "float", "bool"})

#: Primitive names that support arithmetic (bool only supports logic).
NUMERIC_NAMES = frozenset({"int", "float"})


@dataclasses.dataclass(frozen=True)
class QualifiedType:
    """A precision-qualified type.

    Attributes:
        qualifier: the precision qualifier.
        kind: one of the :class:`BaseKind` constants.
        name: primitive name or class name (``None`` for arrays/void).
        element: element type for arrays (``None`` otherwise).
    """

    qualifier: Qualifier
    kind: str
    name: Optional[str] = None
    element: Optional["QualifiedType"] = None

    def __str__(self) -> str:
        if self.kind == BaseKind.VOID:
            return "void"
        if self.kind == BaseKind.ARRAY:
            return f"{self.qualifier} {self.element}[]"
        return f"{self.qualifier} {self.name}"

    # ------------------------------------------------------------------
    # Predicates used throughout the checker
    # ------------------------------------------------------------------
    @property
    def is_primitive(self) -> bool:
        return self.kind == BaseKind.PRIMITIVE

    @property
    def is_numeric(self) -> bool:
        return self.kind == BaseKind.PRIMITIVE and self.name in NUMERIC_NAMES

    @property
    def is_bool(self) -> bool:
        return self.kind == BaseKind.PRIMITIVE and self.name == "bool"

    @property
    def is_reference(self) -> bool:
        return self.kind == BaseKind.REFERENCE

    @property
    def is_array(self) -> bool:
        return self.kind == BaseKind.ARRAY

    @property
    def is_void(self) -> bool:
        return self.kind == BaseKind.VOID

    @property
    def is_approx(self) -> bool:
        return self.qualifier is APPROX

    @property
    def is_precise(self) -> bool:
        return self.qualifier is PRECISE

    # ------------------------------------------------------------------
    # Derived types
    # ------------------------------------------------------------------
    def with_qualifier(self, qualifier: Qualifier) -> "QualifiedType":
        """The same base type under a different qualifier."""
        return dataclasses.replace(self, qualifier=qualifier)

    def endorsed(self) -> "QualifiedType":
        """The type produced by ``endorse(e)``: same base, precise."""
        return self.with_qualifier(PRECISE)


def primitive(name: str, qualifier: Qualifier = PRECISE) -> QualifiedType:
    """A qualified primitive type such as ``approx float``."""
    if name not in PRIMITIVE_NAMES:
        raise ValueError(f"unknown primitive type {name!r}")
    return QualifiedType(qualifier, BaseKind.PRIMITIVE, name=name)


def reference(name: str, qualifier: Qualifier = PRECISE) -> QualifiedType:
    """A qualified reference (class) type such as ``approx Vector3f``."""
    return QualifiedType(qualifier, BaseKind.REFERENCE, name=name)


def array_of(element: QualifiedType, qualifier: Qualifier = PRECISE) -> QualifiedType:
    """An array type.  The *length* is always precise (Section 2.6)."""
    return QualifiedType(qualifier, BaseKind.ARRAY, element=element)


VOID = QualifiedType(PRECISE, BaseKind.VOID)


def _same_base(a: QualifiedType, b: QualifiedType) -> bool:
    if a.kind != b.kind:
        return False
    if a.kind == BaseKind.ARRAY:
        return _same_base(a.element, b.element) and a.element.qualifier == b.element.qualifier
    return a.name == b.name


def _primitive_widens(sub: str, sup: str) -> bool:
    """Java-style primitive widening: int may flow into float."""
    if sub == sup:
        return True
    return sub == "int" and sup == "float"


def is_subtype(
    sub: QualifiedType,
    sup: QualifiedType,
    subclasses: Optional[dict] = None,
) -> bool:
    """Subtyping judgment ``sub <: sup``.

    ``subclasses`` maps class name -> superclass name for reference
    types; ``None`` means only reflexive subclassing.
    """
    if sub.is_void or sup.is_void:
        return sub.is_void and sup.is_void

    if sub.is_primitive and sup.is_primitive:
        if not _primitive_widens(sub.name, sup.name):
            return False
        # precise P <: approx P for primitives, and both below top.
        if is_subqualifier(sub.qualifier, sup.qualifier):
            return True
        if sub.qualifier is PRECISE and sup.qualifier in (APPROX, CONTEXT):
            # Precise data may flow into approximate storage, and into
            # context storage (which is precise or approximate — both
            # accept precise values).
            return True
        # context P <: approx P: whatever the instance precision, the
        # value is at most approximate.
        return sub.qualifier is CONTEXT and sup.qualifier is APPROX

    if sub.is_array and sup.is_array:
        # Arrays are invariant in their element type; the array
        # reference qualifier follows <:q only.
        if not _same_base(sub, sup):
            return False
        return is_subqualifier(sub.qualifier, sup.qualifier)

    if sub.is_reference and sup.is_reference:
        if not is_subqualifier(sub.qualifier, sup.qualifier):
            return False
        return _is_subclass(sub.name, sup.name, subclasses)

    return False


def _is_subclass(sub: str, sup: str, subclasses: Optional[dict]) -> bool:
    if sub == sup or sup == "object":
        return True
    if not subclasses:
        return False
    seen = set()
    current = sub
    while current in subclasses and current not in seen:
        seen.add(current)
        current = subclasses[current]
        if current == sup:
            return True
    return False


def type_lub(a: QualifiedType, b: QualifiedType, subclasses: Optional[dict] = None) -> Optional[QualifiedType]:
    """A common supertype of ``a`` and ``b``, or ``None`` if none exists.

    Used for conditional expressions and to join branches of ``if``.
    """
    if is_subtype(a, b, subclasses):
        return b
    if is_subtype(b, a, subclasses):
        return a
    if _same_base(a, b):
        return a.with_qualifier(qualifier_lub(a.qualifier, b.qualifier))
    if a.is_primitive and b.is_primitive and {a.name, b.name} == {"int", "float"}:
        wide = primitive("float", qualifier_lub(a.qualifier, b.qualifier))
        if a.qualifier is APPROX or b.qualifier is APPROX:
            wide = wide.with_qualifier(qualifier_lub(a.qualifier, b.qualifier))
        return wide
    return None


def adapt_type(receiver: Qualifier, declared: QualifiedType) -> QualifiedType:
    """Context-adapt a declared member type through a receiver qualifier.

    Applies :func:`repro.core.qualifiers.adapt` to the outer qualifier
    and, for arrays, recursively to the element type, mirroring the
    paper's ``|>`` lifted to types.
    """
    adapted = declared.with_qualifier(adapt(receiver, declared.qualifier))
    if declared.kind == BaseKind.ARRAY and declared.element is not None:
        adapted = dataclasses.replace(adapted, element=adapt_type(receiver, declared.element))
    return adapted


def contains_lost(t: QualifiedType) -> bool:
    """Whether a type mentions the ``lost`` qualifier anywhere.

    The field-write rule requires ``lost`` not to occur in the adapted
    field type (writing through lost precision would be unsound).
    """
    if t.qualifier is LOST:
        return True
    if t.is_array and t.element is not None:
        return contains_lost(t.element)
    return False


def contains_context(t: QualifiedType) -> bool:
    """Whether a type mentions ``context`` anywhere (class members only)."""
    if t.qualifier is CONTEXT:
        return True
    if t.is_array and t.element is not None:
        return contains_context(t.element)
    return False
