"""Precision qualifiers and their lattice (paper Sections 2.1 and 3.1).

EnerJ annotates every type with a *precision qualifier*.  The paper's
formal core FEnerJ uses five qualifiers::

    q ::= precise | approx | top | context | lost

with the ordering (``<:q``)::

    q <:q q'   iff   q = q'  or  q' = top  or  (q' = lost and q != top)

i.e. ``top`` is the greatest element, ``lost`` sits just below ``top``,
and ``precise`` and ``approx`` are unrelated to each other.  ``context``
is a *polymorphic* qualifier: inside an approximable class it stands for
the qualifier of the receiver and is eliminated by *context adaptation*
(:func:`adapt`) at field accesses and method invocations.  ``lost``
arises when adaptation cannot express the result (adapting ``context``
through a ``top``- or ``lost``-qualified receiver).

This module is shared by the EnerPy checker (``repro.core.checker``) and
the FEnerJ formal core (``repro.fenerj``); both implement exactly these
rules, so the lattice is tested once here and reused.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.errors import QualifierError

__all__ = [
    "Qualifier",
    "PRECISE",
    "APPROX",
    "TOP",
    "CONTEXT",
    "LOST",
    "is_subqualifier",
    "qualifier_lub",
    "adapt",
    "adaptable_qualifiers",
]


class Qualifier(enum.Enum):
    """A precision qualifier.

    The enum values are the concrete-syntax spellings used by both the
    EnerPy annotations and the FEnerJ parser.
    """

    PRECISE = "precise"
    APPROX = "approx"
    TOP = "top"
    CONTEXT = "context"
    LOST = "lost"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Qualifier.{self.name}"

    def __str__(self) -> str:
        return self.value

    @property
    def is_concrete(self) -> bool:
        """True for qualifiers that can appear on a runtime value.

        ``context`` only makes sense inside a class body and ``lost``
        only as the result of adaptation; neither ever qualifies a value
        at runtime.
        """
        return self in (Qualifier.PRECISE, Qualifier.APPROX, Qualifier.TOP)

    @property
    def may_be_approximate(self) -> bool:
        """True if a value with this qualifier may be stored approximately.

        Only ``approx`` data may actually be mapped to approximate
        storage or operated on by approximate instructions; everything
        else (including ``top``, which gives no license either way)
        must be treated precisely by the execution substrate.
        """
        return self is Qualifier.APPROX


PRECISE = Qualifier.PRECISE
APPROX = Qualifier.APPROX
TOP = Qualifier.TOP
CONTEXT = Qualifier.CONTEXT
LOST = Qualifier.LOST

#: Qualifiers that may legally appear on the right-hand side of ``adapt``.
adaptable_qualifiers = (PRECISE, APPROX, CONTEXT, TOP, LOST)


def is_subqualifier(sub: Qualifier, sup: Qualifier) -> bool:
    """The ordering ``sub <:q sup`` of the paper's formal core.

    Rules (Section 3.1)::

        q <:q q                      (reflexivity)
        q <:q top                    (top is greatest)
        q <:q lost     if q != top   (everything but top is below lost)

    ``precise`` and ``approx`` are *not* related: precise-to-approx flow
    for primitives is handled at the level of full types (see
    ``repro.core.types``), not by the qualifier ordering, mirroring the
    paper's treatment.
    """
    if sub is sup:
        return True
    if sup is TOP:
        return True
    if sup is LOST and sub is not TOP:
        return True
    return False


def qualifier_lub(a: Qualifier, b: Qualifier) -> Qualifier:
    """Least upper bound of two qualifiers in the ``<:q`` ordering.

    Used to type conditionals: ``if (e0) {e1} else {e2}`` needs a common
    supertype of both branches.
    """
    if is_subqualifier(a, b):
        return b
    if is_subqualifier(b, a):
        return a
    # The only incomparable pairs involve precise/approx/context; their
    # join is ``lost`` (the least qualifier above every non-top element).
    return LOST


def adapt(receiver: Qualifier, declared: Qualifier) -> Qualifier:
    """Context adaptation ``receiver |> declared`` (paper Section 3.1).

    Replaces the ``context`` qualifier of a field or method signature by
    the qualifier of the receiver expression::

        q |> context = q      if q in {approx, precise, context}
        q |> context = lost   if q in {top, lost}
        q |> q'      = q'     if q' != context

    The first rule is what makes ``@Context`` fields approximate in
    approximate instances and precise in precise instances.  The second
    captures that a ``top``-qualified receiver gives no information
    about what ``context`` stands for, so the precision is *lost* —
    reading such a field is fine (at type ``lost``) but writing it must
    be rejected (see the field-write rule in the checker).
    """
    if declared is not CONTEXT:
        return declared
    if receiver in (PRECISE, APPROX, CONTEXT):
        return receiver
    if receiver in (TOP, LOST):
        return LOST
    raise QualifierError(f"cannot adapt through receiver qualifier {receiver!r}")


def parse_qualifier(text: str) -> Qualifier:
    """Parse a concrete-syntax qualifier name (``"approx"`` etc.)."""
    try:
        return Qualifier(text)
    except ValueError:
        valid = ", ".join(q.value for q in Qualifier)
        raise QualifierError(f"unknown qualifier {text!r} (expected one of: {valid})") from None


def check_all_concrete(quals: Iterable[Qualifier]) -> None:
    """Raise :class:`QualifierError` unless every qualifier is concrete."""
    for qual in quals:
        if not qual.is_concrete:
            raise QualifierError(f"qualifier {qual} cannot qualify a runtime value")
