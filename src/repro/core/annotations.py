"""EnerPy surface annotations (paper Table 1, re-hosted on Python).

These are the objects EnerPy programs import::

    from repro import Approx, Precise, Top, Context, approximable, endorse

    x: Approx[float] = 0.0

    @approximable
    class Vector3f:
        x: Context[float]
        ...

Backwards compatibility is a design goal of the paper ("one valid
execution is to ignore all annotations and execute the code as plain
Java"), and we keep it: every construct here is a runtime no-op, so any
EnerPy module is an ordinary Python module that runs precisely under
CPython.  The static checker (:mod:`repro.core.checker`) and the
instrumenting compiler (:mod:`repro.core.instrument`) give annotations
their approximate meaning.
"""

from __future__ import annotations

from typing import Any, TypeVar

__all__ = [
    "Approx",
    "Precise",
    "Top",
    "Context",
    "approximable",
    "endorse",
    "APPROX_SUFFIX",
    "is_approximable",
]

_T = TypeVar("_T")

#: Naming convention for algorithmic approximation (paper Section 2.5.2):
#: ``def mean_APPROX(self)`` is invoked in place of ``mean`` when the
#: receiver is approximate.  (Java EnerJ spells this ``mean_APPROX`` too.)
APPROX_SUFFIX = "_APPROX"

#: Attribute set by :func:`approximable` so the runtime can recognise
#: approximable classes without importing checker machinery.
_APPROXIMABLE_FLAG = "__enerpy_approximable__"


class _QualifierAnnotation:
    """A subscriptable annotation marker such as ``Approx[float]``.

    At runtime ``Approx[float]`` simply returns the inner type unchanged
    wrapped in a :class:`_QualifiedAlias` that keeps the spelling for
    ``repr`` but is otherwise inert, so default Python execution and
    ``typing.get_type_hints``-free tooling are unaffected.
    """

    def __init__(self, name: str) -> None:
        self._name = name

    def __getitem__(self, item: Any) -> "_QualifiedAlias":
        return _QualifiedAlias(self._name, item)

    def __repr__(self) -> str:
        return self._name

    def __call__(self, value: _T) -> _T:
        """Allow ``Approx(expr)`` as an *upcast* in expression position.

        The paper permits forcing an approximate operation by upcasting
        an operand; ``Approx(x)`` is the EnerPy spelling.  At plain
        runtime it is the identity.
        """
        return value


class _QualifiedAlias:
    """The runtime value of ``Approx[float]`` — inert but printable."""

    def __init__(self, qualifier_name: str, inner: Any) -> None:
        self.qualifier_name = qualifier_name
        self.inner = inner

    def __repr__(self) -> str:
        inner = getattr(self.inner, "__name__", repr(self.inner))
        return f"{self.qualifier_name}[{inner}]"

    def __call__(self, value: _T) -> _T:
        return value


Approx = _QualifierAnnotation("Approx")
Precise = _QualifierAnnotation("Precise")
Top = _QualifierAnnotation("Top")
Context = _QualifierAnnotation("Context")


def approximable(cls: type) -> type:
    """Class decorator marking a class as approximable (Section 2.5).

    Clients may then create approximate instances (``v: Approx[Vector3f]
    = Vector3f(...)``); ``Context``-qualified members take on the
    instance's precision, and ``*_APPROX`` method variants are eligible
    for dispatch on approximate receivers.  A plain-Python run ignores
    all of this; the decorator only sets a marker attribute.
    """
    setattr(cls, _APPROXIMABLE_FLAG, True)
    return cls


def is_approximable(cls: type) -> bool:
    """Whether ``cls`` was decorated with :func:`approximable`."""
    return bool(getattr(cls, _APPROXIMABLE_FLAG, False))


def endorse(value: _T) -> _T:
    """Endorsement (paper Section 2.2): approximate-to-precise cast.

    ``endorse(e)`` types as the precise equivalent of ``e``'s type; the
    programmer thereby certifies that approximate data may influence
    precise state here.  At runtime (plain or instrumented) it returns
    the value unchanged — under instrumentation the runtime also records
    the dynamic endorsement count for the evaluation statistics.
    """
    return value
