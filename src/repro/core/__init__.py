"""EnerPy core: qualifiers, types, checker, and instrumenting compiler."""

from repro.core.annotations import (
    APPROX_SUFFIX,
    Approx,
    Context,
    Precise,
    Top,
    approximable,
    endorse,
    is_approximable,
)
from repro.core.checker import CheckResult, Checker, check_modules
from repro.core.declarations import (
    ClassInfo,
    FunctionSig,
    ProgramDeclarations,
    collect_declarations,
)
from repro.core.diagnostics import Diagnostic, DiagnosticSink, Severity
from repro.core.qualifiers import (
    APPROX,
    CONTEXT,
    LOST,
    PRECISE,
    TOP,
    Qualifier,
    adapt,
    is_subqualifier,
    qualifier_lub,
)
from repro.core.types import QualifiedType, array_of, is_subtype, primitive, reference

__all__ = [
    "Approx",
    "Precise",
    "Top",
    "Context",
    "approximable",
    "endorse",
    "APPROX_SUFFIX",
    "is_approximable",
    "Qualifier",
    "PRECISE",
    "APPROX",
    "TOP",
    "CONTEXT",
    "LOST",
    "adapt",
    "is_subqualifier",
    "qualifier_lub",
    "QualifiedType",
    "primitive",
    "reference",
    "array_of",
    "is_subtype",
    "check_modules",
    "Checker",
    "CheckResult",
    "Diagnostic",
    "DiagnosticSink",
    "Severity",
    "ProgramDeclarations",
    "ClassInfo",
    "FunctionSig",
    "collect_declarations",
]
