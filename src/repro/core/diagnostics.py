"""Diagnostic reporting for the EnerPy checker."""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

__all__ = ["Severity", "Diagnostic", "DiagnosticSink"]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One checker finding, with a stable code for tests to assert on.

    Codes (all errors unless noted):

    ==================  ====================================================
    code                meaning
    ==================  ====================================================
    flow                approximate-to-precise assignment without endorse
    condition           approximate value controls an if/while/ternary/assert
    subscript           approximate value used as an array index
    lost-write          field write whose adapted type lost precision
    incompatible        operand/argument type mismatch (non-flow)
    arity               wrong number of call arguments
    unknown-name        reference to an undeclared name
    unknown-field       reference to an undeclared field
    unknown-method      reference to an undeclared method/function
    not-approximable    approximate instance of a non-approximable class
    context-outside     @Context used outside an approximable class body
    bad-annotation      malformed qualifier annotation
    unsupported         construct outside the checked EnerPy subset
    approx-escape       approximate value passed to unchecked code
    return-type         returned value does not match declared return type
    overload            _APPROX variant signature incompatible (warning)
    ==================  ====================================================
    """

    code: str
    message: str
    line: int = 0
    column: int = 0
    module: str = ""
    severity: Severity = Severity.ERROR

    def __str__(self) -> str:
        where = f"{self.module or '<module>'}:{self.line}:{self.column}"
        return f"{where}: {self.severity.value}: [{self.code}] {self.message}"


def _diagnostic_order(diagnostic: Diagnostic):
    return (diagnostic.module, diagnostic.line, diagnostic.column, diagnostic.code)


class DiagnosticSink:
    """Collects diagnostics during a checking pass.

    ``diagnostics`` is always sorted by (module, line, column, code),
    independent of emission order, so checker output and the ``--format
    json`` payloads are byte-identical across runs and refactors of the
    checker's traversal order.
    """

    def __init__(self) -> None:
        self._diagnostics: List[Diagnostic] = []

    def error(self, code: str, message: str, node=None, module: str = "") -> None:
        self._add(code, message, node, module, Severity.ERROR)

    def warning(self, code: str, message: str, node=None, module: str = "") -> None:
        self._add(code, message, node, module, Severity.WARNING)

    def _add(self, code: str, message: str, node, module: str, severity: Severity) -> None:
        line = getattr(node, "lineno", 0) if node is not None else 0
        column = getattr(node, "col_offset", 0) if node is not None else 0
        self._diagnostics.append(Diagnostic(code, message, line, column, module, severity))

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return sorted(self._diagnostics, key=_diagnostic_order)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> List[str]:
        return [d.code for d in self.errors]

    def summary(self, limit: Optional[int] = None) -> str:
        shown = self.diagnostics if limit is None else self.diagnostics[:limit]
        lines = [str(d) for d in shown]
        hidden = len(self.diagnostics) - len(shown)
        if hidden > 0:
            lines.append(f"... and {hidden} more")
        return "\n".join(lines)
