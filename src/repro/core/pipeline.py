"""The full EnerPy compilation pipeline: check → instrument → load.

This is the analogue of the paper's toolchain: the Checker-Framework
plugin (our checker) followed by the bytecode-instrumenting simulator
compiler (our AST instrumenter).  A compiled program's functions run on
whatever :class:`~repro.runtime.Simulator` is active, so the same
compiled artifact serves the Baseline / Mild / Medium / Aggressive
configurations — like the paper's single approximation-aware binary.

Typical use::

    program = compile_program({"fft": FFT_SOURCE})
    with Simulator(MEDIUM, seed=7) as sim:
        output = program.call("fft", "run_fft", data)
    stats = sim.stats()
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from repro.core.checker import CheckResult, check_modules
from repro.core.instrument import instrument_module
from repro.errors import InstrumentationError, TypeCheckError

__all__ = ["CompiledProgram", "compile_program", "compile_from_files"]


class CompiledProgram:
    """A checked, instrumented, executable EnerPy program."""

    def __init__(self, check_result: CheckResult, namespaces: Dict[str, dict]) -> None:
        self.check_result = check_result
        self.namespaces = namespaces

    def namespace(self, module: str) -> dict:
        try:
            return self.namespaces[module]
        except KeyError:
            raise InstrumentationError(f"program has no module {module!r}") from None

    def get(self, module: str, name: str):
        """Fetch a function or class defined by the program."""
        namespace = self.namespace(module)
        try:
            return namespace[name]
        except KeyError:
            raise InstrumentationError(f"module {module!r} defines no {name!r}") from None

    def call(self, module: str, name: str, *args, **kwargs):
        """Call a program function (inside an active Simulator context)."""
        return self.get(module, name)(*args, **kwargs)


def _topo_order(
    modules: Iterable[str], dependencies: Dict[str, List[str]]
) -> List[str]:
    """Topologically order modules so imports are defined before use."""
    order: List[str] = []
    state: Dict[str, int] = {}

    def visit(name: str) -> None:
        mark = state.get(name, 0)
        if mark == 1:
            raise InstrumentationError(f"import cycle involving module {name!r}")
        if mark == 2:
            return
        state[name] = 1
        for dep in dependencies.get(name, ()):
            visit(dep)
        state[name] = 2
        order.append(name)

    for name in modules:
        visit(name)
    return order


def compile_program(
    sources: Dict[str, str],
    allow_warnings: bool = True,
    check_result: Optional[CheckResult] = None,
) -> CompiledProgram:
    """Check, instrument, and load a program.

    Raises :class:`~repro.errors.TypeCheckError` if checking fails; the
    exception carries the diagnostics.
    """
    result = check_result if check_result is not None else check_modules(sources)
    if not result.ok:
        raise TypeCheckError(
            f"EnerPy type checking failed:\n{result.sink.summary(limit=20)}",
            result.sink.diagnostics,
        )
    if not allow_warnings and result.sink.diagnostics:
        raise TypeCheckError(
            f"EnerPy checking produced warnings:\n{result.sink.summary(limit=20)}",
            result.sink.diagnostics,
        )

    module_names = set(result.modules)
    instrumented: Dict[str, ast.Module] = {}
    dependencies: Dict[str, List[str]] = {}
    imports: Dict[str, list] = {}
    for name, tree in result.modules.items():
        rewritten, intra = instrument_module(tree, result.facts, module_names)
        instrumented[name] = rewritten
        imports[name] = intra
        dependencies[name] = [module for module, _names in intra]

    namespaces: Dict[str, dict] = {}
    for name in _topo_order(instrumented, dependencies):
        namespace = {"__name__": f"enerpy.{name}"}
        for sibling, bindings in imports[name]:
            for source_name, local_name in bindings:
                try:
                    namespace[local_name] = namespaces[sibling][source_name]
                except KeyError:
                    raise InstrumentationError(
                        f"module {name!r} imports {source_name!r} from "
                        f"{sibling!r}, which does not define it"
                    ) from None
        code = compile(instrumented[name], filename=f"<enerpy:{name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - loading our own compiled program
        namespaces[name] = namespace

    return CompiledProgram(result, namespaces)


def compile_from_files(paths: Dict[str, str]) -> CompiledProgram:
    """Compile a program given {module name: file path}."""
    sources = {}
    for name, path in paths.items():
        with open(path, "r", encoding="utf-8") as handle:
            sources[name] = handle.read()
    return compile_program(sources)
