"""The EnerPy static qualifier checker (paper Section 2; pass 2).

Checks a program (one or more parsed modules) against EnerJ's rules,
re-hosted on Python:

* **Flow** — no approximate-to-precise assignment without ``endorse``
  (Section 2.1/2.2); for primitives, precise-to-approximate flows by
  subtyping.
* **Control flow** — conditions of ``if``/``while``/ternary/``assert``
  must be precise (Section 2.4); ``endorse`` is the escape hatch.
* **Arrays** — subscripts must be precise; lengths are precise
  (Section 2.6).
* **Objects** — approximable classes get qualifier polymorphism via
  ``Context``; context adaptation follows the formal rules, and field
  writes whose adapted type *lost* precision are rejected (Section 3.1).
* **Algorithmic approximation** — ``m_APPROX`` variants are dispatched
  on approximate receivers (Section 2.5.2).
* **Bidirectional typing** — arithmetic on the right-hand side of an
  assignment to an approximate target (and in approximate argument
  positions) is approximate even when its operands are precise
  (Section 2.3).

Besides diagnostics, the checker records a *fact* for every node the
instrumenting compiler must rewrite (operator kind and precision, local
reads/writes, array and field accesses, allocations, endorsements,
dispatch sites).  Facts are keyed by node identity, so the same AST
object must be handed to the instrumenter.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.core.annotations import APPROX_SUFFIX
from repro.core.declarations import (
    ClassInfo,
    FunctionSig,
    ProgramDeclarations,
    collect_declarations,
    parse_annotation,
)
from repro.core.diagnostics import DiagnosticSink
from repro.core.qualifiers import (
    APPROX,
    CONTEXT,
    LOST,
    PRECISE,
    TOP,
    Qualifier,
    adapt,
    qualifier_lub,
)
from repro.core.types import (
    QualifiedType,
    VOID,
    adapt_type,
    array_of,
    contains_lost,
    is_subtype,
    primitive,
    reference,
    type_lub,
)

__all__ = ["CheckResult", "Checker", "check_modules"]

DYNAMIC = reference("dynamic", PRECISE)
NULL = reference("null", PRECISE)
STR = reference("str", PRECISE)
RANGE = reference("range", PRECISE)
INT = primitive("int")
FLOAT = primitive("float")
BOOL = primitive("bool")

_BINOP_NAMES = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.FloorDiv: "div",
    ast.Mod: "mod",
    ast.Pow: "pow",
    ast.BitAnd: "and",
    ast.BitOr: "or",
    ast.BitXor: "xor",
    ast.LShift: "shl",
    ast.RShift: "shr",
}

_CMP_NAMES = {
    ast.Eq: "eq",
    ast.NotEq: "ne",
    ast.Lt: "lt",
    ast.LtE: "le",
    ast.Gt: "gt",
    ast.GtE: "ge",
}

_MATH_FUNCTIONS = {
    "sqrt", "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
    "exp", "log", "log2", "log10", "floor", "ceil", "fabs", "pow",
    "hypot", "fmod", "copysign",
}

_MATH_CONSTANTS = {"pi", "e", "inf", "nan", "tau"}

#: Python-int-producing math functions.
_MATH_INT_RESULT = {"floor", "ceil"}


class CheckResult:
    """Outcome of checking a program: diagnostics plus instrumentation facts."""

    def __init__(
        self,
        declarations: ProgramDeclarations,
        sink: DiagnosticSink,
        facts: Dict[int, dict],
        types: Dict[int, QualifiedType],
        modules: Dict[str, ast.Module],
    ) -> None:
        self.declarations = declarations
        self.sink = sink
        self.facts = facts
        self.types = types
        self.modules = modules

    @property
    def ok(self) -> bool:
        return not self.sink.has_errors

    @property
    def diagnostics(self):
        return self.sink.diagnostics

    def codes(self) -> List[str]:
        return self.sink.codes()


class _Env:
    """A lexical scope mapping locals to their declared/inferred types."""

    def __init__(self, parent: Optional["_Env"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, QualifiedType] = {}
        #: Names annotated explicitly (vs. inferred from first assignment).
        self.declared: set = set()

    def lookup(self, name: str) -> Optional[QualifiedType]:
        env: Optional[_Env] = self
        while env is not None:
            if name in env.names:
                return env.names[name]
            env = env.parent
        return None

    def bind(self, name: str, type_: QualifiedType, declared: bool = False) -> None:
        self.names[name] = type_
        if declared:
            self.declared.add(name)

    def is_declared_here(self, name: str) -> bool:
        return name in self.names


class Checker:
    """Type-checks modules and records instrumentation facts."""

    def __init__(self, declarations: ProgramDeclarations, sink: DiagnosticSink) -> None:
        self.decls = declarations
        self.sink = sink
        self.facts: Dict[int, dict] = {}
        self.types: Dict[int, QualifiedType] = {}
        self._module = ""
        #: math-module aliases in the current module ("import math as m").
        self._math_names: set = set()
        #: Facts are only recorded inside function bodies: module-level
        #: code executes at load time, outside any Simulator context.
        self._recording = False
        #: Module-level literal constants of the module being checked.
        self._module_constants: Dict[str, QualifiedType] = {}
        #: Qualifier of the current method's receiver (None in functions).
        self._receiver: Optional[Qualifier] = None
        self._current_class: Optional[ClassInfo] = None
        self._current_sig: Optional[FunctionSig] = None

    # ==================================================================
    # Entry points
    # ==================================================================
    def check_module(self, name: str, tree: ast.Module) -> None:
        self._module = name
        self._math_names = set()
        self._module_constants = self._collect_module_constants(tree)
        for stmt in tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._register_import(stmt)
            elif isinstance(stmt, ast.FunctionDef):
                sig = self.decls.lookup_function(stmt.name)
                if sig is not None and sig.node is stmt:
                    self._check_function(sig)
            elif isinstance(stmt, ast.ClassDef):
                info = self.decls.lookup_class(stmt.name)
                if info is not None and info.node is stmt:
                    self._check_class(info)
            elif isinstance(stmt, ast.If) and self._is_main_guard(stmt):
                # ``if __name__ == "__main__":`` blocks run outside the
                # simulator; they may only touch precise/dynamic data.
                self._check_block(stmt.body, _Env())
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.Expr, ast.Pass)):
                # Module-level constants and docstrings: checked loosely
                # in a fresh environment.
                self._check_stmt(stmt, _Env())
            else:
                self.sink.error(
                    "unsupported",
                    f"unsupported module-level statement {type(stmt).__name__}",
                    stmt,
                    self._module,
                )

    # ==================================================================
    # Declarations
    # ==================================================================
    def _register_import(self, stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == "math":
                    self._math_names.add(alias.asname or "math")
            return
        # from-imports: names from repro or sibling modules; both resolve
        # through the global declaration table, so nothing to record.

    def _collect_module_constants(self, tree: ast.Module) -> Dict[str, QualifiedType]:
        """Module-level literal constants, visible inside every function.

        Only precise literals qualify — module-level code runs outside
        the simulator, so nothing approximate can be created there.
        """
        constants: Dict[str, QualifiedType] = {}
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target = stmt.target
            else:
                continue
            if isinstance(target, ast.Name) and isinstance(
                stmt.value, (ast.Constant, ast.UnaryOp)
            ):
                value = stmt.value
                if isinstance(value, ast.UnaryOp):
                    if not isinstance(value.operand, ast.Constant):
                        continue
                    value = value.operand
                literal = value.value
                if isinstance(literal, bool):
                    constants[target.id] = BOOL
                elif isinstance(literal, int):
                    constants[target.id] = INT
                elif isinstance(literal, float):
                    constants[target.id] = FLOAT
                elif isinstance(literal, str):
                    constants[target.id] = STR
        return constants

    @staticmethod
    def _is_main_guard(stmt: ast.If) -> bool:
        test = stmt.test
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
        )

    def _check_class(self, info: ClassInfo) -> None:
        self._current_class = info
        for method in info.methods.values():
            if method.is_approx_variant:
                base = info.methods.get(method.base_name)
                if base is not None and base.arity != method.arity:
                    self.sink.warning(
                        "overload",
                        f"{info.name}.{method.name} arity differs from "
                        f"{method.base_name}; dispatch would be unsound",
                        method.node,
                        self._module,
                    )
                if not info.approximable:
                    self.sink.error(
                        "not-approximable",
                        f"{info.name}.{method.name}: _APPROX methods require "
                        f"an @approximable class",
                        method.node,
                        self._module,
                    )
            self._check_function(method, owner=info)
        self._current_class = None

    def _check_function(self, sig: FunctionSig, owner: Optional[ClassInfo] = None) -> None:
        env = _Env()
        self._current_sig = sig
        self._receiver = None
        self._recording = True
        if owner is not None:
            self._receiver = sig.receiver_qualifier or PRECISE
            env.bind("self", reference(owner.name, self._receiver), declared=True)
        for name, ptype in sig.params:
            env.bind(name, ptype, declared=True)
        self._check_block(sig.node.body, env)
        self._current_sig = None
        self._receiver = None
        self._recording = False

    # ==================================================================
    # Statements
    # ==================================================================
    def _check_block(self, stmts: List[ast.stmt], env: _Env) -> None:
        for stmt in stmts:
            self._check_stmt(stmt, env)

    def _check_stmt(self, stmt: ast.stmt, env: _Env) -> None:
        handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if handler is None:
            self.sink.error(
                "unsupported",
                f"unsupported statement {type(stmt).__name__}",
                stmt,
                self._module,
            )
            return
        handler(stmt, env)

    # --- assignments ---------------------------------------------------
    def _stmt_AnnAssign(self, stmt: ast.AnnAssign, env: _Env) -> None:
        if not isinstance(stmt.target, ast.Name):
            self.sink.error("unsupported", "annotated non-name target", stmt, self._module)
            return
        in_approximable = bool(self._current_class and self._current_class.approximable)
        declared = parse_annotation(
            stmt.annotation, self.sink, self._module, in_approximable=in_approximable
        )
        env.bind(stmt.target.id, declared, declared=True)
        if stmt.value is not None:
            value_type = self._expr(stmt.value, env, expected=self._expected_for(declared))
            self._check_assignable(value_type, declared, stmt)
        self._record_local_store(stmt.target, declared)

    def _stmt_Assign(self, stmt: ast.Assign, env: _Env) -> None:
        if len(stmt.targets) != 1:
            self.sink.error("unsupported", "chained assignment", stmt, self._module)
            return
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            existing = env.lookup(target.id)
            expected = self._expected_for(existing) if existing is not None else None
            value_type = self._expr(stmt.value, env, expected=expected)
            if existing is None:
                # First assignment declares the local with the value's
                # type (the Python analogue of Java's mandatory local
                # declarations; the paper's default is precise and so is
                # an unannotated inference from precise values).
                inferred = value_type
                if inferred.qualifier is LOST:
                    inferred = inferred.with_qualifier(TOP)
                env.bind(target.id, inferred)
                self._record_local_store(target, inferred)
                return
            self._check_assignable(value_type, existing, stmt)
            self._record_local_store(target, existing)
            return
        if isinstance(target, ast.Subscript):
            self._check_subscript_store(target, stmt.value, env, stmt)
            return
        if isinstance(target, ast.Attribute):
            self._check_field_store(target, stmt.value, env, stmt)
            return
        if isinstance(target, ast.Tuple):
            value_type = self._expr(stmt.value, env)
            if value_type.qualifier is not PRECISE:
                self.sink.error(
                    "unsupported", "tuple assignment of approximate data", stmt, self._module
                )
            for element in target.elts:
                if isinstance(element, ast.Name):
                    env.bind(element.id, DYNAMIC)
                else:
                    self.sink.error("unsupported", "complex tuple target", stmt, self._module)
            return
        self.sink.error("unsupported", "unsupported assignment target", stmt, self._module)

    def _stmt_AugAssign(self, stmt: ast.AugAssign, env: _Env) -> None:
        op_name = _BINOP_NAMES.get(type(stmt.op))
        if op_name is None:
            self.sink.error("unsupported", "unsupported augmented operator", stmt, self._module)
            return
        target = stmt.target
        if isinstance(target, ast.Name):
            target_type = env.lookup(target.id)
            if target_type is None:
                self.sink.error(
                    "unknown-name", f"augmented assignment to undefined {target.id}", stmt, self._module
                )
                return
        elif isinstance(target, ast.Subscript):
            target_type = self._subscript_element_type(target, env, record=True)
            if target_type is None:
                return
        elif isinstance(target, ast.Attribute):
            target_type = self._field_target_type(target, env, for_write=True)
            if target_type is None:
                return
        else:
            self.sink.error("unsupported", "unsupported augmented target", stmt, self._module)
            return

        expected = self._expected_for(target_type)
        value_type = self._expr(stmt.value, env, expected=expected)
        if not (target_type.is_numeric or target_type.name == "dynamic"):
            if not value_type.is_numeric and value_type.name != "dynamic":
                self.sink.error("incompatible", "augmented op on non-numeric", stmt, self._module)
                return
        result = self._numeric_result(target_type, value_type, expected, stmt, op_name)
        self._check_assignable(result, target_type, stmt)
        if isinstance(target, ast.Name):
            self._record_local_store(target, target_type)
            # The implicit read of the old value:
            self._record_local_fact(target, target_type, role="local-load")

    # --- control flow ----------------------------------------------------
    def _check_condition(self, test: ast.expr, env: _Env, what: str) -> None:
        cond_type = self._expr(test, env)
        if cond_type.qualifier is not PRECISE:
            self.sink.error(
                "condition",
                f"approximate value controls {what}; wrap with endorse(...)",
                test,
                self._module,
            )

    def _stmt_If(self, stmt: ast.If, env: _Env) -> None:
        self._check_condition(stmt.test, env, "an if statement")
        self._check_block(stmt.body, env)
        self._check_block(stmt.orelse, env)

    def _stmt_While(self, stmt: ast.While, env: _Env) -> None:
        self._check_condition(stmt.test, env, "a while loop")
        self._check_block(stmt.body, env)
        self._check_block(stmt.orelse, env)

    def _stmt_For(self, stmt: ast.For, env: _Env) -> None:
        if not isinstance(stmt.target, ast.Name):
            self.sink.error("unsupported", "complex for-loop target", stmt, self._module)
            return
        iter_node = stmt.iter
        if isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name) and iter_node.func.id == "range":
            for arg in iter_node.args:
                arg_type = self._expr(arg, env)
                if arg_type.qualifier is not PRECISE:
                    self.sink.error(
                        "condition", "range() bound must be precise", arg, self._module
                    )
            env.bind(stmt.target.id, INT)
            # Loop induction arithmetic is precise integer work; the
            # simulator counts one int op per iteration (paper Sec. 6.1:
            # induction increments limit integer approximation).
            self._put_fact(stmt, {"role": "range"})
        else:
            iterable = self._expr(iter_node, env)
            if iterable.is_array:
                element = iterable.element
                env.bind(stmt.target.id, element)
                if element is not None and element.is_primitive:
                    self._put_fact(stmt, {
                        "role": "foreach",
                        "kind": element.name,
                        "approx": self._flag(element.qualifier),
                    })
            elif iterable.name in ("dynamic", "str", "range"):
                env.bind(stmt.target.id, DYNAMIC)
            else:
                self.sink.error(
                    "unsupported", f"cannot iterate over {iterable}", stmt, self._module
                )
                env.bind(stmt.target.id, DYNAMIC)
        self._check_block(stmt.body, env)
        self._check_block(stmt.orelse, env)

    def _stmt_Return(self, stmt: ast.Return, env: _Env) -> None:
        sig = self._current_sig
        declared = sig.returns if sig is not None else DYNAMIC
        if stmt.value is None:
            if sig is not None and not declared.is_void and declared.name != "dynamic":
                self.sink.error("return-type", "missing return value", stmt, self._module)
            return
        expected = self._expected_for(declared) if not declared.is_void else None
        value_type = self._expr(stmt.value, env, expected=expected)
        if declared.is_void:
            if value_type.qualifier is not PRECISE and value_type.name != "dynamic":
                self.sink.error(
                    "flow", "returning approximate data from a void function", stmt, self._module
                )
            return
        self._check_assignable(value_type, declared, stmt, code="return-type")

    def _stmt_Expr(self, stmt: ast.Expr, env: _Env) -> None:
        self._expr(stmt.value, env)

    def _stmt_Pass(self, stmt: ast.Pass, env: _Env) -> None:
        return

    def _stmt_Break(self, stmt: ast.Break, env: _Env) -> None:
        return

    def _stmt_Continue(self, stmt: ast.Continue, env: _Env) -> None:
        return

    def _stmt_Assert(self, stmt: ast.Assert, env: _Env) -> None:
        self._check_condition(stmt.test, env, "an assert")
        if stmt.msg is not None:
            self._expr(stmt.msg, env)

    def _stmt_Raise(self, stmt: ast.Raise, env: _Env) -> None:
        if stmt.exc is not None:
            self._expr(stmt.exc, env)

    def _stmt_Try(self, stmt: ast.Try, env: _Env) -> None:
        self._check_block(stmt.body, env)
        for handler in stmt.handlers:
            if handler.name:
                env.bind(handler.name, DYNAMIC)
            self._check_block(handler.body, env)
        self._check_block(stmt.orelse, env)
        self._check_block(stmt.finalbody, env)

    def _stmt_FunctionDef(self, stmt: ast.FunctionDef, env: _Env) -> None:
        self.sink.error("unsupported", "nested function definitions", stmt, self._module)

    def _stmt_Import(self, stmt: ast.Import, env: _Env) -> None:
        self._register_import(stmt)

    def _stmt_ImportFrom(self, stmt: ast.ImportFrom, env: _Env) -> None:
        self._register_import(stmt)

    def _stmt_Global(self, stmt: ast.Global, env: _Env) -> None:
        self.sink.error("unsupported", "global statement", stmt, self._module)

    # ==================================================================
    # Expressions
    # ==================================================================
    def _expr(self, node: ast.expr, env: _Env, expected: Optional[Qualifier] = None) -> QualifiedType:
        handler = getattr(self, f"_expr_{type(node).__name__}", None)
        if handler is None:
            self.sink.error(
                "unsupported", f"unsupported expression {type(node).__name__}", node, self._module
            )
            return DYNAMIC
        result = handler(node, env, expected)
        self.types[id(node)] = result
        return result

    # --- leaves ----------------------------------------------------------
    def _expr_Constant(self, node: ast.Constant, env: _Env, expected) -> QualifiedType:
        value = node.value
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return FLOAT
        if isinstance(value, str):
            return STR
        if value is None:
            return NULL
        return DYNAMIC

    def _expr_Name(self, node: ast.Name, env: _Env, expected) -> QualifiedType:
        bound = env.lookup(node.id)
        if bound is not None:
            self._record_local_fact(node, bound, role="local-load")
            return bound
        if node.id in self._module_constants:
            # Module constants are globals, not SRAM-resident locals:
            # typed precisely, never instrumented.
            return self._module_constants[node.id]
        if node.id in self._math_names:
            return reference("__math__", PRECISE)
        if self.decls.lookup_function(node.id) is not None:
            return reference("__function__:" + node.id, PRECISE)
        if self.decls.lookup_class(node.id) is not None:
            return reference("__class__:" + node.id, PRECISE)
        if node.id in ("True", "False"):
            return BOOL
        if node.id in _KNOWN_GLOBALS:
            return DYNAMIC
        # Unknown names are tolerated as dynamic (imports from outside
        # the checked program) — approximate data can never *become*
        # dynamic, so isolation is preserved.
        return DYNAMIC

    # --- operators ---------------------------------------------------
    def _flag(self, qualifier: Qualifier):
        """Instrumentation flag for an operation qualifier."""
        if qualifier is APPROX:
            return True
        if qualifier is CONTEXT:
            return "context"
        return False

    def _numeric_result(
        self,
        left: QualifiedType,
        right: QualifiedType,
        expected: Optional[Qualifier],
        node: ast.AST,
        op_name: str,
        is_compare: bool = False,
    ) -> QualifiedType:
        """Type an arithmetic/comparison node and record its fact."""
        if left.name == "dynamic" or right.name == "dynamic":
            # Dynamic operands: no instrumentation, result is dynamic.
            # Approximate data may not mix into unchecked arithmetic.
            other = right if left.name == "dynamic" else left
            if other.qualifier is APPROX or other.qualifier is CONTEXT:
                self.sink.error(
                    "approx-escape",
                    "approximate operand in unchecked (dynamic) arithmetic",
                    node,
                    self._module,
                )
            return BOOL if is_compare else DYNAMIC

        if not left.is_numeric or not right.is_numeric:
            if left.is_bool and right.is_bool and is_compare:
                qual = qualifier_lub(left.qualifier, right.qualifier)
                return primitive("bool", qual)
            self.sink.error(
                "incompatible",
                f"operator {op_name} on {left} and {right}",
                node,
                self._module,
            )
            return BOOL if is_compare else DYNAMIC

        kind = "float" if "float" in (left.name, right.name) else "int"
        if op_name == "div" and isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            kind = "float"

        qual = self._operation_qualifier(left.qualifier, right.qualifier, expected)
        self._put_fact(node, {
            "role": "compare" if is_compare else "binop",
            "op": op_name,
            "kind": kind,
            "approx": self._flag(qual),
        })
        if is_compare:
            return primitive("bool", qual)
        return primitive(kind, qual)

    def _operation_qualifier(
        self, left: Qualifier, right: Qualifier, expected: Optional[Qualifier]
    ) -> Qualifier:
        """Which overload of the operator applies (Sections 2.3, 2.5.1)."""
        if APPROX in (left, right):
            return APPROX
        if expected is APPROX:
            # Bidirectional typing: an approximate result context selects
            # the approximate operator even over precise operands.
            return APPROX
        if CONTEXT in (left, right):
            # A context operand makes the operation context-qualified:
            # the dispatch resolves per instance at run time.
            return CONTEXT
        if TOP in (left, right) or LOST in (left, right):
            # Cannot operate on top/lost-qualified values directly.
            return LOST
        if expected is CONTEXT:
            return CONTEXT
        return PRECISE

    def _expr_BinOp(self, node: ast.BinOp, env: _Env, expected) -> QualifiedType:
        op_name = _BINOP_NAMES.get(type(node.op))
        if op_name is None:
            self.sink.error("unsupported", "unsupported binary operator", node, self._module)
            return DYNAMIC

        # Array replication: ``[x] * n`` / ``arr * n`` allocates.
        left_type = self._expr(node.left, env, expected=expected)
        if left_type.is_array and op_name == "mul":
            length_type = self._expr(node.right, env)
            if length_type.qualifier is not PRECISE:
                self.sink.error("subscript", "array length must be precise", node, self._module)
            self._record_allocation(node, left_type)
            return left_type
        if left_type.name == "str" and op_name in ("add", "mul", "mod"):
            self._expr(node.right, env)
            return STR

        right_type = self._expr(node.right, env, expected=expected)
        result = self._numeric_result(left_type, right_type, expected, node, op_name)
        if result.qualifier is LOST:
            self.sink.error(
                "incompatible", "arithmetic on top-qualified values", node, self._module
            )
            return result.with_qualifier(TOP)
        return result

    def _expr_UnaryOp(self, node: ast.UnaryOp, env: _Env, expected) -> QualifiedType:
        if isinstance(node.op, ast.Not):
            operand = self._expr(node.operand, env)
            if operand.qualifier is APPROX or operand.qualifier is CONTEXT:
                qual = operand.qualifier
            else:
                qual = PRECISE
            return primitive("bool", qual)
        operand = self._expr(node.operand, env, expected=expected)
        if operand.name == "dynamic":
            return DYNAMIC
        if not operand.is_numeric:
            self.sink.error("incompatible", f"unary op on {operand}", node, self._module)
            return DYNAMIC
        op_name = "neg" if isinstance(node.op, (ast.USub, ast.UAdd)) else "inv"
        if isinstance(node.op, ast.UAdd):
            return operand
        qual = self._operation_qualifier(operand.qualifier, operand.qualifier, expected)
        self._put_fact(node, {
            "role": "unop",
            "op": op_name,
            "kind": operand.name,
            "approx": self._flag(qual),
        })
        return operand.with_qualifier(qual)

    def _expr_Compare(self, node: ast.Compare, env: _Env, expected) -> QualifiedType:
        if len(node.ops) != 1:
            self.sink.error("unsupported", "chained comparison", node, self._module)
            return BOOL
        op = node.ops[0]
        left_type = self._expr(node.left, env)
        right_type = self._expr(node.comparators[0], env)
        if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
            for side in (left_type, right_type):
                if side.qualifier is APPROX:
                    self.sink.error(
                        "incompatible", "identity/membership test on approximate data", node, self._module
                    )
            return BOOL
        op_name = _CMP_NAMES.get(type(op))
        if op_name is None:
            self.sink.error("unsupported", "unsupported comparison", node, self._module)
            return BOOL
        if left_type.is_reference or right_type.is_reference:
            if left_type.name in ("dynamic", "str", "null") or right_type.name in ("dynamic", "str", "null"):
                if left_type.qualifier is APPROX or right_type.qualifier is APPROX:
                    self.sink.error(
                        "approx-escape", "approximate operand in unchecked comparison", node, self._module
                    )
                return BOOL
        return self._numeric_result(left_type, right_type, None, node, op_name, is_compare=True)

    def _expr_BoolOp(self, node: ast.BoolOp, env: _Env, expected) -> QualifiedType:
        # and/or are short-circuiting selections, not ALU operations;
        # the result is approximate as soon as any operand may be.
        qual = PRECISE
        for value in node.values:
            value_type = self._expr(value, env)
            if value_type.qualifier is APPROX:
                qual = APPROX
            elif value_type.qualifier is CONTEXT and qual is PRECISE:
                qual = CONTEXT
        return primitive("bool", qual)

    def _expr_IfExp(self, node: ast.IfExp, env: _Env, expected) -> QualifiedType:
        self._check_condition(node.test, env, "a conditional expression")
        then_type = self._expr(node.body, env, expected=expected)
        else_type = self._expr(node.orelse, env, expected=expected)
        joined = type_lub(then_type, else_type, self.decls.subclasses)
        if joined is None:
            self.sink.error(
                "incompatible",
                f"branches have incompatible types {then_type} and {else_type}",
                node,
                self._module,
            )
            return DYNAMIC
        return joined

    # --- containers ----------------------------------------------------
    def _expr_List(self, node: ast.List, env: _Env, expected) -> QualifiedType:
        if not node.elts:
            element = primitive("float", expected or PRECISE) if expected else DYNAMIC
            array = array_of(element if element.is_primitive else DYNAMIC)
            self._record_allocation(node, array)
            return array
        element_types = [self._expr(e, env, expected=expected) for e in node.elts]
        joined = element_types[0]
        for et in element_types[1:]:
            lub = type_lub(joined, et, self.decls.subclasses)
            if lub is None:
                self.sink.error("incompatible", "heterogeneous array literal", node, self._module)
                return array_of(DYNAMIC)
            joined = lub
        if expected in (APPROX, CONTEXT) and joined.is_primitive:
            joined = joined.with_qualifier(expected)
        array = array_of(joined)
        self._record_allocation(node, array)
        return array

    def _expr_Tuple(self, node: ast.Tuple, env: _Env, expected) -> QualifiedType:
        for element in node.elts:
            etype = self._expr(element, env)
            if etype.qualifier is APPROX:
                self.sink.error(
                    "unsupported", "approximate data inside a tuple", node, self._module
                )
        return DYNAMIC

    def _record_allocation(self, node: ast.expr, array_type: QualifiedType) -> None:
        element = array_type.element
        if element is None or not element.is_primitive:
            return
        self._put_fact(node, {
            "role": "alloc",
            "kind": element.name,
            "approx": self._flag(element.qualifier),
        })

    # --- subscripts ------------------------------------------------------
    def _subscript_element_type(
        self, node: ast.Subscript, env: _Env, record: bool
    ) -> Optional[QualifiedType]:
        container = self._expr(node.value, env)
        index_type = self._expr(node.slice, env)
        if isinstance(node.slice, ast.Slice):
            self.sink.error("unsupported", "array slices", node, self._module)
            return None
        if index_type.qualifier is not PRECISE:
            self.sink.error(
                "subscript",
                "approximate value used as array index; endorse it first",
                node,
                self._module,
            )
        if container.is_array:
            element = container.element or DYNAMIC
            if record and element.is_primitive:
                self._put_fact(node, {
                    "role": "subscript",
                    "kind": element.name,
                    "approx": self._flag(element.qualifier),
                })
            return element
        if container.name in ("dynamic", "str"):
            return DYNAMIC
        self.sink.error("incompatible", f"{container} is not subscriptable", node, self._module)
        return None

    def _expr_Subscript(self, node: ast.Subscript, env: _Env, expected) -> QualifiedType:
        element = self._subscript_element_type(node, env, record=True)
        return element if element is not None else DYNAMIC

    def _check_subscript_store(
        self, target: ast.Subscript, value: ast.expr, env: _Env, stmt: ast.stmt
    ) -> None:
        element = self._subscript_element_type(target, env, record=True)
        expected = self._expected_for(element) if element is not None else None
        value_type = self._expr(value, env, expected=expected)
        if element is not None:
            self._check_assignable(value_type, element, stmt)

    # --- attributes ------------------------------------------------------
    def _field_target_type(
        self, node: ast.Attribute, env: _Env, for_write: bool
    ) -> Optional[QualifiedType]:
        receiver = self._expr(node.value, env)
        if receiver.name == "__math__":
            if node.attr in _MATH_CONSTANTS:
                return FLOAT
            return DYNAMIC
        if receiver.is_array and node.attr == "length":
            return INT
        if receiver.is_reference and receiver.name not in ("dynamic", "str", "null"):
            info = self.decls.lookup_class(receiver.name)
            if info is None:
                return DYNAMIC
            declared = self.decls.field_type(receiver.name, node.attr)
            if declared is None:
                if self.decls.method_sig(receiver.name, node.attr) is not None:
                    return reference("__method__", PRECISE)
                self.sink.error(
                    "unknown-field",
                    f"class {receiver.name} has no field {node.attr}",
                    node,
                    self._module,
                )
                return None
            adapted = adapt_type(receiver.qualifier, declared)
            if for_write and contains_lost(adapted):
                self.sink.error(
                    "lost-write",
                    f"cannot write field {node.attr} through a "
                    f"{receiver.qualifier}-qualified receiver (precision lost)",
                    node,
                    self._module,
                )
            if info.approximable or self._class_chain_approximable(receiver.name):
                self._put_fact(node, {
                    "role": "field",
                    "name": node.attr,
                    "write": for_write,
                })
            return adapted
        return DYNAMIC

    def _class_chain_approximable(self, name: str) -> bool:
        info = self.decls.lookup_class(name)
        while info is not None:
            if info.approximable:
                return True
            info = self.decls.lookup_class(info.base) if info.base else None
        return False

    def _expr_Attribute(self, node: ast.Attribute, env: _Env, expected) -> QualifiedType:
        result = self._field_target_type(node, env, for_write=False)
        return result if result is not None else DYNAMIC

    def _check_field_store(
        self, target: ast.Attribute, value: ast.expr, env: _Env, stmt: ast.stmt
    ) -> None:
        declared = self._field_target_type(target, env, for_write=True)
        expected = self._expected_for(declared) if declared is not None else None
        value_type = self._expr(value, env, expected=expected)
        if declared is not None and declared.name != "dynamic":
            self._check_assignable(value_type, declared, stmt)

    # --- calls -----------------------------------------------------------
    def _expr_Call(self, node: ast.Call, env: _Env, expected) -> QualifiedType:
        if node.keywords:
            self.sink.error("unsupported", "keyword arguments", node, self._module)
        func = node.func

        if isinstance(func, ast.Name):
            return self._call_by_name(node, func.id, env, expected)
        if isinstance(func, ast.Attribute):
            return self._call_method(node, func, env, expected)
        self.sink.error("unsupported", "unsupported call target", node, self._module)
        return DYNAMIC

    def _call_by_name(self, node: ast.Call, name: str, env: _Env, expected) -> QualifiedType:
        if name == "endorse":
            return self._call_endorse(node, env)
        if name in ("Approx", "Top"):
            if len(node.args) != 1:
                self.sink.error("arity", f"{name}() takes one argument", node, self._module)
                return DYNAMIC
            inner = self._expr(node.args[0], env, expected=APPROX if name == "Approx" else None)
            target_qual = APPROX if name == "Approx" else TOP
            if not inner.is_primitive:
                self.sink.error("incompatible", f"{name}() upcast on non-primitive", node, self._module)
                return inner
            self._put_fact(node, {"role": "upcast"})
            return inner.with_qualifier(target_qual)
        if name == "Precise":
            self.sink.error(
                "flow", "Precise() downcast is not allowed; use endorse()", node, self._module
            )
            return DYNAMIC

        if name in _BUILTIN_HANDLERS:
            return _BUILTIN_HANDLERS[name](self, node, env, expected)

        sig = self.decls.lookup_function(name)
        if sig is not None:
            return self._check_call_against(node, sig, receiver_qual=None, env=env)

        info = self.decls.lookup_class(name)
        if info is not None:
            return self._call_constructor(node, info, env, expected)

        # Unknown function (library / builtin): precise arguments only.
        for arg in node.args:
            arg_type = self._expr(arg, env)
            if arg_type.qualifier is not PRECISE:
                self.sink.error(
                    "approx-escape",
                    f"approximate argument passed to unchecked function {name}()",
                    arg,
                    self._module,
                )
        return DYNAMIC

    def _call_endorse(self, node: ast.Call, env: _Env) -> QualifiedType:
        if len(node.args) != 1:
            self.sink.error("arity", "endorse() takes exactly one argument", node, self._module)
            return DYNAMIC
        inner = self._expr(node.args[0], env)
        self._put_fact(node, {"role": "endorse"})
        if inner.is_primitive:
            return inner.endorsed()
        if inner.is_array and inner.element is not None:
            return array_of(inner.element.endorsed())
        return inner.endorsed()

    def _call_constructor(
        self, node: ast.Call, info: ClassInfo, env: _Env, expected
    ) -> QualifiedType:
        instance_qual = PRECISE
        if expected is APPROX:
            if info.approximable or self._class_chain_approximable(info.name):
                instance_qual = APPROX
            else:
                self.sink.error(
                    "not-approximable",
                    f"class {info.name} is not @approximable; cannot create an "
                    f"approximate instance",
                    node,
                    self._module,
                )
        elif expected is CONTEXT:
            instance_qual = CONTEXT

        init = self.decls.method_sig(info.name, "__init__")
        if init is not None:
            self._check_call_against(node, init, receiver_qual=instance_qual, env=env, returns_override=reference(info.name, instance_qual))
        else:
            if node.args:
                self.sink.error("arity", f"{info.name}() takes no arguments", node, self._module)
        # Register every program-class instance with the simulator so
        # precise objects contribute precise DRAM byte-ticks (Figure 3).
        specs = self._collect_field_specs(info.name)
        if specs or info.approximable or self._class_chain_approximable(info.name):
            self._put_fact(node, {
                "role": "new",
                "class": info.name,
                "approx": self._flag(instance_qual),
                "specs": specs,
            })
        return reference(info.name, instance_qual)

    def _collect_field_specs(self, class_name: str) -> List[Tuple[str, str, str]]:
        specs: List[Tuple[str, str, str]] = []
        chain: List[ClassInfo] = []
        info = self.decls.lookup_class(class_name)
        while info is not None:
            chain.append(info)
            info = self.decls.lookup_class(info.base) if info.base else None
        for info in reversed(chain):
            specs.extend(info.field_specs())
        return specs

    def _call_method(self, node: ast.Call, func: ast.Attribute, env: _Env, expected) -> QualifiedType:
        receiver_node = func.value
        # math.fn(...) special form.
        if isinstance(receiver_node, ast.Name) and receiver_node.id in self._math_names:
            return self._call_math(node, func.attr, env, expected)

        receiver = self._expr(receiver_node, env)
        if receiver.name in ("dynamic", "str", "null") or not receiver.is_reference:
            if receiver.is_array:
                self.sink.error(
                    "unsupported", "method calls on arrays", node, self._module
                )
                return DYNAMIC
            for arg in node.args:
                arg_type = self._expr(arg, env)
                if arg_type.qualifier is not PRECISE:
                    self.sink.error(
                        "approx-escape",
                        f"approximate argument to unchecked method .{func.attr}()",
                        arg,
                        self._module,
                    )
            return DYNAMIC

        info = self.decls.lookup_class(receiver.name)
        if info is None:
            return DYNAMIC
        sig = self.decls.method_sig(receiver.name, func.attr)
        if sig is None:
            self.sink.error(
                "unknown-method",
                f"class {receiver.name} has no method {func.attr}",
                node,
                self._module,
            )
            return DYNAMIC

        # Algorithmic approximation: dispatch to the _APPROX variant when
        # the receiver may be approximate and a variant exists.
        has_variant = self.decls.class_has_approx_variant(receiver.name, func.attr)
        if has_variant and receiver.qualifier in (APPROX, CONTEXT):
            variant = self.decls.method_sig(receiver.name, func.attr + APPROX_SUFFIX)
            if receiver.qualifier is APPROX:
                sig = variant
                self._put_fact(node, {"role": "invoke", "dispatch": "approx", "method": func.attr})
            else:
                self._put_fact(node, {"role": "invoke", "dispatch": "context", "method": func.attr})
        return self._check_call_against(node, sig, receiver_qual=receiver.qualifier, env=env)

    def _call_math(self, node: ast.Call, fn: str, env: _Env, expected) -> QualifiedType:
        if fn not in _MATH_FUNCTIONS:
            for arg in node.args:
                arg_type = self._expr(arg, env)
                if arg_type.qualifier is not PRECISE:
                    self.sink.error(
                        "approx-escape",
                        f"approximate argument to unchecked math.{fn}()",
                        arg,
                        self._module,
                    )
            return DYNAMIC
        qual = PRECISE
        for arg in node.args:
            arg_type = self._expr(arg, env, expected=expected)
            if arg_type.name == "dynamic":
                continue
            if not arg_type.is_numeric:
                self.sink.error("incompatible", f"math.{fn} on {arg_type}", arg, self._module)
                continue
            if arg_type.qualifier in (APPROX, CONTEXT):
                qual = arg_type.qualifier if qual is PRECISE else APPROX
        if qual is PRECISE and expected is APPROX:
            qual = APPROX
        if qual in (APPROX, CONTEXT):
            self._put_fact(node, {
                "role": "math",
                "fn": fn,
                "approx": self._flag(qual),
            })
        result_name = "int" if fn in _MATH_INT_RESULT else "float"
        return primitive(result_name, qual)

    def _check_call_against(
        self,
        node: ast.Call,
        sig: FunctionSig,
        receiver_qual: Optional[Qualifier],
        env: _Env,
        returns_override: Optional[QualifiedType] = None,
    ) -> QualifiedType:
        if len(node.args) != len(sig.params):
            self.sink.error(
                "arity",
                f"{sig.name}() expects {len(sig.params)} arguments, got {len(node.args)}",
                node,
                self._module,
            )
        for arg, (pname, ptype) in zip(node.args, sig.params):
            adapted = ptype
            if receiver_qual is not None:
                adapted = adapt_type(receiver_qual, ptype)
            arg_type = self._expr(arg, env, expected=self._expected_for(adapted))
            self._check_assignable(arg_type, adapted, arg, code="flow")
        returns = returns_override if returns_override is not None else sig.returns
        if receiver_qual is not None:
            returns = adapt_type(receiver_qual, returns)
        return returns

    # ==================================================================
    # Helpers
    # ==================================================================
    def _put_fact(self, node: ast.AST, fact: dict) -> None:
        """Record an instrumentation fact (inside function bodies only).

        Module-level code runs at program-load time, outside any
        Simulator context, so it must never be instrumented.
        """
        if self._recording:
            self.facts[id(node)] = fact

    def _expected_for(self, declared: Optional[QualifiedType]) -> Optional[Qualifier]:
        if declared is None:
            return None
        if declared.is_array and declared.element is not None:
            return self._expected_for(declared.element)
        if declared.qualifier in (APPROX, CONTEXT):
            return declared.qualifier
        return None

    def _check_assignable(
        self,
        value: QualifiedType,
        target: QualifiedType,
        node: ast.AST,
        code: str = "flow",
    ) -> None:
        if value.name == "dynamic" or target.name == "dynamic":
            if value.qualifier in (APPROX, CONTEXT) and target.name == "dynamic":
                self.sink.error(
                    "approx-escape",
                    "approximate value flows into unchecked (dynamic) storage",
                    node,
                    self._module,
                )
            return
        if value.name == "null" and (target.is_reference or target.is_array):
            return
        if target.is_void:
            return
        if is_subtype(value, target, self.decls.subclasses):
            return
        if (
            value.is_primitive
            and target.is_primitive
            and value.qualifier in (APPROX, CONTEXT, TOP)
            and target.qualifier is PRECISE
        ):
            self.sink.error(
                code,
                f"cannot assign {value} to {target}; use endorse(...)",
                node,
                self._module,
            )
            return
        self.sink.error(
            "incompatible" if code == "flow" else code,
            f"cannot assign {value} to {target}",
            node,
            self._module,
        )

    def _record_local_store(self, target: ast.Name, declared: QualifiedType) -> None:
        self._record_local_fact(target, declared, role="local-store")

    def _record_local_fact(self, node: ast.Name, bound: QualifiedType, role: str) -> None:
        # Precise primitive locals are recorded too: their SRAM accesses
        # contribute the *precise* byte-ticks of Figure 3's fractions.
        if not bound.is_primitive:
            return
        if bound.qualifier in (TOP, LOST):
            return
        flag = self._flag(bound.qualifier)
        self._put_fact(node, {
            "role": role,
            "kind": bound.name,
            "approx": flag,
            "name": node.id,
        })


# ----------------------------------------------------------------------
# Builtin call handlers
# ----------------------------------------------------------------------
def _builtin_len(checker: Checker, node: ast.Call, env: _Env, expected) -> QualifiedType:
    if len(node.args) != 1:
        checker.sink.error("arity", "len() takes one argument", node, checker._module)
        return INT
    inner = checker._expr(node.args[0], env)
    if not (inner.is_array or inner.name in ("dynamic", "str")):
        checker.sink.error("incompatible", f"len() of {inner}", node, checker._module)
    return INT


def _builtin_range(checker: Checker, node: ast.Call, env: _Env, expected) -> QualifiedType:
    for arg in node.args:
        arg_type = checker._expr(arg, env)
        if arg_type.qualifier is not PRECISE:
            checker.sink.error("condition", "range() bound must be precise", arg, checker._module)
    return RANGE


def _conversion(kind: str):
    def handler(checker: Checker, node: ast.Call, env: _Env, expected) -> QualifiedType:
        if len(node.args) != 1:
            checker.sink.error("arity", f"{kind}() takes one argument", node, checker._module)
            return primitive(kind) if kind != "bool" else BOOL
        inner = checker._expr(node.args[0], env, expected=expected)
        if inner.name == "str" or inner.name == "dynamic":
            return primitive(kind, PRECISE)
        if not inner.is_primitive:
            checker.sink.error("incompatible", f"{kind}() of {inner}", node, checker._module)
            return primitive(kind, PRECISE)
        qual = inner.qualifier
        if qual in (APPROX, CONTEXT) and kind in ("int", "float"):
            checker._put_fact(node, {
                "role": "convert",
                "kind": kind,
                "approx": checker._flag(qual),
            })
        if kind == "bool" and qual is not PRECISE:
            return primitive("bool", qual)
        return primitive(kind, qual)

    return handler


def _builtin_abs(checker: Checker, node: ast.Call, env: _Env, expected) -> QualifiedType:
    if len(node.args) != 1:
        checker.sink.error("arity", "abs() takes one argument", node, checker._module)
        return DYNAMIC
    inner = checker._expr(node.args[0], env, expected=expected)
    if inner.name == "dynamic":
        return DYNAMIC
    if not inner.is_numeric:
        checker.sink.error("incompatible", f"abs() of {inner}", node, checker._module)
        return DYNAMIC
    qual = checker._operation_qualifier(inner.qualifier, inner.qualifier, expected)
    if qual in (APPROX, CONTEXT):
        checker._put_fact(node, {
            "role": "unop-call",
            "op": "abs",
            "kind": inner.name,
            "approx": checker._flag(qual),
        })
    return inner.with_qualifier(qual)


def _builtin_minmax(checker: Checker, node: ast.Call, env: _Env, expected) -> QualifiedType:
    if not node.args:
        checker.sink.error("arity", "min()/max() need arguments", node, checker._module)
        return DYNAMIC
    joined: Optional[QualifiedType] = None
    for arg in node.args:
        arg_type = checker._expr(arg, env, expected=expected)
        if arg_type.name == "dynamic":
            return DYNAMIC
        joined = arg_type if joined is None else type_lub(joined, arg_type, checker.decls.subclasses)
        if joined is None:
            checker.sink.error("incompatible", "min()/max() on mixed types", node, checker._module)
            return DYNAMIC
    return joined


def _builtin_print(checker: Checker, node: ast.Call, env: _Env, expected) -> QualifiedType:
    for arg in node.args:
        arg_type = checker._expr(arg, env)
        if arg_type.qualifier is not PRECISE:
            checker.sink.error(
                "approx-escape",
                "printing approximate data; endorse it first (output is precise state)",
                arg,
                checker._module,
            )
    return VOID


_BUILTIN_HANDLERS = {
    "len": _builtin_len,
    "range": _builtin_range,
    "int": _conversion("int"),
    "float": _conversion("float"),
    "bool": _conversion("bool"),
    "abs": _builtin_abs,
    "min": _builtin_minmax,
    "max": _builtin_minmax,
    "print": _builtin_print,
}

_KNOWN_GLOBALS = {"None", "NotImplemented", "Ellipsis", "Exception", "ValueError", "IndexError"}


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------
def check_modules(sources: Dict[str, str]) -> CheckResult:
    """Parse and check a program given as {module name: source text}."""
    sink = DiagnosticSink()
    modules: Dict[str, ast.Module] = {}
    for name, source in sources.items():
        modules[name] = ast.parse(source)
    declarations = collect_declarations(modules, sink)
    checker = Checker(declarations, sink)
    for name, tree in modules.items():
        checker.check_module(name, tree)
    return CheckResult(declarations, sink, checker.facts, checker.types, modules)
