"""Declaration collection for the EnerPy checker (pass 1).

Walks module ASTs and records every class and function signature, with
annotations parsed into :class:`~repro.core.types.QualifiedType`.  The
checker (pass 2) and the instrumenter both consume the resulting
:class:`ProgramDeclarations`.

Annotation grammar recognised (as Python expressions)::

    T ::= int | float | bool | str | None | ClassName
        | Approx[T] | Precise[T] | Top[T] | Context[T]
        | list[T]
        | "T"                       (string forward reference)

``Approx[list[float]]`` is sugar for ``list[Approx[float]]``: the paper
approximates array *elements*, never the array reference itself
(pointers are never approximate, Section 5.1).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.annotations import APPROX_SUFFIX
from repro.core.diagnostics import DiagnosticSink
from repro.core.qualifiers import APPROX, CONTEXT, PRECISE, TOP, Qualifier
from repro.core.types import (
    QualifiedType,
    VOID,
    array_of,
    primitive,
    reference,
)

__all__ = [
    "FunctionSig",
    "ClassInfo",
    "ProgramDeclarations",
    "collect_declarations",
    "parse_annotation",
]

_QUALIFIER_NAMES = {
    "Approx": APPROX,
    "Precise": PRECISE,
    "Top": TOP,
    "Context": CONTEXT,
}

_PRIMITIVES = {"int", "float", "bool"}


@dataclasses.dataclass
class FunctionSig:
    """A function or method signature."""

    name: str
    params: List[Tuple[str, QualifiedType]]
    returns: QualifiedType
    node: ast.FunctionDef
    module: str = ""
    #: For methods: the receiver qualifier this body is checked under.
    receiver_qualifier: Optional[Qualifier] = None
    #: For methods: name of the owning class.
    owner: Optional[str] = None

    @property
    def is_approx_variant(self) -> bool:
        return self.name.endswith(APPROX_SUFFIX)

    @property
    def base_name(self) -> str:
        if self.is_approx_variant:
            return self.name[: -len(APPROX_SUFFIX)]
        return self.name

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclasses.dataclass
class ClassInfo:
    """A class declaration: fields, methods, approximability."""

    name: str
    approximable: bool
    fields: Dict[str, QualifiedType]
    methods: Dict[str, FunctionSig]
    base: Optional[str] = None
    node: Optional[ast.ClassDef] = None
    module: str = ""

    def field_type(self, name: str) -> Optional[QualifiedType]:
        if name in self.fields:
            return self.fields[name]
        return None

    def method(self, name: str) -> Optional[FunctionSig]:
        return self.methods.get(name)

    def has_approx_variant(self, name: str) -> bool:
        return (name + APPROX_SUFFIX) in self.methods

    def field_specs(self) -> List[Tuple[str, str, str]]:
        """(name, kind, qualifier-name) triples for the runtime layout.

        ``kind`` is a :data:`repro.memory.layout.field_sizes` key;
        reference and array fields are ``"ref"``.
        """
        specs = []
        for name, ftype in self.fields.items():
            if ftype.is_primitive:
                kind = ftype.name
            else:
                kind = "ref"
            specs.append((name, kind, ftype.qualifier.value))
        return specs


class ProgramDeclarations:
    """All declarations of a checked program (possibly multi-module)."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionSig] = {}
        #: class name -> superclass name, for subtyping.
        self.subclasses: Dict[str, str] = {}

    def add_class(self, info: ClassInfo) -> None:
        self.classes[info.name] = info
        if info.base:
            self.subclasses[info.name] = info.base

    def add_function(self, sig: FunctionSig) -> None:
        self.functions[sig.name] = sig

    def lookup_class(self, name: str) -> Optional[ClassInfo]:
        return self.classes.get(name)

    def lookup_function(self, name: str) -> Optional[FunctionSig]:
        return self.functions.get(name)

    def field_type(self, class_name: str, field: str) -> Optional[QualifiedType]:
        """FType: look up a field, walking up the superclass chain."""
        info = self.classes.get(class_name)
        while info is not None:
            declared = info.field_type(field)
            if declared is not None:
                return declared
            info = self.classes.get(info.base) if info.base else None
        return None

    def method_sig(self, class_name: str, method: str) -> Optional[FunctionSig]:
        """MSig: look up a method, walking up the superclass chain."""
        info = self.classes.get(class_name)
        while info is not None:
            sig = info.method(method)
            if sig is not None:
                return sig
            info = self.classes.get(info.base) if info.base else None
        return None

    def class_has_approx_variant(self, class_name: str, method: str) -> bool:
        return self.method_sig(class_name, method + APPROX_SUFFIX) is not None


# ----------------------------------------------------------------------
# Annotation parsing
# ----------------------------------------------------------------------
def parse_annotation(
    node: Optional[ast.expr],
    sink: DiagnosticSink,
    module: str,
    known_classes: Optional[set] = None,
    in_approximable: bool = False,
    default: Optional[QualifiedType] = None,
) -> QualifiedType:
    """Parse an annotation expression into a :class:`QualifiedType`.

    Unannotated (``node is None``) yields ``default`` (precise dynamic
    if unspecified) — the paper's default qualifier is ``@Precise``.
    """
    if node is None:
        return default if default is not None else reference("dynamic", PRECISE)
    parsed = _parse(node, sink, module, in_approximable)
    if parsed is None:
        return reference("dynamic", PRECISE)
    return parsed


def _parse(
    node: ast.expr,
    sink: DiagnosticSink,
    module: str,
    in_approximable: bool,
    qualifier: Optional[Qualifier] = None,
) -> Optional[QualifiedType]:
    # String forward references: parse the contained expression.
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            inner = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            sink.error("bad-annotation", f"unparseable annotation {node.value!r}", node, module)
            return None
        return _parse(inner, sink, module, in_approximable, qualifier)

    if isinstance(node, ast.Constant) and node.value is None:
        return VOID

    if isinstance(node, ast.Name):
        return _named_type(node.id, qualifier or PRECISE, node, sink, module, in_approximable)

    if isinstance(node, ast.Subscript):
        head = node.value
        if isinstance(head, ast.Name) and head.id in _QUALIFIER_NAMES:
            new_qual = _QUALIFIER_NAMES[head.id]
            if new_qual is CONTEXT and not in_approximable:
                sink.error(
                    "context-outside",
                    "@Context may only appear inside an @approximable class",
                    node,
                    module,
                )
                new_qual = PRECISE
            if qualifier is not None:
                sink.error("bad-annotation", "nested precision qualifiers", node, module)
            inner = _parse(node.slice, sink, module, in_approximable, new_qual)
            if inner is None:
                return None
            # Approx[list[T]] sugar: push the qualifier onto elements.
            if inner.is_array and inner.element is not None and inner.element.qualifier is PRECISE:
                if new_qual is not PRECISE:
                    inner = array_of(inner.element.with_qualifier(new_qual), PRECISE)
            return inner
        if isinstance(head, ast.Name) and head.id in ("list", "List"):
            element = _parse(node.slice, sink, module, in_approximable)
            if element is None:
                return None
            outer = qualifier or PRECISE
            if outer is APPROX:
                # list qualified approx = approximate elements (sugar).
                element = element.with_qualifier(APPROX)
                outer = PRECISE
            return array_of(element, outer)
        sink.error("bad-annotation", f"unsupported annotation {ast.dump(node)}", node, module)
        return None

    sink.error("bad-annotation", f"unsupported annotation {ast.dump(node)}", node, module)
    return None


def _named_type(
    name: str,
    qualifier: Qualifier,
    node: ast.expr,
    sink: DiagnosticSink,
    module: str,
    in_approximable: bool,
) -> Optional[QualifiedType]:
    if name in _PRIMITIVES:
        return primitive(name, qualifier)
    if name == "str":
        return reference("str", PRECISE)
    if name == "object":
        return reference("object", qualifier)
    if name == "None":
        return VOID
    # Any other name is a class reference; existence is checked lazily
    # by the checker (forward references are common).
    return reference(name, qualifier)


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------
def _is_approximable_decorator(dec: ast.expr) -> bool:
    if isinstance(dec, ast.Name):
        return dec.id == "approximable"
    if isinstance(dec, ast.Attribute):
        return dec.attr == "approximable"
    return False


def _collect_function(
    node: ast.FunctionDef,
    sink: DiagnosticSink,
    module: str,
    in_approximable: bool = False,
    owner: Optional[str] = None,
) -> FunctionSig:
    params: List[Tuple[str, QualifiedType]] = []
    args = node.args
    if args.vararg or args.kwarg or args.kwonlyargs:
        sink.error("unsupported", f"function {node.name} uses *args/**kwargs", node, module)
    positional = list(args.posonlyargs) + list(args.args)
    for arg in positional:
        if arg.arg == "self" and owner is not None:
            continue
        ptype = parse_annotation(
            arg.annotation, sink, module, in_approximable=in_approximable
        )
        params.append((arg.arg, ptype))
    returns = parse_annotation(
        node.returns,
        sink,
        module,
        in_approximable=in_approximable,
        default=VOID,
    )
    receiver = None
    if owner is not None:
        if node.name.endswith(APPROX_SUFFIX):
            receiver = APPROX
        elif in_approximable:
            receiver = CONTEXT
        else:
            receiver = PRECISE
    return FunctionSig(
        name=node.name,
        params=params,
        returns=returns,
        node=node,
        module=module,
        receiver_qualifier=receiver,
        owner=owner,
    )


def _collect_class(node: ast.ClassDef, sink: DiagnosticSink, module: str) -> ClassInfo:
    approximable_class = any(_is_approximable_decorator(d) for d in node.decorator_list)
    base = None
    for base_node in node.bases:
        if isinstance(base_node, ast.Name) and base_node.id != "object":
            base = base_node.id
            break
    fields: Dict[str, QualifiedType] = {}
    methods: Dict[str, FunctionSig] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields[stmt.target.id] = parse_annotation(
                stmt.annotation, sink, module, in_approximable=approximable_class
            )
        elif isinstance(stmt, ast.FunctionDef):
            methods[stmt.name] = _collect_function(
                stmt, sink, module, in_approximable=approximable_class, owner=node.name
            )
        elif isinstance(stmt, (ast.Pass, ast.Expr)):
            continue
        elif isinstance(stmt, ast.Assign):
            # Unannotated class attribute: precise dynamic constant.
            continue
    # Method-precision overloading (paper Section 2.5.2): a method with
    # an _APPROX variant is only invoked on precise receivers, so its
    # body is checked under a precise receiver; the variant's body under
    # an approximate receiver; variant-less methods serve both and keep
    # the context receiver.
    for sig in methods.values():
        if (
            approximable_class
            and not sig.is_approx_variant
            and (sig.name + APPROX_SUFFIX) in methods
        ):
            sig.receiver_qualifier = PRECISE
    return ClassInfo(
        name=node.name,
        approximable=approximable_class,
        fields=fields,
        methods=methods,
        base=base,
        node=node,
        module=module,
    )


def collect_declarations(
    modules: Dict[str, ast.Module],
    sink: DiagnosticSink,
    into: Optional[ProgramDeclarations] = None,
) -> ProgramDeclarations:
    """Collect all declarations from the given parsed modules."""
    decls = into if into is not None else ProgramDeclarations()
    for module_name, tree in modules.items():
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                decls.add_class(_collect_class(stmt, sink, module_name))
            elif isinstance(stmt, ast.FunctionDef):
                decls.add_function(_collect_function(stmt, sink, module_name))
    return decls
