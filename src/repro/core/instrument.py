"""The instrumenting compiler (paper Section 5.2; pass 3).

Rewrites a checked EnerPy module so that every operation the checker
flagged routes through the runtime hooks in
:mod:`repro.runtime.hooks`:

====================  =============================================
source construct      generated code
====================  =============================================
``a + b``             ``_ej_binop('add', 'float', flag, a, b)``
``-a``                ``_ej_unop('neg', 'float', flag, a)``
``a < b``             ``_ej_binop('lt', 'float', flag, a, b)``
``x`` (approx local)  ``_ej_local_read(x, 'float', flag)``
``x = e``             ``x = _ej_local_write(e, 'float', flag)``
``arr[i]``            ``_ej_array_load(arr, i)``
``arr[i] = e``        ``_ej_array_store(arr, i, e)``
``[0.0] * n``         ``_ej_new_array([0.0] * n, 'float', flag)``
``obj.f``             ``_ej_field_load(obj, 'f')``
``obj.f = e``         ``_ej_field_store(obj, 'f', e)``
``C(args)``           ``_ej_new_object(C(args), flag, specs)``
``recv.m(a)``         ``recv.m_APPROX(a)`` / ``_ej_invoke(recv,'m',a)``
``endorse(e)``        ``_ej_endorse(e)``
``math.sqrt(e)``      ``_ej_math('sqrt', flag, e)``
``int(e)``            ``_ej_convert('int', flag, e)``
``for v in arr:``     ``for v in _ej_iter_array(arr):``
====================  =============================================

``flag`` is ``True``/``False`` for statically known precision and the
method-local ``_ej_ctx`` (bound at method entry to
``_ej_receiver_is_approx(self)``) for context-qualified operations
inside approximable classes.

The transformer consumes the *facts* recorded by the checker, keyed by
node identity — instrument exactly the AST objects that were checked.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.errors import InstrumentationError
from repro.runtime.hooks import HOOK_MODULE, HOOK_NAMES

__all__ = ["Instrumenter", "instrument_module", "CTX_NAME"]

#: Method-local variable carrying the dynamic receiver precision.
CTX_NAME = "_ej_ctx"

_TEMP_PREFIX = "_ej_t"


def _load(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Load())


def _store(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Store())


def _const(value) -> ast.Constant:
    return ast.Constant(value=value)


def _call(func_name: str, args: List[ast.expr]) -> ast.Call:
    return ast.Call(func=_load(func_name), args=args, keywords=[])


class Instrumenter(ast.NodeTransformer):
    """AST-to-AST rewriter driven by checker facts."""

    def __init__(self, facts: Dict[int, dict], program_modules: Optional[set] = None) -> None:
        self.facts = facts
        self.program_modules = program_modules or set()
        #: Intra-program imports stripped from the module, resolved by
        #: the loader: list of (sibling module, [(name, asname)]).
        self.intra_imports: List[Tuple[str, List[Tuple[str, str]]]] = []
        self._temp_counter = 0

    # ------------------------------------------------------------------
    def _fact(self, node: ast.AST) -> Optional[dict]:
        return self.facts.get(id(node))

    def _flag_expr(self, flag) -> ast.expr:
        if flag == "context":
            return _load(CTX_NAME)
        return _const(bool(flag))

    def _temp(self) -> str:
        self._temp_counter += 1
        return f"{_TEMP_PREFIX}{self._temp_counter}"

    # ==================================================================
    # Module
    # ==================================================================
    def visit_Module(self, node: ast.Module) -> ast.Module:
        self.generic_visit(node)
        preamble_index = 0
        if (
            node.body
            and isinstance(node.body[0], ast.Expr)
            and isinstance(node.body[0].value, ast.Constant)
            and isinstance(node.body[0].value.value, str)
        ):
            preamble_index = 1
        hook_import = ast.ImportFrom(
            module=HOOK_MODULE,
            names=[ast.alias(name=name, asname=None) for name in HOOK_NAMES],
            level=0,
        )
        node.body.insert(preamble_index, hook_import)
        ast.fix_missing_locations(node)
        return node

    def visit_ImportFrom(self, node: ast.ImportFrom):
        if node.module in self.program_modules:
            self.intra_imports.append(
                (node.module, [(a.name, a.asname or a.name) for a in node.names])
            )
            return None
        return node

    # ==================================================================
    # Functions / methods
    # ==================================================================
    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.FunctionDef:
        needs_ctx = self._subtree_uses_context(node)
        self.generic_visit(node)
        if needs_ctx:
            assign = ast.Assign(
                targets=[_store(CTX_NAME)],
                value=_call("_ej_receiver_is_approx", [_load("self")]),
            )
            insert_at = 0
            if (
                node.body
                and isinstance(node.body[0], ast.Expr)
                and isinstance(node.body[0].value, ast.Constant)
            ):
                insert_at = 1
            node.body.insert(insert_at, assign)
        return node

    def _subtree_uses_context(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            fact = self._fact(child)
            if fact and fact.get("approx") == "context":
                return True
        return False

    # ==================================================================
    # Expressions
    # ==================================================================
    def visit_BinOp(self, node: ast.BinOp) -> ast.expr:
        fact = self._fact(node)
        self.generic_visit(node)
        if fact is None:
            return node
        if fact["role"] == "alloc":
            return _call(
                "_ej_new_array", [node, _const(fact["kind"]), self._flag_expr(fact["approx"])]
            )
        if fact["role"] == "binop":
            return _call(
                "_ej_binop",
                [
                    _const(fact["op"]),
                    _const(fact["kind"]),
                    self._flag_expr(fact["approx"]),
                    node.left,
                    node.right,
                ],
            )
        return node

    def visit_UnaryOp(self, node: ast.UnaryOp) -> ast.expr:
        fact = self._fact(node)
        self.generic_visit(node)
        if fact is None or fact["role"] != "unop":
            return node
        return _call(
            "_ej_unop",
            [
                _const(fact["op"]),
                _const(fact["kind"]),
                self._flag_expr(fact["approx"]),
                node.operand,
            ],
        )

    def visit_Compare(self, node: ast.Compare) -> ast.expr:
        fact = self._fact(node)
        self.generic_visit(node)
        if fact is None or fact["role"] != "compare":
            return node
        return _call(
            "_ej_binop",
            [
                _const(fact["op"]),
                _const(fact["kind"]),
                self._flag_expr(fact["approx"]),
                node.left,
                node.comparators[0],
            ],
        )

    def visit_Name(self, node: ast.Name) -> ast.expr:
        fact = self._fact(node)
        if fact is None or not isinstance(node.ctx, ast.Load):
            return node
        if fact["role"] != "local-load":
            return node
        return _call(
            "_ej_local_read",
            [node, _const(fact["kind"]), self._flag_expr(fact["approx"])],
        )

    def visit_Subscript(self, node: ast.Subscript) -> ast.expr:
        fact = self._fact(node)
        self.generic_visit(node)
        if fact is None or fact["role"] != "subscript":
            return node
        if isinstance(node.ctx, ast.Load):
            return _call("_ej_array_load", [node.value, node.slice])
        return node

    def visit_Attribute(self, node: ast.Attribute) -> ast.expr:
        fact = self._fact(node)
        self.generic_visit(node)
        if fact is None or fact["role"] != "field":
            return node
        if isinstance(node.ctx, ast.Load) and not fact.get("write"):
            return _call("_ej_field_load", [node.value, _const(node.attr)])
        return node

    def visit_List(self, node: ast.List) -> ast.expr:
        fact = self._fact(node)
        self.generic_visit(node)
        if fact is None or fact["role"] != "alloc":
            return node
        if isinstance(node.ctx, ast.Load):
            return _call(
                "_ej_new_array", [node, _const(fact["kind"]), self._flag_expr(fact["approx"])]
            )
        return node

    def visit_Call(self, node: ast.Call) -> ast.expr:
        fact = self._fact(node)
        if fact is None:
            self.generic_visit(node)
            return node

        role = fact["role"]
        if role == "endorse":
            self.generic_visit(node)
            return _call("_ej_endorse", list(node.args))
        if role == "upcast":
            self.generic_visit(node)
            return node.args[0]
        if role == "math":
            self.generic_visit(node)
            return _call(
                "_ej_math",
                [_const(fact["fn"]), self._flag_expr(fact["approx"])] + list(node.args),
            )
        if role == "convert":
            self.generic_visit(node)
            return _call(
                "_ej_convert",
                [_const(fact["kind"]), self._flag_expr(fact["approx"])] + list(node.args),
            )
        if role == "unop-call":
            self.generic_visit(node)
            return _call(
                "_ej_unop",
                [
                    _const(fact["op"]),
                    _const(fact["kind"]),
                    self._flag_expr(fact["approx"]),
                    node.args[0],
                ],
            )
        if role == "new":
            self.generic_visit(node)
            return _call(
                "_ej_new_object",
                [node.func, self._flag_expr(fact["approx"]), self._specs_expr(fact)]
                + list(node.args),
            )
        if role == "invoke":
            self.generic_visit(node)
            func = node.func
            if not isinstance(func, ast.Attribute):
                raise InstrumentationError("invoke fact on a non-method call")
            if fact["dispatch"] == "approx":
                new_func = ast.Attribute(
                    value=func.value, attr=fact["method"] + "_APPROX", ctx=ast.Load()
                )
                return ast.Call(func=new_func, args=node.args, keywords=[])
            return _call(
                "_ej_invoke", [func.value, _const(fact["method"])] + list(node.args)
            )
        self.generic_visit(node)
        return node

    def _specs_expr(self, fact: dict) -> ast.expr:
        """Field specs for _ej_new_object, resolving context fields.

        A field declared ``Context[T]`` is approximate exactly when the
        instance is; ``Approx[T]`` fields are always approximate.  For
        dynamically-qualified instances (flag 'context') the context
        fields inherit ``_ej_ctx``.
        """
        elements = []
        for name, kind, qual in fact["specs"]:
            if qual == "approx":
                approx_expr: ast.expr = _const(True)
            elif qual == "context":
                approx_expr = self._flag_expr(fact["approx"])
            else:
                approx_expr = _const(False)
            elements.append(
                ast.Tuple(elts=[_const(name), _const(kind), approx_expr], ctx=ast.Load())
            )
        return ast.List(elts=elements, ctx=ast.Load())

    # ==================================================================
    # Statements
    # ==================================================================
    def visit_AnnAssign(self, node: ast.AnnAssign):
        if node.value is None:
            # Pure declaration (class field or forward local): keep.
            return node
        fact = self._fact(node.target) if isinstance(node.target, ast.Name) else None
        node.value = self.visit(node.value)
        value = node.value
        if fact is not None and fact["role"] == "local-store":
            value = _call(
                "_ej_local_write",
                [value, _const(fact["kind"]), self._flag_expr(fact["approx"])],
            )
        return ast.Assign(targets=[_store(node.target.id)], value=value)

    def visit_Assign(self, node: ast.Assign):
        node.value = self.visit(node.value)
        if len(node.targets) != 1:
            return node
        target = node.targets[0]

        if isinstance(target, ast.Name):
            fact = self._fact(target)
            if fact is not None and fact["role"] in ("local-store", "local-load"):
                node.value = _call(
                    "_ej_local_write",
                    [node.value, _const(fact["kind"]), self._flag_expr(fact["approx"])],
                )
            return node

        if isinstance(target, ast.Subscript):
            fact = self._fact(target)
            container = self.visit(target.value)
            index = self.visit(target.slice)
            if fact is not None and fact["role"] == "subscript":
                return ast.Expr(
                    value=_call("_ej_array_store", [container, index, node.value])
                )
            target.value = container
            target.slice = index
            return node

        if isinstance(target, ast.Attribute):
            fact = self._fact(target)
            receiver = self.visit(target.value)
            if fact is not None and fact["role"] == "field":
                return ast.Expr(
                    value=_call(
                        "_ej_field_store", [receiver, _const(target.attr), node.value]
                    )
                )
            target.value = receiver
            return node

        # Tuple targets etc.: visit children normally.
        node.targets = [self.visit(t) for t in node.targets]
        return node

    def visit_AugAssign(self, node: ast.AugAssign):
        fact = self._fact(node)
        rhs = self.visit(node.value)
        if fact is None or fact["role"] != "binop":
            node.value = rhs
            return node

        op_args = [
            _const(fact["op"]),
            _const(fact["kind"]),
            self._flag_expr(fact["approx"]),
        ]
        target = node.target

        if isinstance(target, ast.Name):
            local_fact = self._fact(target)
            old_value: ast.expr = _load(target.id)
            if local_fact is not None:
                old_value = _call(
                    "_ej_local_read",
                    [old_value, _const(local_fact["kind"]), self._flag_expr(local_fact["approx"])],
                )
            new_value: ast.expr = _call("_ej_binop", op_args + [old_value, rhs])
            if local_fact is not None:
                new_value = _call(
                    "_ej_local_write",
                    [new_value, _const(local_fact["kind"]), self._flag_expr(local_fact["approx"])],
                )
            return ast.Assign(targets=[_store(target.id)], value=new_value)

        if isinstance(target, ast.Subscript):
            sub_fact = self._fact(target)
            container = self.visit(target.value)
            index = self.visit(target.slice)
            t_arr, t_idx = self._temp(), self._temp()
            statements: List[ast.stmt] = [
                ast.Assign(targets=[_store(t_arr)], value=container),
                ast.Assign(targets=[_store(t_idx)], value=index),
            ]
            if sub_fact is not None and sub_fact["role"] == "subscript":
                old_value = _call("_ej_array_load", [_load(t_arr), _load(t_idx)])
                new_value = _call("_ej_binop", op_args + [old_value, rhs])
                statements.append(
                    ast.Expr(
                        value=_call(
                            "_ej_array_store", [_load(t_arr), _load(t_idx), new_value]
                        )
                    )
                )
            else:
                old_value = ast.Subscript(
                    value=_load(t_arr), slice=_load(t_idx), ctx=ast.Load()
                )
                new_value = _call("_ej_binop", op_args + [old_value, rhs])
                statements.append(
                    ast.Assign(
                        targets=[
                            ast.Subscript(value=_load(t_arr), slice=_load(t_idx), ctx=ast.Store())
                        ],
                        value=new_value,
                    )
                )
            return statements

        if isinstance(target, ast.Attribute):
            field_fact = self._fact(target)
            receiver = self.visit(target.value)
            t_recv = self._temp()
            statements = [ast.Assign(targets=[_store(t_recv)], value=receiver)]
            if field_fact is not None and field_fact["role"] == "field":
                old_value = _call("_ej_field_load", [_load(t_recv), _const(target.attr)])
                new_value = _call("_ej_binop", op_args + [old_value, rhs])
                statements.append(
                    ast.Expr(
                        value=_call(
                            "_ej_field_store",
                            [_load(t_recv), _const(target.attr), new_value],
                        )
                    )
                )
            else:
                old_value = ast.Attribute(value=_load(t_recv), attr=target.attr, ctx=ast.Load())
                new_value = _call("_ej_binop", op_args + [old_value, rhs])
                statements.append(
                    ast.Assign(
                        targets=[
                            ast.Attribute(value=_load(t_recv), attr=target.attr, ctx=ast.Store())
                        ],
                        value=new_value,
                    )
                )
            return statements

        node.value = rhs
        return node

    def visit_For(self, node: ast.For):
        fact = self._fact(node)
        self.generic_visit(node)
        if fact is None:
            return node
        if fact["role"] == "foreach":
            node.iter = _call("_ej_iter_array", [node.iter])
        elif fact["role"] == "range" and isinstance(node.iter, ast.Call):
            node.iter = _call("_ej_range", list(node.iter.args))
        return node


def instrument_module(
    tree: ast.Module,
    facts: Dict[int, dict],
    program_modules: Optional[set] = None,
) -> Tuple[ast.Module, List[Tuple[str, List[Tuple[str, str]]]]]:
    """Instrument one checked module AST.

    Returns the rewritten tree (the input object, modified in place) and
    the stripped intra-program imports for the loader to resolve.
    """
    instrumenter = Instrumenter(facts, program_modules)
    rewritten = instrumenter.visit(tree)
    ast.fix_missing_locations(rewritten)
    return rewritten, instrumenter.intra_imports
