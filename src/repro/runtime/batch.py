"""Batch simulation context: one execution, N fault-seed lanes.

:class:`BatchSimulator` runs the instrumented program once while
injecting faults for a whole vector of fault seeds, producing — lane
for lane — exactly what N serial :class:`~repro.runtime.context.
Simulator` runs would produce (outputs, stats, trace event streams; see
DESIGN.md "Batched fault drawing" and ``tests/test_batch_differential.
py``).  The speedup comes from sharing the interpreter work: control
flow is lane-uniform (EnerJ keeps it precise), so the program executes
once and only fault draws and faulted values are per-lane.

When lanes diverge where a single scalar is required (a branch on a
faulted value), :class:`~repro.hardware.lanes.LaneDivergenceError`
aborts the batch; callers (``run_keys_batch``) rerun the lanes
serially, so divergence costs speed, never correctness.

Tracing: pass one :class:`~repro.observability.tracer.Tracer` per lane.
Lane-uniform emissions (energy accounting, converged truncations) fan
out to every lane tracer through :class:`_FanTracer`; per-lane fault
events go straight to the faulted lane's tracer.  Each lane's stream is
byte-identical to its serial run's.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.hardware import bits as _bits
from repro.hardware.alu import BatchApproxALU
from repro.hardware.config import HardwareConfig
from repro.hardware.dram import BatchApproxDRAM
from repro.hardware.fpu import BatchApproxFPU
from repro.hardware.lanes import LaneDivergenceError, LaneValues, lane_value, unlane
from repro.hardware.rng import BatchFaultRandom
from repro.hardware.sram import BatchApproxSRAM
from repro.runtime.context import Simulator
from repro.runtime.stats import RunStats

__all__ = [
    "BatchSimulator",
    "LaneDivergenceError",
    "LaneValues",
    "lane_value",
    "unlane",
]


class _FanCounter:
    """One counter handle that increments the same counter in every lane."""

    __slots__ = ("_counters",)

    def __init__(self, counters) -> None:
        self._counters = counters

    def inc(self, amount: int = 1) -> None:
        for counter in self._counters:
            counter.inc(amount)


class _FanMetrics:
    """Metrics facade fanning counter increments to every lane registry."""

    __slots__ = ("_registries",)

    def __init__(self, registries) -> None:
        self._registries = registries

    def counter(self, name: str) -> _FanCounter:
        return _FanCounter([registry.counter(name) for registry in self._registries])


class _FanTracer:
    """Tracer facade that replays lane-uniform emissions on every lane.

    The base :class:`Simulator` emits energy-accounting events and SRAM
    byte counters through ``self.tracer``; those sites are lane-uniform
    (control flow and allocation sizes do not diverge), so fanning the
    same emission to each lane's tracer reproduces what each serial run
    would have recorded — with each lane's own ``seq`` numbering and
    fault seed.
    """

    def __init__(self, tracers, seeds) -> None:
        self._tracers = tracers
        self._seeds = seeds
        self.metrics = _FanMetrics([tracer.metrics for tracer in tracers])

    def attach(self, clock, fault_seed) -> None:
        # Each lane tracer stamps events with its *own* seed, not the
        # batch representative the base Simulator passes in.
        for tracer, seed in zip(self._tracers, self._seeds):
            tracer.attach(clock, seed)

    def emit(self, kind, identity, bits=(), before=None, after=None, cycle=None, extra=None):
        for tracer in self._tracers:
            tracer.emit(
                kind,
                identity,
                bits=bits,
                before=before,
                after=after,
                cycle=cycle,
                extra=extra,
            )


class BatchSimulator(Simulator):
    """A :class:`Simulator` sweeping a vector of fault seeds at once.

    ``seeds`` gives one fault seed per lane.  ``tracers`` (optional) is
    one Tracer per lane.  ``engine`` selects the
    :class:`BatchFaultRandom` backend (``"auto"``/``"numpy"``/
    ``"python"``).

    Use :meth:`lane_stats` for per-lane statistics; :meth:`stats`
    raises, because a single RunStats cannot describe N lanes.
    """

    def __init__(
        self,
        config: HardwareConfig,
        seeds: Sequence[int],
        tracers=None,
        engine: str = "auto",
    ) -> None:
        seeds = tuple(seeds)
        if not seeds:
            raise ValueError("BatchSimulator needs at least one fault seed")
        if config.load_elision_prob > 0.0:
            # Load elision consults a per-run RNG on a lane-uniform
            # branch; modelling it per-lane would diverge control flow
            # on every elision.  Callers fall back to serial execution.
            raise SimulationError(
                "batch execution does not support configurations with "
                "load elision (software substrates); run seeds serially"
            )
        if tracers is not None and len(tracers) != len(seeds):
            raise ValueError("need exactly one tracer per lane")
        fan = _FanTracer(tracers, seeds) if tracers is not None else None
        super().__init__(config, seed=seeds[0], tracer=fan)
        self.seeds = seeds
        self.lanes = len(seeds)
        self._tracers = tracers
        root = BatchFaultRandom(seeds, engine=engine)
        self.engine = root.engine
        # Replace the serial units with their batch counterparts; the
        # spawn labels match Simulator.__init__ so lane i's unit streams
        # equal FaultRandom(seeds[i]).spawn(label)'s.
        self.alu = BatchApproxALU(config, root.spawn("alu"), tracers, self.lanes)
        self.fpu = BatchApproxFPU(config, root.spawn("fpu"), tracers, self.lanes)
        self.sram = BatchApproxSRAM(config, root.spawn("sram"), tracers, self.lanes)
        self.dram = BatchApproxDRAM(
            config, root.spawn("dram"), self.clock, tracers, self.lanes
        )

    # ------------------------------------------------------------------
    # Overrides for sites where the base implementation assumes scalars
    # ------------------------------------------------------------------
    def math_call(self, fn: str, approximate: bool, args):
        if not any(isinstance(arg, LaneValues) for arg in args):
            return super().math_call(fn, approximate, args)
        import math as _math

        self.clock.advance()
        n = self.lanes
        columns = [
            arg.values if isinstance(arg, LaneValues) else [arg] * n for arg in args
        ]
        fn_obj = getattr(_math, fn)
        if not approximate:
            self.fpu.precise_ops += 1
            return LaneValues(
                [fn_obj(*[column[lane] for column in columns]) for lane in range(n)]
            )
        self.fpu.approx_ops += 1
        keep = self.config.float_mantissa_bits
        truncated_columns = []
        for arg, column in zip(args, columns):
            # Value kinds are lane-uniform; probe lane 0 like the serial
            # isinstance check probes the scalar.
            if isinstance(column[0], (int, float)):
                truncated_columns.append(
                    _bits.truncate_mantissa_lanes([float(v) for v in column], keep)
                )
            else:
                truncated_columns.append(column)
        raws = []
        for lane in range(n):
            try:
                raws.append(fn_obj(*[column[lane] for column in truncated_columns]))
            except (ValueError, OverflowError, ZeroDivisionError):
                raws.append(_math.nan)
        if not isinstance(raws[0], float):
            return LaneValues(raws)
        truncated = _bits.truncate_mantissa_lanes(raws, keep)
        if self._tracers is not None:
            for lane, tracer in enumerate(self._tracers):
                if truncated[lane] != raws[lane] and raws[lane] == raws[lane]:
                    tracer.emit(
                        "fpu.truncation",
                        f"fpu:math.{fn}",
                        before=raws[lane],
                        after=truncated[lane],
                        extra={"kept_bits": keep},
                    )
        return self.fpu._maybe_fault(
            LaneValues(truncated), double=False, op=f"math.{fn}"
        )

    def convert(self, kind: str, approximate: bool, value):
        if not isinstance(value, LaneValues):
            return super().convert(kind, approximate, value)
        import math as _math

        self.clock.advance()
        values = value.values
        if kind == "int":
            if approximate:
                self.alu.approx_ops += 1
                converted = []
                for v in values:
                    if isinstance(v, float) and (_math.isnan(v) or _math.isinf(v)):
                        converted.append(0)
                    else:
                        converted.append(_bits.bits_to_int(_bits.int_to_bits(int(v))))
                return LaneValues(converted)
            self.alu.precise_ops += 1
            return LaneValues([int(v) for v in values])
        if approximate:
            self.fpu.approx_ops += 1
            return LaneValues(
                _bits.truncate_mantissa_lanes(
                    [float(v) for v in values], self.config.float_mantissa_bits
                )
            )
        self.fpu.precise_ops += 1
        return LaneValues([float(v) for v in values])

    def endorse(self, value):
        if not isinstance(value, LaneValues):
            return super().endorse(value)
        self.endorsements += 1
        if self._tracers is not None:
            for tracer, lane_v in zip(self._tracers, value.values):
                scalar = lane_v if isinstance(lane_v, (bool, int, float, str)) else None
                tracer.emit(
                    "runtime.endorse",
                    "endorse",
                    before=scalar,
                    after=scalar,
                    extra=None if scalar is not None else {"type": type(lane_v).__name__},
                )
        return value

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> RunStats:
        raise SimulationError(
            "BatchSimulator has per-lane statistics; use lane_stats(lane)"
        )

    def lane_stats(self, lane: int) -> RunStats:
        """The RunStats lane ``lane``'s serial run would have produced.

        Operation/byte counters are lane-uniform (shared); only the
        fault counters differ per lane.
        """
        return RunStats(
            int_ops_approx=self.alu.approx_ops,
            int_ops_precise=self.alu.precise_ops,
            fp_ops_approx=self.fpu.approx_ops,
            fp_ops_precise=self.fpu.precise_ops,
            dram_approx_byte_ticks=self.accountant.dram_approx_byte_ticks,
            dram_precise_byte_ticks=self.accountant.dram_precise_byte_ticks,
            sram_approx_byte_ticks=self.accountant.sram_approx_byte_ticks,
            sram_precise_byte_ticks=self.accountant.sram_precise_byte_ticks,
            fu_faults=self.alu.faulted_ops[lane] + self.fpu.faulted_ops[lane],
            sram_read_upsets=self.sram.read_upsets[lane],
            sram_write_failures=self.sram.write_failures[lane],
            dram_decayed_bits=self.dram.decayed_bits[lane],
            endorsements=self.endorsements,
            allocations=self.accountant.allocations,
            ticks=self.clock.ticks,
        )
