"""Runtime library: simulator context, statistics, and compiler hooks."""

from repro.runtime.batch import BatchSimulator, LaneDivergenceError, LaneValues
from repro.runtime.context import Simulator, active_simulator, current_simulator
from repro.runtime.heap import ArrayRecord, HeapRegistry, ObjectRecord
from repro.runtime.stats import RunStats

__all__ = [
    "Simulator",
    "BatchSimulator",
    "LaneValues",
    "LaneDivergenceError",
    "active_simulator",
    "current_simulator",
    "RunStats",
    "HeapRegistry",
    "ArrayRecord",
    "ObjectRecord",
]
