"""The simulation context: the runtime an instrumented EnerPy program runs on.

A :class:`Simulator` bundles the approximate hardware units (ALU, FPU,
SRAM, DRAM), the logical clock, the heap registry, and storage
accounting.  Instrumented code reaches it through the module-level hook
functions in :mod:`repro.runtime.hooks`, which dispatch to the
*currently active* simulator (a thread-local stack, so simulations can
nest in tests).

The paper's runtime system "records memory-footprint and
arithmetic-operation statistics while simultaneously injecting transient
faults to emulate approximate execution" (Section 5.2) — exactly this
class's job.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.errors import NoActiveSimulationError, SimulationError
from repro.hardware import bits as _bits
from repro.hardware.alu import ApproxALU
from repro.hardware.clock import LogicalClock
from repro.hardware.config import BASELINE, HardwareConfig
from repro.hardware.dram import ApproxDRAM
from repro.hardware.fpu import ApproxFPU
from repro.hardware.rng import FaultRandom
from repro.hardware.sram import ApproxSRAM
from repro.memory.accounting import StorageAccountant
from repro.memory.layout import FieldSpec, field_sizes
from repro.runtime.heap import HeapRegistry
from repro.runtime.stats import RunStats

__all__ = ["Simulator", "current_simulator", "active_simulator"]

_tls = threading.local()


def _stack() -> List["Simulator"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current_simulator() -> Optional["Simulator"]:
    """The active simulator, or ``None`` outside any simulation."""
    stack = _stack()
    return stack[-1] if stack else None


def active_simulator() -> "Simulator":
    """The active simulator; raises if none is active."""
    simulator = current_simulator()
    if simulator is None:
        raise NoActiveSimulationError(
            "no Simulator context is active; run instrumented code inside "
            "'with Simulator(config):'"
        )
    return simulator


_FLOATISH = ("float", "double")


class Simulator:
    """Approximation-aware execution substrate (context manager).

    Example::

        from repro.hardware import MEDIUM
        from repro.runtime import Simulator

        with Simulator(MEDIUM, seed=1) as sim:
            program.main()
        print(sim.stats().fp_approx_fraction)

    Pass ``tracer`` (a :class:`repro.observability.tracer.Tracer`) to
    record every fault-injection and energy-accounting incident as
    structured events (see ``OBSERVABILITY.md``).  Without one, every
    emission site costs a single ``is not None`` branch.
    """

    def __init__(
        self, config: HardwareConfig = BASELINE, seed: int = 0, tracer=None
    ) -> None:
        self.config = config
        self.seed = seed
        self.tracer = tracer
        root = FaultRandom(seed)
        self.clock = LogicalClock(config.seconds_per_tick)
        if tracer is not None:
            tracer.attach(self.clock, seed)
        self.alu = ApproxALU(config, root.spawn("alu"), tracer)
        self.fpu = ApproxFPU(config, root.spawn("fpu"), tracer)
        self.sram = ApproxSRAM(config, root.spawn("sram"), tracer)
        self.dram = ApproxDRAM(config, root.spawn("dram"), self.clock, tracer)
        self.heap = HeapRegistry(config.cache_line_bytes)
        self.accountant = StorageAccountant()
        self.endorsements = 0
        self.elided_loads = 0
        self._elision_rng = root.spawn("elision")
        self._closed = False

    # ------------------------------------------------------------------
    # Context management
    # ------------------------------------------------------------------
    def __enter__(self) -> "Simulator":
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = _stack()
        if not stack or stack[-1] is not self:
            raise SimulationError("Simulator context exited out of order")
        stack.pop()
        self.close()

    def close(self) -> None:
        """Finish accounting for all live heap containers."""
        if self._closed:
            return
        now = self.clock.ticks
        for container_id, approx_bytes, precise_bytes, label, ordinal in self.heap.drain():
            self.accountant.allocate(container_id, approx_bytes, precise_bytes, 0, label)
            record = self.accountant.free(container_id, now)
            self.dram.forget(container_id)
            if self.tracer is not None and record is not None:
                lifetime = max(1, now - record.birth_tick)
                self.tracer.emit(
                    "energy.free",
                    f"{label}#{ordinal}",
                    extra={
                        "approx_byte_ticks": record.approx_bytes * lifetime,
                        "precise_byte_ticks": record.precise_bytes * lifetime,
                        "lifetime_ticks": lifetime,
                    },
                )
        self._closed = True

    # ------------------------------------------------------------------
    # Functional units
    # ------------------------------------------------------------------
    def binop(self, op: str, kind: str, approximate: bool, left, right):
        """Execute one arithmetic/comparison instruction."""
        self.clock.advance()
        if kind in _FLOATISH:
            double = kind == "double"
            if approximate:
                return self.fpu.approx_binop(op, left, right, double=double)
            return self.fpu.precise_binop(op, left, right)
        if approximate:
            return self.alu.approx_binop(op, left, right)
        return self.alu.precise_binop(op, left, right)

    def unop(self, op: str, kind: str, approximate: bool, operand):
        self.clock.advance()
        if kind in _FLOATISH:
            if approximate:
                return self.fpu.approx_unop(op, operand, double=kind == "double")
            self.fpu.precise_ops += 1
            return -operand if op == "neg" else abs(operand)
        if approximate:
            return self.alu.approx_unop(op, operand)
        self.alu.precise_ops += 1
        if op == "neg":
            return -operand
        if op == "abs":
            return abs(operand)
        return ~operand

    def math_call(self, fn: str, approximate: bool, args):
        """A math-library operation, modelled as one FP instruction.

        Approximate math calls truncate operands and result to the
        configured mantissa width, may suffer a timing-error fault, and
        never raise domain errors (NaN is returned instead), mirroring
        the divide-by-zero policy of the paper's simulator.
        """
        import math as _math

        self.clock.advance()
        if not approximate:
            self.fpu.precise_ops += 1
            return getattr(_math, fn)(*args)
        self.fpu.approx_ops += 1
        keep = self.config.float_mantissa_bits
        truncated = [
            _bits.truncate_mantissa(float(a), keep) if isinstance(a, (int, float)) else a
            for a in args
        ]
        try:
            raw = getattr(_math, fn)(*truncated)
        except (ValueError, OverflowError, ZeroDivisionError):
            raw = _math.nan
        if isinstance(raw, float):
            truncated_result = _bits.truncate_mantissa(raw, keep)
            if self.tracer is not None and truncated_result != raw and raw == raw:
                self.tracer.emit(
                    "fpu.truncation",
                    f"fpu:math.{fn}",
                    before=raw,
                    after=truncated_result,
                    extra={"kept_bits": keep},
                )
            raw = self.fpu._maybe_fault(truncated_result, double=False, op=f"math.{fn}")
        return raw

    def convert(self, kind: str, approximate: bool, value):
        """int()/float() conversion, modelled as one instruction.

        Approximate int() of NaN/infinity yields zero rather than
        raising — approximation must not introduce exceptions.
        """
        import math as _math

        self.clock.advance()
        if kind == "int":
            if approximate:
                self.alu.approx_ops += 1
                if isinstance(value, float) and (_math.isnan(value) or _math.isinf(value)):
                    return 0
                return _bits.bits_to_int(_bits.int_to_bits(int(value)))
            self.alu.precise_ops += 1
            return int(value)
        if approximate:
            self.fpu.approx_ops += 1
            return _bits.truncate_mantissa(float(value), self.config.float_mantissa_bits)
        self.fpu.precise_ops += 1
        return float(value)

    # ------------------------------------------------------------------
    # SRAM (locals / registers)
    # ------------------------------------------------------------------
    def local_read(self, value, kind: str, approximate: bool):
        self.clock.advance()
        result = self.sram.read(value, kind, approximate)
        byte_count = max(1, field_sizes.get(kind, 4))
        self.accountant.touch_sram(byte_count, approximate)
        if self.tracer is not None:
            self.tracer.metrics.counter(
                "energy.sram.approx_bytes" if approximate else "energy.sram.precise_bytes"
            ).inc(byte_count)
        return result

    def local_write(self, value, kind: str, approximate: bool):
        self.clock.advance()
        result = self.sram.write(value, kind, approximate)
        byte_count = max(1, field_sizes.get(kind, 4))
        self.accountant.touch_sram(byte_count, approximate)
        if self.tracer is not None:
            self.tracer.metrics.counter(
                "energy.sram.approx_bytes" if approximate else "energy.sram.precise_bytes"
            ).inc(byte_count)
        return result

    # ------------------------------------------------------------------
    # Arrays (heap / DRAM)
    # ------------------------------------------------------------------
    def new_array(self, backing: list, element_kind: str, approximate: bool, label: str = "") -> list:
        """Register a freshly allocated array; returns the backing list."""
        self.clock.advance()
        record = self.heap.register_array(backing, element_kind, approximate, label)
        self.accountant.allocate(
            id(backing), record.approx_bytes, record.precise_bytes, self.clock.ticks, label
        )
        if self.tracer is not None:
            self.tracer.emit(
                "energy.alloc",
                f"{label or 'array'}#{record.ordinal}",
                extra={
                    "approx_bytes": record.approx_bytes,
                    "precise_bytes": record.precise_bytes,
                    "element_kind": element_kind,
                    "length": len(backing),
                },
            )
        return backing

    def array_load(self, backing: list, index, kind_hint: Optional[str] = None):
        """Load one element; approximate elements may have decayed.

        Under a software substrate the load may be *elided*: the last
        value read from this array is returned without touching memory
        (the run's statistics still count the load — the energy model
        sees the elision through the substrate's savings figures).
        """
        self.clock.advance()
        value = backing[index]
        record = self.heap.array_record(backing)
        if record is None:
            return value
        approximate = record.elements_approximate
        if (
            approximate
            and self.config.load_elision_prob > 0.0
            and record.last_read is not None
            and self._elision_rng.coin(self.config.load_elision_prob)
        ):
            self.elided_loads += 1
            if self.tracer is not None:
                self.tracer.metrics.counter("runtime.elided_load").inc()
            return record.last_read
        identity = None
        if self.tracer is not None:
            identity = f"{record.label or 'array'}#{record.ordinal}[{index}]"
        result = self.dram.read(
            (id(backing), index), value, record.element_kind, approximate, identity
        )
        if result is not value:
            # Decay is sticky: the stored word itself changed.
            backing[index] = result
        if approximate:
            record.last_read = result
        return result

    def array_store(self, backing: list, index, value):
        """Store one element, refreshing its decay stamp."""
        self.clock.advance()
        record = self.heap.array_record(backing)
        if record is not None:
            value = self.dram.write(
                (id(backing), index), value, record.element_kind, record.elements_approximate
            )
        backing[index] = value
        return value

    # ------------------------------------------------------------------
    # Approximable objects (heap / DRAM)
    # ------------------------------------------------------------------
    def new_object(self, instance: object, qualifier_is_approx: bool, fields: List[FieldSpec]):
        """Register an approximable instance created with a qualifier."""
        self.clock.advance()
        record = self.heap.register_object(instance, qualifier_is_approx, fields)
        self.accountant.allocate(
            id(instance),
            record.line_map.approx_bytes,
            record.line_map.precise_bytes,
            self.clock.ticks,
            type(instance).__name__,
        )
        if self.tracer is not None:
            self.tracer.emit(
                "energy.alloc",
                f"{type(instance).__name__}#{record.ordinal}",
                extra={
                    "approx_bytes": record.line_map.approx_bytes,
                    "precise_bytes": record.line_map.precise_bytes,
                    "qualifier_is_approx": qualifier_is_approx,
                },
            )
        return instance

    def object_is_approx(self, instance: object) -> bool:
        """The dynamic precision of an approximable instance."""
        record = self.heap.object_record(instance)
        return bool(record and record.qualifier_is_approx)

    def field_load(self, instance: object, name: str):
        self.clock.advance()
        value = getattr(instance, name)
        record = self.heap.object_record(instance)
        if record is None or not record.approx_storage_fields.get(name, False):
            return value
        kind = record.field_kinds.get(name, "int")
        if kind == "ref":
            return value
        identity = None
        if self.tracer is not None:
            identity = f"{type(instance).__name__}#{record.ordinal}.{name}"
        result = self.dram.read((id(instance), name), value, kind, True, identity)
        if result is not value:
            object.__setattr__(instance, name, result)
        return result

    def field_store(self, instance: object, name: str, value):
        self.clock.advance()
        record = self.heap.object_record(instance)
        if record is not None and record.approx_storage_fields.get(name, False):
            kind = record.field_kinds.get(name, "int")
            if kind != "ref":
                value = self.dram.write((id(instance), name), value, kind, True)
        setattr(instance, name, value)
        return value

    # ------------------------------------------------------------------
    # Endorsement
    # ------------------------------------------------------------------
    def endorse(self, value):
        """Dynamic effect of ``endorse``: count it and pass the value on.

        The paper notes endorsements "may have implicit runtime effects;
        they might, for example, copy values from approximate to precise
        memory" — in our model the copy is the return itself.
        """
        self.endorsements += 1
        if self.tracer is not None:
            scalar = value if isinstance(value, (bool, int, float, str)) else None
            self.tracer.emit(
                "runtime.endorse",
                "endorse",
                before=scalar,
                after=scalar,
                extra=None if scalar is not None else {"type": type(value).__name__},
            )
        return value

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> RunStats:
        """A snapshot of everything measured so far.

        Heap containers still live are *not* yet charged; call
        :meth:`close` (or leave the ``with`` block) first for final
        numbers.
        """
        return RunStats(
            int_ops_approx=self.alu.approx_ops,
            int_ops_precise=self.alu.precise_ops,
            fp_ops_approx=self.fpu.approx_ops,
            fp_ops_precise=self.fpu.precise_ops,
            dram_approx_byte_ticks=self.accountant.dram_approx_byte_ticks,
            dram_precise_byte_ticks=self.accountant.dram_precise_byte_ticks,
            sram_approx_byte_ticks=self.accountant.sram_approx_byte_ticks,
            sram_precise_byte_ticks=self.accountant.sram_precise_byte_ticks,
            fu_faults=self.alu.faulted_ops + self.fpu.faulted_ops,
            sram_read_upsets=self.sram.read_upsets,
            sram_write_failures=self.sram.write_failures,
            dram_decayed_bits=self.dram.decayed_bits,
            endorsements=self.endorsements,
            allocations=self.accountant.allocations,
            ticks=self.clock.ticks,
        )
