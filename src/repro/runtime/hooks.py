"""Hook functions targeted by the instrumenting compiler.

The instrumenter rewrites an EnerPy module so approximate operations and
storage accesses call these functions.  Each hook dispatches to the
active :class:`~repro.runtime.context.Simulator` — and, through it, to
the hardware fault models and the observability tracer when one is
attached.  Calling a hook with *no* active simulation raises
:class:`~repro.errors.NoActiveSimulationError`; the only exception is
after an explicit ``set_fallback_precise(True)``, which lets
instrumented code run as plain (uncounted, precise) Python instead.

Hook names are short and underscore-prefixed because they appear in
generated code: ``_ej_binop('add', 'float', True, a, b)``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NoActiveSimulationError
from repro.memory.layout import FieldSpec
from repro.runtime.context import Simulator, active_simulator, current_simulator

__all__ = [
    "HOOK_MODULE",
    "HOOK_NAMES",
    "set_fallback_precise",
    "_ej_binop",
    "_ej_unop",
    "_ej_local_read",
    "_ej_local_write",
    "_ej_new_array",
    "_ej_array_load",
    "_ej_array_store",
    "_ej_new_object",
    "_ej_field_load",
    "_ej_field_store",
    "_ej_endorse",
    "_ej_receiver_is_approx",
    "_ej_field_specs",
    "_ej_invoke",
    "_ej_iter_array",
    "_ej_math",
    "_ej_convert",
    "_ej_range",
]

#: Import path emitted by the instrumenter.
HOOK_MODULE = "repro.runtime.hooks"

#: Names the instrumenter may inject into a module's namespace.
HOOK_NAMES = (
    "_ej_binop",
    "_ej_unop",
    "_ej_local_read",
    "_ej_local_write",
    "_ej_new_array",
    "_ej_array_load",
    "_ej_array_store",
    "_ej_new_object",
    "_ej_field_load",
    "_ej_field_store",
    "_ej_endorse",
    "_ej_receiver_is_approx",
    "_ej_invoke",
    "_ej_iter_array",
    "_ej_math",
    "_ej_convert",
    "_ej_range",
)

_PLAIN_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else _java_idiv(a, b),
    "mod": lambda a, b: a % b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_fallback_precise = False


def _java_idiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def set_fallback_precise(enabled: bool) -> None:
    """Allow hooks to run without an active simulator (precise, uncounted).

    Off by default: running instrumented code with no simulator is
    usually a harness bug, so the hooks raise
    :class:`~repro.errors.NoActiveSimulationError` unless enabled.
    """
    global _fallback_precise
    _fallback_precise = enabled


def _simulator() -> Optional[Simulator]:
    simulator = current_simulator()
    if simulator is None and not _fallback_precise:
        raise NoActiveSimulationError(
            "instrumented EnerPy code executed outside a Simulator context"
        )
    return simulator


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def _ej_binop(op: str, kind: str, approximate: bool, left, right):
    simulator = _simulator()
    if simulator is None:
        return _PLAIN_BINOPS[op](left, right)
    return simulator.binop(op, kind, approximate, left, right)


def _ej_unop(op: str, kind: str, approximate: bool, operand):
    simulator = _simulator()
    if simulator is None:
        if op == "neg":
            return -operand
        if op == "abs":
            return abs(operand)
        return ~operand
    return simulator.unop(op, kind, approximate, operand)


# ----------------------------------------------------------------------
# SRAM
# ----------------------------------------------------------------------
def _ej_local_read(value, kind: str, approximate: bool):
    simulator = _simulator()
    if simulator is None:
        return value
    return simulator.local_read(value, kind, approximate)


def _ej_local_write(value, kind: str, approximate: bool):
    simulator = _simulator()
    if simulator is None:
        return value
    return simulator.local_write(value, kind, approximate)


# ----------------------------------------------------------------------
# Arrays
# ----------------------------------------------------------------------
def _ej_new_array(backing: list, element_kind: str, approximate: bool, label: str = "") -> list:
    simulator = _simulator()
    if simulator is None:
        return backing
    return simulator.new_array(backing, element_kind, approximate, label)


def _ej_array_load(backing: list, index):
    simulator = _simulator()
    if simulator is None:
        return backing[index]
    return simulator.array_load(backing, index)


def _ej_array_store(backing: list, index, value):
    simulator = _simulator()
    if simulator is None:
        backing[index] = value
        return value
    return simulator.array_store(backing, index, value)


# ----------------------------------------------------------------------
# Approximable objects
# ----------------------------------------------------------------------
def _ej_field_specs(specs: List[tuple]) -> List[FieldSpec]:
    """Build FieldSpec objects from (name, kind, approx) tuples."""
    return [FieldSpec(name, kind, bool(approx)) for name, kind, approx in specs]


def _ej_new_object(cls: type, qualifier_is_approx: bool, specs: List[tuple], *args):
    """Allocate an instance with a precision qualifier.

    Registration happens *before* ``__init__`` runs so that constructor
    bodies see the instance's precision (``_ej_receiver_is_approx``)
    and field writes during construction hit the right storage.
    """
    simulator = _simulator()
    if simulator is None:
        return cls(*args)
    instance = cls.__new__(cls)
    simulator.new_object(instance, qualifier_is_approx, _ej_field_specs(specs))
    instance.__init__(*args)
    return instance


def _ej_field_load(instance: object, name: str):
    simulator = _simulator()
    if simulator is None:
        return getattr(instance, name)
    return simulator.field_load(instance, name)


def _ej_field_store(instance: object, name: str, value):
    simulator = _simulator()
    if simulator is None:
        setattr(instance, name, value)
        return value
    return simulator.field_store(instance, name, value)


def _ej_receiver_is_approx(instance: object) -> bool:
    """Dynamic _APPROX dispatch test for receivers of ``top``-ish type."""
    simulator = _simulator()
    if simulator is None:
        return False
    return simulator.object_is_approx(instance)


# ----------------------------------------------------------------------
# Endorsement
# ----------------------------------------------------------------------
def _ej_endorse(value):
    simulator = _simulator()
    if simulator is None:
        return value
    return simulator.endorse(value)


# ----------------------------------------------------------------------
# Dispatch, iteration, math, conversion
# ----------------------------------------------------------------------
def _ej_invoke(receiver, method: str, *args):
    """Dynamic _APPROX dispatch for context-qualified receivers.

    Inside an approximable class the receiver's precision is only known
    at runtime: an approximate instance uses ``m_APPROX`` when the class
    provides it (paper Section 2.5.2), otherwise the precise body.
    """
    if _ej_receiver_is_approx(receiver):
        variant = getattr(receiver, method + "_APPROX", None)
        if variant is not None:
            return variant(*args)
    return getattr(receiver, method)(*args)


def _ej_iter_array(backing: list):
    """Iterate over a simulated array, loading each element via DRAM."""
    simulator = _simulator()
    if simulator is None:
        yield from backing
        return
    for index in range(len(backing)):
        yield simulator.array_load(backing, index)


def _ej_math(fn: str, approximate, *args):
    """A math-library call on (possibly) approximate operands."""
    simulator = _simulator()
    if simulator is None:
        import math

        return getattr(math, fn)(*args)
    return simulator.math_call(fn, bool(approximate), args)


def _ej_convert(kind: str, approximate, value):
    """int()/float() conversion of (possibly) approximate data."""
    simulator = _simulator()
    if simulator is None:
        return int(value) if kind == "int" else float(value)
    return simulator.convert(kind, bool(approximate), value)


def _ej_range(*args):
    """range() that charges one precise integer op per iteration.

    Loop induction variables are precise control-flow work; the paper
    notes their increments dominate the non-approximable integer
    operations of FP-heavy benchmarks.
    """
    simulator = _simulator()
    if simulator is None:
        yield from range(*args)
        return
    for value in range(*args):
        simulator.clock.advance()
        simulator.alu.precise_ops += 1
        yield value
