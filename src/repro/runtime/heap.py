"""Heap registry: which Python objects are simulated approximate storage.

Instrumented code allocates arrays and approximable objects through the
simulator, which records them here.  The registry keeps strong
references for the duration of a run (runs are bounded), so ``id()``
keys cannot be recycled while registered; the context closes every
record into the storage accountant when it exits.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.memory.cacheline import CACHE_LINE_BYTES, LineMap
from repro.memory.layout import FieldSpec, field_sizes, layout_array, layout_object

__all__ = ["ArrayRecord", "ObjectRecord", "HeapRegistry"]


@dataclasses.dataclass
class ArrayRecord:
    """A registered simulated array (backed by a plain Python list)."""

    backing: list
    element_kind: str
    elements_approximate: bool
    line_map: LineMap
    approx_bytes: int
    precise_bytes: int
    label: str = ""
    #: Last value loaded from this array (software-substrate elision).
    last_read: Optional[object] = None
    #: Deterministic registration ordinal — the trace-stable identity
    #: (``id()`` differs across processes; this does not).
    ordinal: int = -1


@dataclasses.dataclass
class ObjectRecord:
    """A registered approximable-class instance."""

    instance: object
    qualifier_is_approx: bool
    line_map: LineMap
    #: field name -> True if the field's *storage* is approximate (its
    #: adapted qualifier is approx AND its cache line is approximate).
    approx_storage_fields: Dict[str, bool] = dataclasses.field(default_factory=dict)
    #: field name -> kind, for fault-model word widths.
    field_kinds: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: field name -> True if the adapted qualifier is approx (register/
    #: operation approximation applies even when storage is demoted).
    approx_value_fields: Dict[str, bool] = dataclasses.field(default_factory=dict)
    #: Deterministic registration ordinal (see :class:`ArrayRecord`).
    ordinal: int = -1


class HeapRegistry:
    """Tracks simulated heap containers by Python object identity."""

    def __init__(self, line_bytes: int = CACHE_LINE_BYTES) -> None:
        self.line_bytes = line_bytes
        self._arrays: Dict[int, ArrayRecord] = {}
        self._objects: Dict[int, ObjectRecord] = {}
        # Containers share one ordinal sequence in registration order,
        # which is deterministic per run (unlike id()).
        self._next_ordinal = 0

    # ------------------------------------------------------------------
    # Arrays
    # ------------------------------------------------------------------
    def register_array(
        self,
        backing: list,
        element_kind: str,
        elements_approximate: bool,
        label: str = "",
    ) -> ArrayRecord:
        key = id(backing)
        existing = self._arrays.get(key)
        if existing is not None and existing.backing is backing:
            return existing
        line_map, approx_bytes, _demoted = layout_array(
            len(backing), element_kind, elements_approximate, line_bytes=self.line_bytes
        )
        precise_bytes = line_map.total_bytes - approx_bytes
        record = ArrayRecord(
            backing=backing,
            element_kind=element_kind,
            elements_approximate=elements_approximate,
            line_map=line_map,
            approx_bytes=approx_bytes,
            precise_bytes=precise_bytes,
            label=label,
            ordinal=self._next_ordinal,
        )
        self._next_ordinal += 1
        self._arrays[key] = record
        return record

    def array_record(self, backing: list) -> Optional[ArrayRecord]:
        record = self._arrays.get(id(backing))
        if record is not None and record.backing is backing:
            return record
        return None

    # ------------------------------------------------------------------
    # Approximable objects
    # ------------------------------------------------------------------
    def register_object(
        self,
        instance: object,
        qualifier_is_approx: bool,
        fields: List[FieldSpec],
    ) -> ObjectRecord:
        key = id(instance)
        existing = self._objects.get(key)
        if existing is not None and existing.instance is instance:
            return existing
        line_map = layout_object([fields], line_bytes=self.line_bytes)
        record = ObjectRecord(
            instance=instance,
            qualifier_is_approx=qualifier_is_approx,
            line_map=line_map,
            ordinal=self._next_ordinal,
        )
        self._next_ordinal += 1
        for spec in fields:
            record.field_kinds[spec.name] = spec.kind
            record.approx_value_fields[spec.name] = spec.approximate
            record.approx_storage_fields[spec.name] = (
                spec.approximate and line_map.field_is_approx_storage(spec.name)
            )
        self._objects[key] = record
        return record

    def object_record(self, instance: object) -> Optional[ObjectRecord]:
        record = self._objects.get(id(instance))
        if record is not None and record.instance is instance:
            return record
        return None

    # ------------------------------------------------------------------
    def drain(self):
        """Yield (container_id, approx_bytes, precise_bytes, label, ordinal)
        for all registered containers, clearing the registry."""
        for key, array in self._arrays.items():
            yield (
                key,
                array.approx_bytes,
                array.precise_bytes,
                array.label or "array",
                array.ordinal,
            )
        for key, obj in self._objects.items():
            approx = obj.line_map.approx_bytes
            precise = obj.line_map.precise_bytes
            yield key, approx, precise, type(obj.instance).__name__, obj.ordinal
        self._arrays.clear()
        self._objects.clear()

    @property
    def array_count(self) -> int:
        return len(self._arrays)

    @property
    def object_count(self) -> int:
        return len(self._objects)
