"""Aggregated execution statistics (feeds Figures 3–5 and Table 3).

A :class:`RunStats` snapshot is produced by the simulator at the end of
an instrumented run.  It is a plain value object so experiment drivers
and benchmarks can serialise or diff it freely.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable

__all__ = ["RunStats"]


def _fraction(approx: float, precise: float) -> float:
    total = approx + precise
    if total == 0:
        return 0.0
    return approx / total


@dataclasses.dataclass(frozen=True)
class RunStats:
    """Everything measured during one simulated execution.

    Snapshots form a commutative monoid under :meth:`merge` / ``+``
    (field-wise exact integer addition, ``RunStats()`` as the zero), so
    per-seed snapshots collected by the parallel executor aggregate to
    exactly the serial totals regardless of how the seed range was
    split; ``tests/test_stats_merge.py`` pins the algebra.
    """

    # Functional-unit operation counts.
    int_ops_approx: int = 0
    int_ops_precise: int = 0
    fp_ops_approx: int = 0
    fp_ops_precise: int = 0

    # Storage byte-ticks (DESIGN.md: byte-second analogue).
    dram_approx_byte_ticks: int = 0
    dram_precise_byte_ticks: int = 0
    sram_approx_byte_ticks: int = 0
    sram_precise_byte_ticks: int = 0

    # Fault-injection event counts.
    fu_faults: int = 0
    sram_read_upsets: int = 0
    sram_write_failures: int = 0
    dram_decayed_bits: int = 0

    # Program-level events.
    endorsements: int = 0
    allocations: int = 0
    ticks: int = 0

    # ------------------------------------------------------------------
    @property
    def int_ops_total(self) -> int:
        return self.int_ops_approx + self.int_ops_precise

    @property
    def fp_ops_total(self) -> int:
        return self.fp_ops_approx + self.fp_ops_precise

    @property
    def ops_total(self) -> int:
        return self.int_ops_total + self.fp_ops_total

    @property
    def fp_proportion(self) -> float:
        """Fraction of dynamic arithmetic that is floating point (Table 3)."""
        return _fraction(self.fp_ops_total, self.int_ops_total)

    @property
    def int_approx_fraction(self) -> float:
        """Fraction of integer operations executed approximately (Fig. 3)."""
        return _fraction(self.int_ops_approx, self.int_ops_precise)

    @property
    def fp_approx_fraction(self) -> float:
        """Fraction of FP operations executed approximately (Fig. 3)."""
        return _fraction(self.fp_ops_approx, self.fp_ops_precise)

    @property
    def dram_approx_fraction(self) -> float:
        """Fraction of DRAM byte-ticks holding approximate data (Fig. 3)."""
        return _fraction(self.dram_approx_byte_ticks, self.dram_precise_byte_ticks)

    @property
    def sram_approx_fraction(self) -> float:
        """Fraction of SRAM byte-ticks holding approximate data (Fig. 3)."""
        return _fraction(self.sram_approx_byte_ticks, self.sram_precise_byte_ticks)

    @property
    def total_faults(self) -> int:
        return (
            self.fu_faults
            + self.sram_read_upsets
            + self.sram_write_failures
            + self.dram_decayed_bits
        )

    # ------------------------------------------------------------------
    # Merging (parallel seed fan-out aggregates split ranges)
    # ------------------------------------------------------------------
    def __add__(self, other: "RunStats") -> "RunStats":
        """Field-wise sum of two snapshots.

        Every field is an exact integer counter, so addition is
        associative: merging stats from split seed ranges equals the
        stats of the unsplit serial sequence in any grouping.
        """
        if not isinstance(other, RunStats):
            return NotImplemented
        return RunStats(
            **{
                field.name: getattr(self, field.name) + getattr(other, field.name)
                for field in dataclasses.fields(self)
            }
        )

    @classmethod
    def merge(cls, stats: Iterable["RunStats"]) -> "RunStats":
        """Aggregate any number of snapshots (empty input -> zero stats)."""
        merged = cls()
        for item in stats:
            merged = merged + item
        return merged

    def as_dict(self) -> Dict[str, float]:
        """A flat dict of raw counters plus derived fractions."""
        data = dataclasses.asdict(self)
        data.update(
            fp_proportion=self.fp_proportion,
            int_approx_fraction=self.int_approx_fraction,
            fp_approx_fraction=self.fp_approx_fraction,
            dram_approx_fraction=self.dram_approx_fraction,
            sram_approx_fraction=self.sram_approx_fraction,
        )
        return data
