"""A small sphere-and-plane ray tracer — the paper's Raytracer workload.

The paper's Raytracer runs ray/plane intersections over a simple scene;
annotation there was "so straightforward that it could have been largely
automated: for certain methods, every float declaration was replaced
indiscriminately with an @Approx float declaration."  We do the same:
all geometry and shading arithmetic is approximate; only image geometry
(pixel loops) and the final endorsed pixel writes are precise.

The scene: a checkered ground plane and three spheres under a single
directional light, with hard shadows.

QoS metric: mean pixel difference (paper).
"""

import math

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand


def _sphere_hit(
    ox: Approx[float], oy: Approx[float], oz: Approx[float],
    dx: Approx[float], dy: Approx[float], dz: Approx[float],
    cx: float, cy: float, cz: float, radius: float,
) -> Approx[float]:
    """Distance to the sphere along the ray, or -1.0 for a miss."""
    lx: Approx[float] = ox - cx
    ly: Approx[float] = oy - cy
    lz: Approx[float] = oz - cz
    a: Approx[float] = dx * dx + dy * dy + dz * dz
    b: Approx[float] = 2.0 * (lx * dx + ly * dy + lz * dz)
    c: Approx[float] = lx * lx + ly * ly + lz * lz - radius * radius
    disc: Approx[float] = b * b - 4.0 * a * c
    if endorse(disc < 0.0):
        return -1.0
    root: Approx[float] = math.sqrt(disc)
    t: Approx[float] = (0.0 - b - root) / (2.0 * a)
    if endorse(t > 0.001):
        return t
    t = (0.0 - b + root) / (2.0 * a)
    if endorse(t > 0.001):
        return t
    return -1.0


def _plane_hit(
    oy: Approx[float], dy: Approx[float]
) -> Approx[float]:
    """Distance to the y=0 ground plane, or -1.0 for a miss."""
    if endorse(dy > -0.0001) and endorse(dy < 0.0001):
        return -1.0
    t: Approx[float] = (0.0 - oy) / dy
    if endorse(t > 0.001):
        return t
    return -1.0


# Scene: three spheres (x, y, z, radius, brightness).
S0X = 0.0
S0Y = 1.0
S0Z = 5.0
S0R = 1.0
S1X = -2.2
S1Y = 0.7
S1Z = 6.5
S1R = 0.7
S2X = 1.9
S2Y = 0.6
S2Z = 4.0
S2R = 0.6

LX = 0.45
LY = 0.8
LZ = -0.4


def _shade(
    ox: Approx[float], oy: Approx[float], oz: Approx[float],
    dx: Approx[float], dy: Approx[float], dz: Approx[float],
) -> Approx[float]:
    """Trace one primary ray; returns a brightness in [0, 1]."""
    best_t: Approx[float] = -1.0
    which: int = -1

    t: Approx[float] = _sphere_hit(ox, oy, oz, dx, dy, dz, S0X, S0Y, S0Z, S0R)
    if endorse(t > 0.0):
        best_t = t
        which = 0
    t = _sphere_hit(ox, oy, oz, dx, dy, dz, S1X, S1Y, S1Z, S1R)
    if endorse(t > 0.0) and (which < 0 or endorse(t < best_t)):
        best_t = t
        which = 1
    t = _sphere_hit(ox, oy, oz, dx, dy, dz, S2X, S2Y, S2Z, S2R)
    if endorse(t > 0.0) and (which < 0 or endorse(t < best_t)):
        best_t = t
        which = 2
    t = _plane_hit(oy, dy)
    if endorse(t > 0.0) and (which < 0 or endorse(t < best_t)):
        best_t = t
        which = 3

    if which < 0:
        return 0.1  # sky

    hx: Approx[float] = ox + dx * best_t
    hy: Approx[float] = oy + dy * best_t
    hz: Approx[float] = oz + dz * best_t

    if which == 3:
        # Checkered plane with a shadow probe toward the light.
        shadow: Approx[float] = _sphere_hit(hx, hy, hz, LX, LY, LZ, S0X, S0Y, S0Z, S0R)
        lit: float = 1.0
        if endorse(shadow > 0.0):
            lit = 0.35
        cell: Approx[int] = int(hx + 100.0) + int(hz + 100.0)
        base: float = 0.75
        if endorse(cell % 2 == 0):
            base = 0.35
        return base * lit

    # Sphere shading: Lambertian against the directional light.
    nx: Approx[float] = hx - S0X
    ny: Approx[float] = hy - S0Y
    nz: Approx[float] = hz - S0Z
    if which == 1:
        nx = hx - S1X
        ny = hy - S1Y
        nz = hz - S1Z
    if which == 2:
        nx = hx - S2X
        ny = hy - S2Y
        nz = hz - S2Z
    norm: Approx[float] = math.sqrt(nx * nx + ny * ny + nz * nz)
    if endorse(norm < 0.000001):
        return 0.1
    diffuse: Approx[float] = (nx * LX + ny * LY + nz * LZ) / norm
    if endorse(diffuse < 0.0):
        diffuse = 0.0
    return 0.15 + 0.85 * diffuse


def render(width: int, height: int, seed: int) -> list[int]:
    """Render the scene; returns the endorsed grayscale raster (0-255)."""
    rng: Rand = Rand(seed)
    jitter: float = 0.001 * rng.next_float()
    image: list[Approx[int]] = [0] * (width * height)
    aspect: float = (1.0 * width) / height
    for py in range(height):
        for px in range(width):
            dx: Approx[float] = ((px + 0.5) / width - 0.5) * aspect + jitter
            dy: Approx[float] = 0.5 - (py + 0.5) / height
            dz: Approx[float] = 1.0
            brightness: Approx[float] = _shade(0.0, 1.2, 0.0, dx, dy, dz)
            level: Approx[int] = int(brightness * 255.0)
            if endorse(level < 0):
                level = 0
            if endorse(level > 255):
                level = 255
            image[py * width + px] = level
    out: list[int] = [0] * (width * height)
    for i in range(width * height):
        out[i] = endorse(image[i])
    return out
