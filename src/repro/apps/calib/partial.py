"""Recovery-calibration workload: a partially approximate pipeline.

Every bundled paper application funnels *all* of its approximate
mechanisms into the returned output (or into control/index decisions
that may steer it), so a sound selective re-execution degenerates to a
whole-program precise re-run.  This workload is the complementary
shape: a stage whose approximate byproduct provably never reaches the
output.

* The **histogram kernel** is the output path: approximate integer
  counts (DRAM-resident array, ALU increments), endorsed on return.
  Its acceptability invariant is conservation — the counts must sum to
  exactly ``samples`` — which a precise execution always satisfies.
* The **shadow smoothing pass** is an approximate floating-point
  byproduct (SRAM-resident scalars, FPU arithmetic) whose result
  dead-ends in a local: it feeds no return value, no branch condition
  and no array index, so the recovery slicer can prove it
  output-irrelevant and leave it approximate during a precise retry.

Used by ``repro/recovery`` tests and ``benchmarks/bench_recovery.py``
to pin the selective-re-execution energy win; not part of ``ALL_APPS``.
"""

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand


def fill_histogram(samples: int, bins: int, seed: int) -> list[Approx[int]]:
    """Approximate bin counts of ``samples`` uniform draws."""
    rng: Rand = Rand(seed)
    hist: list[Approx[int]] = [0] * bins
    for i in range(samples):
        b: int = rng.next_in(0, bins)
        hist[b] = hist[b] + 1
    return hist


def shadow_smooth(samples: int, seed: int) -> None:
    """Approximate exponential smoothing whose result is never consumed."""
    rng: Rand = Rand(seed)
    acc: Approx[float] = 0.0
    prev: Approx[float] = 0.0
    for i in range(samples):
        z: Approx[float] = rng.next_float() - 0.5
        acc = acc + z * 0.75 + prev * 0.25
        prev = z


def run_calibration(samples: int, bins: int, seed: int) -> list[int]:
    """The benchmark entry: histogram (returned) + shadow pass (dead)."""
    hist: list[Approx[int]] = fill_histogram(samples, bins, seed)
    shadow_smooth(samples // 2, seed + 1)
    out: list[int] = [0] * bins
    for i in range(bins):
        out[i] = endorse(hist[i])
    return out
