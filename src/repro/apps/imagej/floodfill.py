"""Raster flood fill — the paper's ImageJ workload.

ImageJ is the evaluation's integer-dominated, aggressively annotated
application: because the original code is heavily bounds-checked, the
paper marks *even the pixel coordinates* as approximate, endorsing them
at the points they become array indices.  An erroneous coordinate then
fills (or skips) the wrong pixel instead of crashing.

The image is a synthetic raster of rectangular "rooms" connected by
corridors; the workload flood-fills from a seed point, as in the
paper's ImageJ flood-fill experiment.

QoS metric: mean pixel difference (paper).
"""

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand

FILL: int = 200
BACKGROUND: int = 40
WALL: int = 255


def make_image(width: int, height: int, seed: int) -> list[Approx[int]]:
    """Background with random walls: a maze for the fill to explore."""
    rng: Rand = Rand(seed)
    image: list[Approx[int]] = [0] * (width * height)
    for i in range(width * height):
        image[i] = BACKGROUND
    # Border walls.
    for x in range(width):
        image[x] = WALL
        image[(height - 1) * width + x] = WALL
    for y in range(height):
        image[y * width] = WALL
        image[y * width + width - 1] = WALL
    # Interior wall segments with gaps.
    walls: int = width // 4
    for w in range(walls):
        wx: int = rng.next_in(2, width - 2)
        gap: int = rng.next_in(1, height - 1)
        for y in range(1, height - 1):
            if y != gap:
                image[y * width + wx] = WALL
    return image


def _pixel_is_background(image: list[Approx[int]], width: int, height: int, x: int, y: int) -> bool:
    """Bounds-checked probe; out-of-bounds reads as wall (no exception)."""
    if x < 0 or x >= width or y < 0 or y >= height:
        return False
    value: Approx[int] = image[y * width + x]
    # An approximate pixel compare: endorsed because it steers the fill.
    return endorse(value < 128)


def flood_fill(image: list[Approx[int]], width: int, height: int, seed_x: int, seed_y: int) -> int:
    """Scanline-free 4-connected fill; returns the filled pixel count.

    The work stack holds *approximate* coordinates (the paper's
    aggressive annotation), endorsed and bounds-checked as they are
    popped and turned into array indices.
    """
    capacity: int = width * height
    stack_x: list[Approx[int]] = [0] * capacity
    stack_y: list[Approx[int]] = [0] * capacity
    top: int = 0
    stack_x[0] = seed_x
    stack_y[0] = seed_y
    top = 1
    filled: int = 0

    while top > 0:
        top = top - 1
        x: int = endorse(stack_x[top])
        y: int = endorse(stack_y[top])
        if x < 0 or x >= width or y < 0 or y >= height:
            continue  # an approximation error pushed a bad coordinate
        if not _pixel_is_background(image, width, height, x, y):
            continue
        image[y * width + x] = FILL
        filled = filled + 1
        if top + 4 <= capacity:
            stack_x[top] = x + 1
            stack_y[top] = y
            stack_x[top + 1] = x - 1
            stack_y[top + 1] = y
            stack_x[top + 2] = x
            stack_y[top + 2] = y + 1
            stack_x[top + 3] = x
            stack_y[top + 3] = y - 1
            top = top + 4
    return filled


def run_floodfill(width: int, height: int, seed: int) -> list[int]:
    """The benchmark entry: build a maze, fill it, endorse the raster."""
    image: list[Approx[int]] = make_image(width, height, seed)
    flood_fill(image, width, height, width // 2 + 1, height // 2)
    out: list[int] = [0] * (width * height)
    for i in range(width * height):
        out[i] = endorse(image[i])
    return out
