"""SciMark2 FFT kernel, ported to EnerPy (paper Table 3, row 1).

A radix-2 complex FFT over interleaved (re, im) data, annotated the way
the paper annotates the Java original: the signal data is approximate;
loop indices, bit-reversal bookkeeping, and sizes are precise; the
twiddle factors are computed precisely and *flow into* approximate
arithmetic by subtyping.  The final output is endorsed for return — the
classic resilient-compute-then-precise-output phase structure.

QoS metric: mean entry difference (paper).
"""

import math

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand


def make_signal(n: int, seed: int) -> list[Approx[float]]:
    """A random complex signal: 2*n interleaved approximate floats."""
    rng: Rand = Rand(seed)
    data: list[Approx[float]] = [0.0] * (2 * n)
    for i in range(2 * n):
        data[i] = rng.next_float() - 0.5
    return data


def _log2(n: int) -> int:
    log: int = 0
    k: int = 1
    while k < n:
        k = k * 2
        log = log + 1
    return log


def bit_reverse(data: list[Approx[float]], n: int) -> None:
    """In-place bit-reversal permutation of the interleaved signal."""
    j: int = 0
    for i in range(n - 1):
        if i < j:
            tr: Approx[float] = data[2 * i]
            ti: Approx[float] = data[2 * i + 1]
            data[2 * i] = data[2 * j]
            data[2 * i + 1] = data[2 * j + 1]
            data[2 * j] = tr
            data[2 * j + 1] = ti
        k: int = n // 2
        while k <= j:
            j = j - k
            k = k // 2
        j = j + k


def transform_internal(data: list[Approx[float]], n: int, direction: int) -> None:
    """The butterfly passes (direction +1 forward, -1 inverse)."""
    if n <= 1:
        return
    logn: int = _log2(n)
    bit_reverse(data, n)
    dual: int = 1
    for bit in range(logn):
        w_real: float = 1.0
        w_imag: float = 0.0
        theta: float = 2.0 * direction * math.pi / (2.0 * dual)
        s: float = math.sin(theta)
        t: float = math.sin(theta / 2.0)
        s2: float = 2.0 * t * t

        for b in range(0, n, 2 * dual):
            i: int = 2 * b
            j: int = 2 * (b + dual)
            wd_real: Approx[float] = data[j]
            wd_imag: Approx[float] = data[j + 1]
            data[j] = data[i] - wd_real
            data[j + 1] = data[i + 1] - wd_imag
            data[i] = data[i] + wd_real
            data[i + 1] = data[i + 1] + wd_imag

        for a in range(1, dual):
            tmp_real: float = w_real - s * w_imag - s2 * w_real
            tmp_imag: float = w_imag + s * w_real - s2 * w_imag
            w_real = tmp_real
            w_imag = tmp_imag
            for b in range(0, n, 2 * dual):
                i = 2 * (b + a)
                j = 2 * (b + a + dual)
                z1_real: Approx[float] = data[j]
                z1_imag: Approx[float] = data[j + 1]
                wd_real = w_real * z1_real - w_imag * z1_imag
                wd_imag = w_real * z1_imag + w_imag * z1_real
                data[j] = data[i] - wd_real
                data[j + 1] = data[i + 1] - wd_imag
                data[i] = data[i] + wd_real
                data[i + 1] = data[i + 1] + wd_imag
        dual = dual * 2


def fft_forward(data: list[Approx[float]], n: int) -> None:
    transform_internal(data, n, -1)


def fft_inverse(data: list[Approx[float]], n: int) -> None:
    """Inverse transform including the 1/n normalisation."""
    transform_internal(data, n, 1)
    norm: float = 1.0 / n
    for i in range(2 * n):
        data[i] = data[i] * norm


def run_fft(n: int, seed: int) -> list[float]:
    """The benchmark entry: transform a random signal, endorse the output."""
    data: list[Approx[float]] = make_signal(n, seed)
    fft_forward(data, n)
    out: list[float] = [0.0] * (2 * n)
    for i in range(2 * n):
        out[i] = endorse(data[i])
    return out


def run_fft_roundtrip(n: int, seed: int) -> list[float]:
    """Forward + inverse transform; output should match the input."""
    data: list[Approx[float]] = make_signal(n, seed)
    fft_forward(data, n)
    fft_inverse(data, n)
    out: list[float] = [0.0] * (2 * n)
    for i in range(2 * n):
        out[i] = endorse(data[i])
    return out
