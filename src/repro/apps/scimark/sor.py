"""SciMark2 Jacobi successive over-relaxation, ported to EnerPy.

A 5-point-stencil SOR sweep over an n x n grid (flattened row-major,
as an approximate float array).  The relaxation arithmetic is
approximate; grid geometry and iteration counts are precise.

QoS metric: mean entry difference (paper).
"""

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand


def make_grid(n: int, seed: int) -> list[Approx[float]]:
    rng: Rand = Rand(seed)
    grid: list[Approx[float]] = [0.0] * (n * n)
    for i in range(n * n):
        grid[i] = rng.next_float()
    return grid


def sor_execute(omega: float, grid: list[Approx[float]], n: int, iterations: int) -> None:
    """Relax the interior of the grid ``iterations`` times, in place."""
    omega_over_four: float = omega * 0.25
    one_minus_omega: float = 1.0 - omega
    for p in range(iterations):
        for i in range(1, n - 1):
            row: int = i * n
            above: int = row - n
            below: int = row + n
            for j in range(1, n - 1):
                grid[row + j] = omega_over_four * (
                    grid[above + j]
                    + grid[below + j]
                    + grid[row + j - 1]
                    + grid[row + j + 1]
                ) + one_minus_omega * grid[row + j]


def run_sor(n: int, iterations: int, seed: int) -> list[float]:
    """The benchmark entry: relax a random grid, endorse the result."""
    grid: list[Approx[float]] = make_grid(n, seed)
    sor_execute(1.25, grid, n, iterations)
    out: list[float] = [0.0] * (n * n)
    for i in range(n * n):
        out[i] = endorse(grid[i])
    return out
