"""SciMark2 sparse matrix-vector multiply (CRS), ported to EnerPy.

The nonzero values and the dense vector are approximate; the row
pointers and column indices — the structure that addresses memory —
must stay precise (array subscripts are required precise, so the type
system itself forces this annotation, exactly the experience the paper
reports: "the requirements that conditions and array indices be precise
helped quickly distinguish data that was likely to be sensitive").

QoS metric: mean normalized difference of the result vector (paper).
"""

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand


def run_sparse_matmult(n: int, nonzeros_per_row: int, iterations: int, seed: int) -> list[float]:
    """y = A*x repeated; A is n x n with a fixed number of nonzeros/row."""
    rng: Rand = Rand(seed)
    nz: int = n * nonzeros_per_row

    values: list[Approx[float]] = [0.0] * nz
    col: list[int] = [0] * nz
    row: list[int] = [0] * (n + 1)
    x: list[Approx[float]] = [0.0] * n
    y: list[Approx[float]] = [0.0] * n

    for i in range(nz):
        values[i] = rng.next_float() - 0.5
    for i in range(n):
        x[i] = rng.next_float()
    for r in range(n):
        row[r] = r * nonzeros_per_row
        for k in range(nonzeros_per_row):
            col[r * nonzeros_per_row + k] = rng.next_in(0, n)
    row[n] = nz

    for it in range(iterations):
        for r in range(n):
            total: Approx[float] = 0.0
            row_start: int = row[r]
            row_end: int = row[r + 1]
            for idx in range(row_start, row_end):
                total = total + values[idx] * x[col[idx]]
            y[r] = total

    out: list[float] = [0.0] * n
    for i in range(n):
        out[i] = endorse(y[i])
    return out
