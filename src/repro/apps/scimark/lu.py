"""SciMark2 LU factorization with partial pivoting, ported to EnerPy.

The matrix entries are approximate; the pivot bookkeeping is precise.
Pivot *selection* compares approximate magnitudes, so each comparison
is endorsed — choosing a slightly suboptimal pivot degrades accuracy
gracefully, whereas an unendorsed approximate branch would be rejected
by the checker (Section 2.4).

QoS metric: mean entry difference over the packed LU factors (paper).
"""

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand


def make_matrix(n: int, seed: int) -> list[Approx[float]]:
    rng: Rand = Rand(seed)
    a: list[Approx[float]] = [0.0] * (n * n)
    for i in range(n * n):
        a[i] = rng.next_float() - 0.5
    # Make the matrix diagonally dominant so factorization is stable
    # and QoS differences reflect approximation, not conditioning.
    for d in range(n):
        a[d * n + d] = a[d * n + d] + 4.0
    return a


def lu_factor(a: list[Approx[float]], n: int, pivot: list[int]) -> None:
    """In-place LU factorization with partial pivoting (row-major)."""
    for j in range(n):
        # Find the pivot: the row with the largest |a[i][j]|, i >= j.
        jp: int = j
        best: Approx[float] = abs(a[j * n + j])
        for i in range(j + 1, n):
            candidate: Approx[float] = abs(a[i * n + j])
            if endorse(candidate > best):
                jp = i
                best = candidate
        pivot[j] = jp

        if jp != j:
            for k in range(n):
                tmp: Approx[float] = a[j * n + k]
                a[j * n + k] = a[jp * n + k]
                a[jp * n + k] = tmp

        if j < n - 1:
            recp: Approx[float] = 1.0 / a[j * n + j]
            for i in range(j + 1, n):
                a[i * n + j] = a[i * n + j] * recp
            for i in range(j + 1, n):
                mult: Approx[float] = a[i * n + j]
                for k in range(j + 1, n):
                    a[i * n + k] = a[i * n + k] - mult * a[j * n + k]


def run_lu(n: int, seed: int) -> list[float]:
    """The benchmark entry: factor a random matrix, endorse the factors."""
    a: list[Approx[float]] = make_matrix(n, seed)
    pivot: list[int] = [0] * n
    lu_factor(a, n, pivot)
    out: list[float] = [0.0] * (n * n)
    for i in range(n * n):
        out[i] = endorse(a[i])
    return out
