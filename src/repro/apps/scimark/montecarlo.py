"""SciMark2 Monte Carlo pi estimation, ported to EnerPy.

The integration keeps its principal data — the sampled coordinates —
in *local variables*, so almost all of its approximate storage is SRAM
rather than DRAM, reproducing the paper's observation that MonteCarlo
(unlike the array-heavy kernels) has very little approximate DRAM data.
The under-the-curve test is the kernel's single endorsement (Table 3
reports exactly one for MonteCarlo).

QoS metric: normalized difference of the pi estimate (paper).
"""

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand


def integrate(samples: int, seed: int) -> float:
    """Estimate pi by sampling the unit quarter-circle."""
    rng: Rand = Rand(seed)
    under_curve: int = 0
    for count in range(samples):
        x: Approx[float] = rng.next_float()
        y: Approx[float] = rng.next_float()
        if endorse(x * x + y * y <= 1.0):
            under_curve = under_curve + 1
    return under_curve / (1.0 * samples) * 4.0


def run_montecarlo(samples: int, seed: int) -> float:
    return integrate(samples, seed)
