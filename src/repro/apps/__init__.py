"""The paper's application suite, ported to EnerPy (Table 3).

Each :class:`AppSpec` bundles an annotated EnerPy program (one or more
module files), its benchmark entry point with default workload
parameters, and its quality-of-service metric.  The experiment drivers
in :mod:`repro.experiments` iterate :data:`ALL_APPS`.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, List, Tuple

from repro.qos import (
    binary_correctness,
    decision_fraction_error,
    mean_entry_difference,
    mean_normalized_difference,
    mean_pixel_difference,
    normalized_difference,
)

__all__ = ["AppSpec", "ALL_APPS", "app_by_name", "load_sources"]

_APPS_DIR = os.path.dirname(os.path.abspath(__file__))


@dataclasses.dataclass(frozen=True)
class AppSpec:
    """One ported application and how to run/evaluate it."""

    name: str
    description: str
    #: module name -> path relative to the apps directory.
    module_files: Dict[str, str]
    entry_module: str
    entry_function: str
    #: Arguments for the entry function.  The workload seed lives at
    #: :attr:`workload_seed_index` and is replaced per run by the
    #: harness (:meth:`workload_args`).
    default_args: Tuple
    #: QoS error between the precise and approximate outputs.
    qos: Callable
    qos_name: str
    #: Index into ``default_args`` of the workload-seed slot.  Negative
    #: indices count from the end (the historical convention was "last
    #: argument"); validated eagerly so a mis-declared spec fails at
    #: load time, not deep inside a campaign.
    workload_seed_index: int = -1

    def __post_init__(self) -> None:
        if not self.default_args:
            raise ValueError(
                f"app {self.name!r}: default_args must include a workload-seed slot"
            )
        index = self.workload_seed_index
        if index < 0:
            index += len(self.default_args)
        if not 0 <= index < len(self.default_args):
            raise ValueError(
                f"app {self.name!r}: workload_seed_index {self.workload_seed_index} "
                f"is out of range for {len(self.default_args)} default argument(s)"
            )
        seed_default = self.default_args[index]
        if isinstance(seed_default, bool) or not isinstance(seed_default, int):
            raise ValueError(
                f"app {self.name!r}: the workload-seed slot (argument {index}) "
                f"must default to an int, got {seed_default!r}"
            )

    @property
    def seed_slot(self) -> int:
        """The workload-seed position as a normalised (>= 0) index."""
        index = self.workload_seed_index
        return index + len(self.default_args) if index < 0 else index

    def workload_args(self, workload_seed: int) -> Tuple:
        """``default_args`` with the seed slot replaced by ``workload_seed``."""
        slot = self.seed_slot
        return (
            self.default_args[:slot]
            + (workload_seed,)
            + self.default_args[slot + 1 :]
        )

    def source_paths(self) -> Dict[str, str]:
        return {
            module: os.path.join(_APPS_DIR, relative)
            for module, relative in self.module_files.items()
        }


def load_sources(spec: AppSpec) -> Dict[str, str]:
    """Read the app's EnerPy module sources from disk."""
    sources = {}
    for module, path in spec.source_paths().items():
        with open(path, "r", encoding="utf-8") as handle:
            sources[module] = handle.read()
    return sources


def _pixel_qos(precise, approx) -> float:
    return mean_pixel_difference(precise, approx, max_value=255.0)


ALL_APPS: List[AppSpec] = [
    AppSpec(
        name="FFT",
        description="SciMark2 radix-2 complex FFT",
        module_files={"rand": "common/rand.py", "fft": "scimark/fft.py"},
        entry_module="fft",
        entry_function="run_fft",
        default_args=(256, 0),
        workload_seed_index=1,
        qos=mean_entry_difference,
        qos_name="Mean entry difference",
    ),
    AppSpec(
        name="SOR",
        description="SciMark2 successive over-relaxation",
        module_files={"rand": "common/rand.py", "sor": "scimark/sor.py"},
        entry_module="sor",
        entry_function="run_sor",
        default_args=(40, 10, 0),
        workload_seed_index=2,
        qos=mean_entry_difference,
        qos_name="Mean entry difference",
    ),
    AppSpec(
        name="MonteCarlo",
        description="SciMark2 Monte Carlo pi estimation",
        module_files={"rand": "common/rand.py", "montecarlo": "scimark/montecarlo.py"},
        entry_module="montecarlo",
        entry_function="run_montecarlo",
        default_args=(20000, 0),
        workload_seed_index=1,
        qos=normalized_difference,
        qos_name="Normalized difference",
    ),
    AppSpec(
        name="SparseMatMult",
        description="SciMark2 sparse matrix-vector multiply (CRS)",
        module_files={
            "rand": "common/rand.py",
            "sparsematmult": "scimark/sparsematmult.py",
        },
        entry_module="sparsematmult",
        entry_function="run_sparse_matmult",
        default_args=(200, 5, 4, 0),
        workload_seed_index=3,
        qos=mean_normalized_difference,
        qos_name="Mean normalized difference",
    ),
    AppSpec(
        name="LU",
        description="SciMark2 LU factorization with partial pivoting",
        module_files={"rand": "common/rand.py", "lu": "scimark/lu.py"},
        entry_module="lu",
        entry_function="run_lu",
        default_args=(40, 0),
        workload_seed_index=1,
        qos=mean_entry_difference,
        qos_name="Mean entry difference",
    ),
    AppSpec(
        name="ZXing",
        description="2-D matrix barcode decoder (MiniCode)",
        module_files={
            "rand": "common/rand.py",
            "bitmatrix": "zxing/bitmatrix.py",
            "barcode": "zxing/barcode.py",
            "decoder": "zxing/decoder.py",
        },
        entry_module="decoder",
        entry_function="run_zxing",
        default_args=(12, 3, 20, 0),
        workload_seed_index=3,
        qos=binary_correctness,
        qos_name="1 if incorrect, 0 if correct",
    ),
    AppSpec(
        name="jMonkeyEngine",
        description="Ray/triangle intersection batch (collision detection)",
        module_files={
            "rand": "common/rand.py",
            "vector": "jmonkey/vector.py",
            "triangles": "jmonkey/triangles.py",
        },
        entry_module="triangles",
        entry_function="run_intersections",
        default_args=(400, 0),
        workload_seed_index=1,
        qos=decision_fraction_error,
        qos_name="Fraction of correct decisions normalized to 0.5",
    ),
    AppSpec(
        name="ImageJ",
        description="Raster flood fill with approximate coordinates",
        module_files={"rand": "common/rand.py", "floodfill": "imagej/floodfill.py"},
        entry_module="floodfill",
        entry_function="run_floodfill",
        default_args=(48, 36, 0),
        workload_seed_index=2,
        qos=_pixel_qos,
        qos_name="Mean pixel difference",
    ),
    AppSpec(
        name="Raytracer",
        description="Sphere-and-plane ray tracer",
        module_files={"rand": "common/rand.py", "tracer": "raytracer/tracer.py"},
        entry_module="tracer",
        entry_function="render",
        default_args=(64, 48, 0),
        workload_seed_index=2,
        qos=_pixel_qos,
        qos_name="Mean pixel difference",
    ),
]

_BY_NAME = {app.name.lower(): app for app in ALL_APPS}


def app_by_name(name: str) -> AppSpec:
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(app.name for app in ALL_APPS)
        raise KeyError(f"unknown application {name!r}; known: {known}") from None
