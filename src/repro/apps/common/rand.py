"""Deterministic in-program random source for EnerPy workloads.

Workload data must be generated *inside* the checked program so that
the arrays it fills are registered with the simulator; this linear
congruential generator (the classic glibc constants) is precise code —
its state drives no approximation and both the precise and approximate
runs of an experiment see identical inputs for a given seed.
"""

from repro import Approx, Precise, Top, Context, approximable, endorse


class Rand:
    """A 31-bit linear congruential generator (precise)."""

    state: int

    def __init__(self, seed: int) -> None:
        self.state = (seed * 2654435761) % 2147483648
        if self.state == 0:
            self.state = 12345

    def next_int(self) -> int:
        self.state = (self.state * 1103515245 + 12345) % 2147483648
        return self.state

    def next_float(self) -> float:
        return self.next_int() / 2147483648.0

    def next_in(self, low: int, high: int) -> int:
        # Use the high bits: the low bits of an LCG cycle with short
        # periods (the lowest bit strictly alternates).
        span: int = high - low
        return low + (self.next_int() // 65536) % span
