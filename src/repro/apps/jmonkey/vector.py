"""An approximable 3-D vector, modelled on jMonkeyEngine's Vector3f.

The paper marks jMonkeyEngine's ``Vector3f`` as ``@Approximable`` with
``@Context`` members, so ``@Approx Vector3f v`` behaves syntactically
like an approximate primitive declaration (Section 6.3).  All members
are ``@Context``: a precise instance computes precisely, an approximate
instance stores and computes approximately, and the same method bodies
serve both.
"""

from repro import Approx, Precise, Top, Context, approximable, endorse


@approximable
class Vector3f:
    x: Context[float]
    y: Context[float]
    z: Context[float]

    def __init__(self, x: Context[float], y: Context[float], z: Context[float]) -> None:
        self.x = x
        self.y = y
        self.z = z

    def dot(self, o: Context["Vector3f"]) -> Context[float]:
        return self.x * o.x + self.y * o.y + self.z * o.z

    def cross_x(self, o: Context["Vector3f"]) -> Context[float]:
        return self.y * o.z - self.z * o.y

    def cross_y(self, o: Context["Vector3f"]) -> Context[float]:
        return self.z * o.x - self.x * o.z

    def cross_z(self, o: Context["Vector3f"]) -> Context[float]:
        return self.x * o.y - self.y * o.x

    def length_squared(self) -> Context[float]:
        return self.x * self.x + self.y * self.y + self.z * self.z
