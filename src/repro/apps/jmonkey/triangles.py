"""Ray/triangle intersection batch — the paper's jMonkeyEngine workload.

The paper runs "many 3D triangle intersection problems, an algorithm
frequently used for collision detection in games."  We implement
Moller-Trumbore intersection over approximate ``Vector3f`` data: the
geometry is approximate, the per-query yes/no decision is endorsed at
the comparison points (a wrong collision decision degrades gameplay,
not memory safety).

QoS metric: fraction of correct decisions normalized to 0.5 (paper).
"""

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand
from vector import Vector3f

EPSILON = 0.0000001


def _random_vector(rng: Rand, scale: float) -> Approx[Vector3f]:
    vx: float = (rng.next_float() - 0.5) * scale
    vy: float = (rng.next_float() - 0.5) * scale
    vz: float = (rng.next_float() - 0.5) * scale
    v: Approx[Vector3f] = Vector3f(vx, vy, vz)
    return v


def intersects(
    origin: Approx[Vector3f],
    direction: Approx[Vector3f],
    v0: Approx[Vector3f],
    v1: Approx[Vector3f],
    v2: Approx[Vector3f],
) -> bool:
    """Moller-Trumbore ray/triangle test (decision endorsed)."""
    edge1: Approx[Vector3f] = Vector3f(v1.x - v0.x, v1.y - v0.y, v1.z - v0.z)
    edge2: Approx[Vector3f] = Vector3f(v2.x - v0.x, v2.y - v0.y, v2.z - v0.z)

    h: Approx[Vector3f] = Vector3f(
        direction.cross_x(edge2), direction.cross_y(edge2), direction.cross_z(edge2)
    )
    a: Approx[float] = edge1.dot(h)
    if endorse(a > 0.0 - EPSILON) and endorse(a < EPSILON):
        return False  # ray parallel to the triangle plane

    f: Approx[float] = 1.0 / a
    s: Approx[Vector3f] = Vector3f(origin.x - v0.x, origin.y - v0.y, origin.z - v0.z)
    u: Approx[float] = f * s.dot(h)
    if endorse(u < 0.0) or endorse(u > 1.0):
        return False

    q: Approx[Vector3f] = Vector3f(s.cross_x(edge1), s.cross_y(edge1), s.cross_z(edge1))
    v: Approx[float] = f * direction.dot(q)
    if endorse(v < 0.0) or endorse(u + v > 1.0):
        return False

    t: Approx[float] = f * edge2.dot(q)
    return endorse(t > EPSILON)


def run_intersections(queries: int, seed: int) -> list[int]:
    """The benchmark entry: decide ``queries`` random ray/triangle pairs.

    Half of the rays are aimed at a point inside the triangle (likely
    hits) and half at an unrelated random point (likely misses), so the
    decision stream is balanced like a real collision-detection phase.
    Returns one endorsed 0/1 decision per query.
    """
    rng: Rand = Rand(seed)
    decisions: list[int] = [0] * queries
    for qi in range(queries):
        v0: Approx[Vector3f] = _random_vector(rng, 2.0)
        v1: Approx[Vector3f] = _random_vector(rng, 2.0)
        v2: Approx[Vector3f] = _random_vector(rng, 2.0)
        origin: Approx[Vector3f] = _random_vector(rng, 8.0)
        aim_inside: int = rng.next_in(0, 2)
        if aim_inside == 1:
            # Barycentric point strictly inside the triangle.
            w0: float = 0.2 + 0.6 * rng.next_float()
            w1: float = (1.0 - w0) * rng.next_float()
            w2: float = 1.0 - w0 - w1
            tx: Approx[float] = w0 * v0.x + w1 * v1.x + w2 * v2.x
            ty: Approx[float] = w0 * v0.y + w1 * v1.y + w2 * v2.y
            tz: Approx[float] = w0 * v0.z + w1 * v1.z + w2 * v2.z
            target: Approx[Vector3f] = Vector3f(tx, ty, tz)
        else:
            target = _random_vector(rng, 8.0)
        direction: Approx[Vector3f] = Vector3f(
            target.x - origin.x, target.y - origin.y, target.z - origin.z
        )
        if intersects(origin, direction, v0, v1, v2):
            decisions[qi] = 1
    return decisions
