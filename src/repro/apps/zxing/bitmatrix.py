"""Approximable bit containers, modelled on ZXing's BitArray/BitMatrix.

The paper singles these out: "ZXing contains BitArray and BitMatrix
classes that are thin wrappers over binary data.  It is useful to have
approximate bit matrices in some settings (e.g., during image
processing) but precise matrices in other settings (e.g., in checksum
calculation)."  Both are ``@approximable`` with ``@Context`` storage.

``BitArray.is_range`` carries the paper's algorithmic approximation:
the ``_APPROX`` variant samples only every other bit in the range.
"""

from repro import Approx, Precise, Top, Context, approximable, endorse


@approximable
class BitArray:
    size: int
    bits: Context[list[int]]

    def __init__(self, size: int) -> None:
        self.size = size
        data: Context[list[int]] = [0] * size
        self.bits = data

    def get(self, index: int) -> Context[int]:
        return self.bits[index]

    def set_bit(self, index: int, value: Context[int]) -> None:
        self.bits[index] = value

    def is_range(self, start: int, end: int, expected: int) -> bool:
        """Whether every bit in [start, end) equals ``expected``."""
        for i in range(start, end):
            if endorse(self.bits[i] != expected):
                return False
        return True

    def is_range_APPROX(self, start: int, end: int, expected: int) -> bool:
        """Check only every other bit — cheaper, usually right (paper)."""
        for i in range(start, end, 2):
            if endorse(self.bits[i] != expected):
                return False
        return True


@approximable
class BitMatrix:
    size: int
    bits: Context[list[int]]

    def __init__(self, size: int) -> None:
        self.size = size
        data: Context[list[int]] = [0] * (size * size)
        self.bits = data

    def get(self, x: int, y: int) -> Context[int]:
        return self.bits[y * self.size + x]

    def set_bit(self, x: int, y: int, value: Context[int]) -> None:
        self.bits[y * self.size + x] = value

    def row(self, y: int) -> Context[BitArray]:
        """Copy one row out as a BitArray of matching precision."""
        out: Context[BitArray] = BitArray(self.size)
        for x in range(self.size):
            out.set_bit(x, self.bits[y * self.size + x])
        return out
