"""MiniCode decoder — the paper's ZXing workload, end to end.

The decode pipeline mirrors ZXing's QR path at small scale:

1. **Threshold** the grayscale image (approximate mean over all pixels,
   endorsed once).
2. **Binarize** into an approximate :class:`BitMatrix` — image-domain
   data stays approximate, and every per-pixel black/white decision is
   an endorsed approximate condition.  This is why the paper's ZXing
   has by far the most endorsements (247): "ZXing's control flow
   frequently depends on whether a particular pixel is black."
3. **Locate finder patterns** by 1:1:3:1:1 run-length scanning, with a
   vertical cross-check, then cluster candidate centers.
4. **Sample the grid** with the affine transform induced by the three
   centers.  The sampling coordinates are approximate floats, endorsed
   exactly where they become array indices; an out-of-range coordinate
   reads as a white pixel instead of raising — the paper's
   image-transform hardening (Section 6.3).
5. **Extract and verify**: the payload bits are endorsed into a precise
   :class:`BitArray`, and the checksum check is fully precise — the
   fault-sensitive reduction phase that follows the fault-tolerant
   image phase.

QoS metric: 1 if the decoded message is incorrect, 0 if correct (paper).
"""

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand
from bitmatrix import BitArray, BitMatrix
from barcode import (
    MODULES,
    FINDER,
    checksum,
    encode,
    image_size,
    in_finder_zone,
    make_message,
    render,
)

MAX_CANDIDATES: int = 64


def compute_threshold(image: list[Approx[int]], count: int) -> int:
    """Black/white threshold: midpoint of the clamped luminance range.

    Each pixel is endorsed and clamped to [0, 255] before the min/max
    update — a faulted pixel can then shift the midpoint by at most
    half the clamp range, unlike a long approximate accumulation where
    one random-value fault corrupts the whole sum.  (Robustness through
    *how* endorsed data is used is the programmer's job; the type
    system only marks where the risk is.)
    """
    lo: int = 255
    hi: int = 0
    for i in range(count):
        v: int = endorse(image[i])
        if v < 0:
            v = 0
        if v > 255:
            v = 255
        if v < lo:
            lo = v
        if v > hi:
            hi = v
    return (lo + hi) // 2


def binarize(image: list[Approx[int]], size: int, threshold: int) -> Approx[BitMatrix]:
    """Black/white decisions over approximate pixels (endorsed each)."""
    matrix: Approx[BitMatrix] = BitMatrix(size)
    for y in range(size):
        for x in range(size):
            if endorse(image[y * size + x] < threshold):
                matrix.set_bit(x, y, 1)
    return matrix


def _check_ratios(runs: list[int]) -> bool:
    """Does a 5-run window look like a finder's 1:1:3:1:1 signature?"""
    total: int = runs[0] + runs[1] + runs[2] + runs[3] + runs[4]
    if total < 7:
        return False
    unit: float = total / 7.0
    tolerance: float = unit / 2.0
    ok: bool = True
    if abs(runs[0] - unit) > tolerance:
        ok = False
    if abs(runs[1] - unit) > tolerance:
        ok = False
    if abs(runs[2] - 3.0 * unit) > 3.0 * tolerance:
        ok = False
    if abs(runs[3] - unit) > tolerance:
        ok = False
    if abs(runs[4] - unit) > tolerance:
        ok = False
    return ok


def _vertical_run_center(
    matrix: Approx[BitMatrix], x: int, y: int, size: int
) -> float:
    """Cross-check the finder signature vertically through (x, y).

    Walks the column through the candidate center and requires the same
    1:1:3:1:1 black/white structure (core, separator rings) that the
    horizontal scan saw — ZXing's crossCheckVertical.  Returns the core
    center, or -1.0 if the column does not look like a finder.
    """
    # Core run upward and downward from y.
    top: int = y
    while top > 0 and endorse(matrix.get(x, top - 1) == 1):
        top = top - 1
    bottom: int = y
    while bottom < size - 1 and endorse(matrix.get(x, bottom + 1) == 1):
        bottom = bottom + 1
    core: int = bottom - top + 1

    # White separator above, then the black ring above.
    white_up: int = 0
    yy: int = top - 1
    while yy >= 0 and endorse(matrix.get(x, yy) == 0):
        white_up = white_up + 1
        yy = yy - 1
    ring_up: int = 0
    while yy >= 0 and endorse(matrix.get(x, yy) == 1):
        ring_up = ring_up + 1
        yy = yy - 1

    # White separator below, then the black ring below.
    white_down: int = 0
    yy = bottom + 1
    while yy < size and endorse(matrix.get(x, yy) == 0):
        white_down = white_down + 1
        yy = yy + 1
    ring_down: int = 0
    while yy < size and endorse(matrix.get(x, yy) == 1):
        ring_down = ring_down + 1
        yy = yy + 1

    runs: list[int] = [0] * 5
    runs[0] = ring_up
    runs[1] = white_up
    runs[2] = core
    runs[3] = white_down
    runs[4] = ring_down
    if not _check_ratios(runs):
        return -1.0
    return (top + bottom) / 2.0


def find_finder_centers(
    matrix: Approx[BitMatrix],
    size: int,
    centers_x: list[float],
    centers_y: list[float],
) -> int:
    """Scan for finder candidates; returns the number of clusters found.

    Cluster centers are written into ``centers_x``/``centers_y`` (which
    must each hold at least MAX_CANDIDATES slots).
    """
    found: int = 0
    runs: list[int] = [0] * 5
    for y in range(size):
        run_count: int = 0
        run_length: int = 0
        current: int = 0  # the margin guarantees each row starts white
        for x in range(size):
            bit: int = 0
            if endorse(matrix.get(x, y) == 1):
                bit = 1
            if bit == current:
                run_length = run_length + 1
            else:
                # A run just ended: shift it into the 5-run window.
                runs[0] = runs[1]
                runs[1] = runs[2]
                runs[2] = runs[3]
                runs[3] = runs[4]
                runs[4] = run_length
                run_count = run_count + 1
                # The window matches when the run that just ended was
                # black (so a white run begins: bit == 0) and the five
                # runs B:W:BBB:W:B have ~1:1:3:1:1 lengths.
                if run_count >= 5 and bit == 0 and _check_ratios(runs):
                    center_x: float = x - runs[4] - runs[3] - runs[2] / 2.0
                    center_y: float = _vertical_run_center(
                        matrix, int(center_x), y, size
                    )
                    if center_y >= 0.0:
                        found = _add_candidate(
                            centers_x, centers_y, found, center_x, center_y
                        )
                current = bit
                run_length = 1
    return found


def _add_candidate(
    centers_x: list[float],
    centers_y: list[float],
    found: int,
    cx: float,
    cy: float,
) -> int:
    """Merge a candidate into the cluster list (4-pixel radius)."""
    for i in range(found):
        dx: float = centers_x[i] - cx
        dy: float = centers_y[i] - cy
        if dx * dx + dy * dy < 16.0:
            centers_x[i] = (centers_x[i] + cx) / 2.0
            centers_y[i] = (centers_y[i] + cy) / 2.0
            return found
    if found < MAX_CANDIDATES:
        centers_x[found] = cx
        centers_y[found] = cy
        return found + 1
    return found


def _order_centers(centers_x: list[float], centers_y: list[float]) -> bool:
    """Reorder the three centers as [top-left, top-right, bottom-left].

    The top-left corner is the vertex of the right angle: the center
    whose two edge vectors have the largest |cross product| relative to
    the opposite side.  For our axis-aligned codes, it is the center
    closest to the other two.
    """
    d01: float = _dist2(centers_x, centers_y, 0, 1)
    d02: float = _dist2(centers_x, centers_y, 0, 2)
    d12: float = _dist2(centers_x, centers_y, 1, 2)
    # The hypotenuse connects TR and BL; the center NOT on it is TL.
    tl: int = 2
    if d01 > d02 and d01 > d12:
        tl = 2
    elif d02 > d01 and d02 > d12:
        tl = 1
    else:
        tl = 0
    _swap(centers_x, centers_y, 0, tl)
    # Of the remaining two, TR has the greater x.
    if centers_x[1] < centers_x[2]:
        _swap(centers_x, centers_y, 1, 2)
    # Sanity: TR right of TL, BL below TL.
    if centers_x[1] <= centers_x[0]:
        return False
    if centers_y[2] <= centers_y[0]:
        return False
    return True


def _dist2(xs: list[float], ys: list[float], i: int, j: int) -> float:
    dx: float = xs[i] - xs[j]
    dy: float = ys[i] - ys[j]
    return dx * dx + dy * dy


def _swap(xs: list[float], ys: list[float], i: int, j: int) -> None:
    tx: float = xs[i]
    ty: float = ys[i]
    xs[i] = xs[j]
    ys[i] = ys[j]
    xs[j] = tx
    ys[j] = ty


def sample_pixel(
    image: list[Approx[int]], size: int, x: Approx[float], y: Approx[float]
) -> Approx[int]:
    """Sample with the paper's hardening: out-of-bounds reads white.

    The coordinates are approximate and endorsed exactly where they
    become array indices (Section 6.3: "We marked these coordinates as
    approximate and then endorsed them at the point they are used as
    array indices"); a transient fault in them yields a white pixel,
    not an ArrayIndexOutOfBoundsException.
    """
    xi: int = endorse(int(x + 0.5))
    yi: int = endorse(int(y + 0.5))
    if xi < 0 or xi >= size or yi < 0 or yi >= size:
        return 255
    return image[yi * size + xi]


def sample_grid(
    image: list[Approx[int]],
    size: int,
    threshold: int,
    centers_x: list[float],
    centers_y: list[float],
) -> Approx[BitMatrix]:
    """Sample all module centers using the finder-derived transform."""
    # Finder centers sit 3.5 modules in from each corner, so TL->TR
    # spans MODULES-7 modules.
    span: float = 1.0 * (MODULES - FINDER)
    ux_x: Approx[float] = (centers_x[1] - centers_x[0]) / span
    ux_y: Approx[float] = (centers_y[1] - centers_y[0]) / span
    uy_x: Approx[float] = (centers_x[2] - centers_x[0]) / span
    uy_y: Approx[float] = (centers_y[2] - centers_y[0]) / span

    matrix: Approx[BitMatrix] = BitMatrix(MODULES)
    half: float = FINDER / 2.0
    for my in range(MODULES):
        for mx in range(MODULES):
            fx: Approx[float] = mx - half + 0.5
            fy: Approx[float] = my - half + 0.5
            px: Approx[float] = centers_x[0] + fx * ux_x + fy * uy_x
            py: Approx[float] = centers_y[0] + fx * ux_y + fy * uy_y
            level: Approx[int] = sample_pixel(image, size, px, py)
            if endorse(level < threshold):
                matrix.set_bit(mx, my, 1)
    return matrix


def verify_finder(matrix: Approx[BitMatrix]) -> bool:
    """Cheap structural check on the sampled top-left finder.

    Uses the approximate BitArray's ``is_range`` — on this approximate
    instance the ``is_range_APPROX`` implementation runs, checking only
    every other bit (the paper's algorithmic-approximation example).
    """
    top_row: Approx[BitArray] = matrix.row(0)
    return top_row.is_range(0, FINDER, 1)


def extract_payload(matrix: Approx[BitMatrix]) -> list[int]:
    """Endorse the data modules into a precise bit stream and decode.

    Returns the message bytes, or an empty list if the checksum fails.
    This is the fault-sensitive precise phase: from here on everything
    is precise data.
    """
    capacity: int = 0
    for y in range(MODULES):
        for x in range(MODULES):
            if not in_finder_zone(x, y):
                capacity = capacity + 1

    stream: BitArray = BitArray(capacity)
    cursor: int = 0
    for y in range(MODULES):
        for x in range(MODULES):
            if not in_finder_zone(x, y):
                bit: int = 0
                if endorse(matrix.get(x, y) == 1):
                    bit = 1
                stream.set_bit(cursor, bit)
                cursor = cursor + 1

    length: int = _read_byte(stream, 0)
    if length < 1 or (length + 2) * 8 > capacity:
        empty: list[int] = [0] * 0
        return empty
    message: list[int] = [0] * length
    for i in range(length):
        message[i] = _read_byte(stream, (i + 1) * 8)
    expected: int = _read_byte(stream, (length + 1) * 8)
    if checksum(message, length) != expected:
        failed: list[int] = [0] * 0
        return failed
    return message


def _read_byte(stream: BitArray, offset: int) -> int:
    value: int = 0
    for b in range(8):
        value = value * 2 + stream.get(offset + b)
    return value


def decode(image: list[Approx[int]], size: int) -> list[int]:
    """Full decode; empty list when the image cannot be read."""
    threshold: int = compute_threshold(image, size * size)
    matrix: Approx[BitMatrix] = binarize(image, size, threshold)

    centers_x: list[float] = [0.0] * MAX_CANDIDATES
    centers_y: list[float] = [0.0] * MAX_CANDIDATES
    found: int = find_finder_centers(matrix, size, centers_x, centers_y)
    if found != 3:
        nothing: list[int] = [0] * 0
        return nothing
    if not _order_centers(centers_x, centers_y):
        nothing2: list[int] = [0] * 0
        return nothing2

    sampled: Approx[BitMatrix] = sample_grid(image, size, threshold, centers_x, centers_y)
    if not verify_finder(sampled):
        nothing3: list[int] = [0] * 0
        return nothing3
    return extract_payload(sampled)


def run_zxing(message_length: int, scale: int, noise: int, seed: int) -> int:
    """The benchmark entry: encode, render noisily, decode, compare.

    Returns 1 when the decoded message matches the encoded one.
    """
    message: list[int] = make_message(message_length, seed)
    code: BitMatrix = encode(message, message_length)
    image: list[Approx[int]] = render(code, scale, 6, noise, seed + 1)
    size: int = image_size(scale, 6)
    decoded: list[int] = decode(image, size)
    if len(decoded) != message_length:
        return 0
    for i in range(message_length):
        if decoded[i] != message[i]:
            return 0
    return 1
