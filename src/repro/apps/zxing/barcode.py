"""MiniCode: the 2-D matrix barcode format for the ZXing-style workload.

A 21x21-module code with three QR-style 7x7 finder patterns (top-left,
top-right, bottom-left).  The payload is a length byte, the message
bytes, and a checksum byte, bit-packed row-major into the modules not
reserved by the 8x8 corner zones.

Encoding and rendering model the *sender* and the physical channel:
they are precise code that deposits the result into an approximate
image (pixels are exactly the data the paper treats as error-tolerant).
Rendering adds per-pixel sensor noise.
"""

from repro import Approx, Precise, Top, Context, approximable, endorse
from rand import Rand
from bitmatrix import BitArray, BitMatrix

MODULES: int = 21
FINDER: int = 7
ZONE: int = 8
CHECKSUM_SEED: int = 29


def in_finder_zone(x: int, y: int) -> bool:
    """Whether a module belongs to a reserved finder corner zone."""
    if x < ZONE and y < ZONE:
        return True
    if x >= MODULES - ZONE and y < ZONE:
        return True
    if x < ZONE and y >= MODULES - ZONE:
        return True
    return False


def data_capacity() -> int:
    count: int = 0
    for y in range(MODULES):
        for x in range(MODULES):
            if not in_finder_zone(x, y):
                count = count + 1
    return count


def checksum(payload: list[int], length: int) -> int:
    """A simple rolling checksum over the message bytes."""
    value: int = CHECKSUM_SEED
    for i in range(length):
        value = (value * 31 + payload[i]) % 256
    return value


def _place_finder(matrix: BitMatrix, left: int, top: int) -> None:
    """A 7x7 finder: black ring, white ring, 3x3 black core."""
    for dy in range(FINDER):
        for dx in range(FINDER):
            ring: int = 0
            if dx == 0 or dx == FINDER - 1 or dy == 0 or dy == FINDER - 1:
                ring = 1
            if dx >= 2 and dx <= 4 and dy >= 2 and dy <= 4:
                ring = 1
            matrix.set_bit(left + dx, top + dy, ring)


def encode(message: list[int], length: int) -> BitMatrix:
    """Build the module matrix for a message of ``length`` bytes."""
    matrix: BitMatrix = BitMatrix(MODULES)
    _place_finder(matrix, 0, 0)
    _place_finder(matrix, MODULES - FINDER, 0)
    _place_finder(matrix, 0, MODULES - FINDER)

    stream: BitArray = BitArray((length + 2) * 8)
    _put_byte(stream, 0, length)
    for i in range(length):
        _put_byte(stream, (i + 1) * 8, message[i])
    _put_byte(stream, (length + 1) * 8, checksum(message, length))

    cursor: int = 0
    total_bits: int = (length + 2) * 8
    for y in range(MODULES):
        for x in range(MODULES):
            if not in_finder_zone(x, y):
                if cursor < total_bits:
                    matrix.set_bit(x, y, stream.get(cursor))
                    cursor = cursor + 1
    return matrix


def _put_byte(stream: BitArray, offset: int, value: int) -> None:
    v: int = value % 256
    for b in range(8):
        bit: int = (v >> (7 - b)) & 1
        stream.set_bit(offset + b, bit)


def make_message(length: int, seed: int) -> list[int]:
    rng: Rand = Rand(seed)
    message: list[int] = [0] * length
    for i in range(length):
        message[i] = rng.next_in(0, 256)
    return message


def render(
    matrix: BitMatrix, scale: int, margin: int, noise: int, seed: int
) -> list[Approx[int]]:
    """Rasterise the code into a noisy grayscale image (row-major).

    Black modules render near 30, white near 225, the margin white;
    every pixel gets uniform sensor noise of amplitude ``noise``.
    The pixel array is approximate: this is the data the decoding
    phase may process unreliably.
    """
    rng: Rand = Rand(seed)
    size: int = MODULES * scale + 2 * margin
    image: list[Approx[int]] = [0] * (size * size)
    for py in range(size):
        for px in range(size):
            level: int = 225
            mx: int = (px - margin) // scale
            my: int = (py - margin) // scale
            if mx >= 0 and mx < MODULES and my >= 0 and my < MODULES:
                if endorse(matrix.get(mx, my) == 1):
                    level = 30
            wobble: int = rng.next_in(0, 2 * noise + 1) - noise
            image[py * size + px] = level + wobble
    return image


def image_size(scale: int, margin: int) -> int:
    return MODULES * scale + 2 * margin
