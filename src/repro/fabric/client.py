"""The coordinator's fan-out: pipelined connections to a daemon fleet.

A :class:`FleetClient` owns, per node, **two** TCP connections to the
PR-4 daemon (which serves each connection's lines strictly in order):

- the **work channel** carries ``batch`` dispatches — pipelined, so
  several coordinator threads can have batches in flight on one node
  and responses return FIFO;
- the **control channel** carries everything latency-sensitive
  (``healthz``/``metrics``/``config``/``store_pull``/``store_push``),
  which must never queue behind a multi-second batch.

On top of the channels sits the sharded dispatch loop
(:meth:`FleetClient.submit_items`):

1. every item's RunKey digest is computed locally and grouped by its
   home node under the current :class:`~repro.fabric.hashring.ShardMap`;
2. all groups dispatch concurrently (one ``batch`` per home node);
3. a group still unanswered after the **hedge deadline** is re-sent to
   the home's ring successor and the first complete answer wins (the
   answers are interchangeable: runs are pure functions of their key,
   and daemons coalesce/store-deduplicate, so duplicate execution is
   wasted work at worst, never wrong results);
4. a node whose connection dies is marked dead, the shard map is
   rebuilt over the survivors (consistent hashing: only the dead
   node's keys move), and its unanswered items re-dispatch — the
   **failover** path;
5. when a non-home node answers a group, the resulting store entries
   (plus their precise-reference entries) are **replicated** to the
   home shard over the control channels, so the fleet converges on
   every key living where the map says it lives.

Budget items (protocol v2 ``qos_budget`` submits) ride the same loop
with two deliberate differences: they shard on their **controller
identity** (app + budget) so one online tuner per identity sees every
request, and their groups are **never hedged** — controller state is
not idempotent, so racing two nodes would fork the feedback loop.
After a budget group answers, the controller's content-addressed state
is standby-replicated to the ring successor over the same
``store_pull``/``store_push`` ops as run entries.

Per-item results come back daemon-shaped (``{"ok": ..., "result" |
"error": ...}``) in input order; transport failures never surface as
exceptions from ``submit_items`` unless the whole fleet is gone.
FABRIC.md documents the protocol and these semantics; the counters
emitted through ``on_event`` are catalogued in
:mod:`repro.fabric.protocol`.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.hashring import DEFAULT_VNODES, ShardMap
from repro.fabric.protocol import ERROR_FLEET_UNAVAILABLE, OP_STORE_PULL, OP_STORE_PUSH
from repro.service.client import ServiceError
from repro.service.protocol import (
    ERROR_DRAINING,
    ProtocolError,
    SimRequest,
    decode_line,
    encode_line,
    error_response,
)

__all__ = ["FleetClient", "FleetError", "NodeAddress"]


class FleetError(ServiceError):
    """A fleet-level failure (unreachable node at boot, fleet lost)."""


@dataclasses.dataclass(frozen=True)
class NodeAddress:
    """One daemon's address; its ``label`` is the shard-map identity."""

    host: str
    port: int

    @property
    def label(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "NodeAddress":
        host, _, port = text.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"expected HOST:PORT, got {text!r}")
        return cls(host=host, port=int(port))


class _Pending:
    """One in-flight request: a rendezvous for its response line."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[dict] = None
        self.error: Optional[Exception] = None

    def done(self) -> bool:
        return self.event.is_set()

    def wait(self, timeout: Optional[float]) -> bool:
        return self.event.wait(timeout)


class _Channel:
    """One pipelined NDJSON connection with a reader thread.

    Sends are serialised by a lock; responses are matched FIFO against
    the pending queue (the daemon answers one connection's lines in
    order) and the echoed ``id`` is verified.  A transport failure
    fails every pending request and marks the channel dead.
    """

    def __init__(self, address: NodeAddress, purpose: str, connect_timeout: float) -> None:
        self.address = address
        try:
            self._sock = socket.create_connection(
                (address.host, address.port), timeout=connect_timeout
            )
        except OSError as exc:
            raise FleetError(
                f"cannot reach fleet node {address.label} ({purpose} channel): "
                f"{exc} (is 'repro serve' running there?)"
            ) from exc
        self._sock.settimeout(None)  # the reader thread blocks; hedging times out
        self._reader_file = self._sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: "collections.deque[Tuple[int, _Pending]]" = collections.deque()
        self._next_id = 0
        self.alive = True
        self._reader = threading.Thread(
            target=self._reader_loop,
            name=f"fabric-{purpose}-{address.label}",
            daemon=True,
        )
        self._reader.start()

    # ------------------------------------------------------------------
    def request(self, message: Dict[str, object]) -> _Pending:
        """Send one message; returns immediately with its rendezvous."""
        pending = _Pending()
        with self._send_lock:
            if not self.alive:
                pending.error = FleetError(
                    f"fleet node {self.address.label} is down"
                )
                pending.event.set()
                return pending
            self._next_id += 1
            request_id = self._next_id
            with self._pending_lock:
                self._pending.append((request_id, pending))
            try:
                self._sock.sendall(encode_line(dict(message, id=request_id)))
            except OSError as exc:
                self._fail_all(FleetError(
                    f"fleet node {self.address.label} send failed: {exc}"
                ))
        return pending

    def roundtrip(self, message: Dict[str, object], timeout: Optional[float]) -> dict:
        """Send and block for the response (control-channel traffic)."""
        pending = self.request(message)
        if not pending.wait(timeout):
            raise FleetError(
                f"fleet node {self.address.label} did not answer within {timeout}s"
            )
        if pending.error is not None:
            raise pending.error
        return pending.response

    # ------------------------------------------------------------------
    def _reader_loop(self) -> None:
        while True:
            try:
                line = self._reader_file.readline()
            except OSError as exc:
                self._fail_all(FleetError(
                    f"fleet node {self.address.label} read failed: {exc}"
                ))
                return
            if not line:
                self._fail_all(FleetError(
                    f"fleet node {self.address.label} closed the connection"
                ))
                return
            try:
                response = decode_line(line)
            except ProtocolError as exc:
                self._fail_all(FleetError(
                    f"fleet node {self.address.label} sent garbage: {exc}"
                ))
                return
            with self._pending_lock:
                expected = self._pending.popleft() if self._pending else None
            if expected is None or response.get("id") != expected[0]:
                self._fail_all(FleetError(
                    f"fleet node {self.address.label} answered out of order "
                    f"(got id {response.get('id')!r})"
                ))
                return
            expected[1].response = response
            expected[1].event.set()

    def retire(self, error: Exception) -> None:
        """Mark the channel dead from outside the reader thread.

        Used when the node itself announces it is leaving (a
        ``draining`` refusal): the socket may still be open, but no
        further traffic should be sent on it.
        """
        with self._send_lock:
            self._fail_all(error)

    def _fail_all(self, error: Exception) -> None:
        self.alive = False
        with self._pending_lock:
            pending = list(self._pending)
            self._pending.clear()
        for _, entry in pending:
            entry.error = error
            entry.event.set()
        self.close()

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class _Node:
    """One fleet member: its address and two channels."""

    def __init__(self, address: NodeAddress, connect_timeout: float) -> None:
        self.address = address
        self.label = address.label
        self.work = _Channel(address, "work", connect_timeout)
        self.control = _Channel(address, "control", connect_timeout)

    @property
    def alive(self) -> bool:
        return self.work.alive and self.control.alive

    def close(self) -> None:
        self.work.close()
        self.control.close()


class _WorkItem:
    """One campaign item with its routing identity."""

    __slots__ = ("index", "item", "digest", "ref_digest", "budget", "rounds")

    def __init__(
        self,
        index: int,
        item: dict,
        digest: str,
        ref_digest: Optional[str],
        budget: bool = False,
    ) -> None:
        self.index = index
        self.item = item
        self.digest = digest
        self.ref_digest = ref_digest
        self.budget = budget
        self.rounds = 0


def _routing_digest(item: dict) -> Tuple[str, Optional[str], bool]:
    """(shard digest, precise-reference digest, budget?) for one item.

    Raises :class:`~repro.service.protocol.ProtocolError` for items the
    daemon would reject anyway.  Crash probes (test-only) cannot
    resolve a RunKey; they shard on a hash of their seed instead and
    never replicate.

    Budget items (v2) shard on their **controller identity** — app and
    budget, the immutable fields of the tuner state — so every budget
    request for one (app, budget) lands on the same home daemon and
    feeds one controller.  Their reference digest is the app's baseline
    profile key, which the home shard needs for QoS references anyway.
    """
    request = SimRequest.from_wire(item)
    if request.is_crash_probe:
        material = f"crash:{request.fault_seed}:{request.workload_seed}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest(), None, False
    if request.is_budget:
        from repro.apps import app_by_name
        from repro.experiments.runkey import RunKey
        from repro.hardware.config import BASELINE

        spec = app_by_name(request.app)
        material = f"tuner:{spec.name}:{request.qos_budget!r}"
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
        reference = RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=0)
        return digest, reference.digest, True
    try:
        key = request.resolve_key()
    except KeyError as exc:
        # from_wire only checks shape; an unknown app name surfaces here.
        raise ProtocolError(str(exc.args[0] if exc.args else exc)) from None
    return key.digest, key.precise_reference().digest, False


class FleetClient:
    """Sharded, hedged, replicating access to a fleet of daemons.

    ``on_event(name, amount)`` receives the counter increments
    catalogued in :data:`repro.fabric.protocol.METRIC_NAMES`; the
    coordinator points it at its metrics registry.
    """

    #: Poll interval while racing a hedged dispatch against its home.
    _RACE_TICK_S = 0.01

    def __init__(
        self,
        addresses: Sequence[NodeAddress],
        vnodes: int = DEFAULT_VNODES,
        hedge_s: Optional[float] = 15.0,
        timeout: Optional[float] = 300.0,
        connect_timeout: float = 5.0,
        on_event: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        if not addresses:
            raise FleetError("a fleet needs at least one node")
        labels = [address.label for address in addresses]
        if len(set(labels)) != len(labels):
            raise FleetError(f"duplicate fleet nodes: {sorted(labels)}")
        self.hedge_s = hedge_s
        self.timeout = timeout
        self.vnodes = vnodes
        self._on_event = on_event or (lambda name, amount: None)
        self._nodes: Dict[str, _Node] = {}
        try:
            for address in addresses:
                self._nodes[address.label] = _Node(address, connect_timeout)
        except FleetError:
            self.close()
            raise
        self._map_lock = threading.Lock()
        self._map = ShardMap(list(self._nodes), vnodes=vnodes)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _event(self, name: str, amount: int = 1) -> None:
        self._on_event(name, amount)

    def alive_labels(self) -> List[str]:
        return [label for label, node in self._nodes.items() if node.alive]

    def shard_map(self) -> ShardMap:
        """The current map (over live nodes), rebuilt after deaths."""
        with self._map_lock:
            alive = self.alive_labels()
            if not alive:
                raise FleetError("every fleet node is down")
            if set(alive) != set(self._map.nodes):
                # Consistent hashing: this rebuild moves only the dead
                # nodes' keys — every warm store keeps its shard.
                self._map = ShardMap(alive, vnodes=self.vnodes)
            return self._map

    def _retire_node(self, label: str) -> None:
        """Drop a node that announced it is draining (leaving the fleet)."""
        reason = FleetError(f"fleet node {label} is draining")
        node = self._nodes[label]
        node.work.retire(reason)
        node.control.retire(reason)
        self._event("fabric.node_errors")

    def _successor(self, shard_map: ShardMap, digest: str, after: str) -> Optional[str]:
        """The first live node after ``after`` in the succession order."""
        for label in shard_map.succession(digest):
            if label != after and self._nodes[label].alive:
                return label
        return None

    # ------------------------------------------------------------------
    # The sharded dispatch loop
    # ------------------------------------------------------------------
    def submit_items(self, items: Sequence[dict]) -> List[dict]:
        """Run every item on its home shard; results in input order.

        Each result is daemon-shaped: ``{"ok": True, "result": {...}}``
        or ``{"ok": False, "error": {...}}``.  Items that every live
        node failed to answer carry the ``fleet_unavailable`` code.
        """
        results: List[Optional[dict]] = [None] * len(items)
        work: List[_WorkItem] = []
        for index, item in enumerate(items):
            try:
                digest, ref_digest, budget = _routing_digest(item)
            except ProtocolError as exc:
                self._event("fabric.bad_requests")
                results[index] = error_response(None, exc.code, str(exc))
                continue
            work.append(_WorkItem(index, item, digest, ref_digest, budget))
        self._event("fabric.items_total", len(work))

        max_rounds = len(self._nodes) + 1
        while work:
            try:
                shard_map = self.shard_map()
            except FleetError as exc:
                for entry in work:
                    results[entry.index] = error_response(
                        None, ERROR_FLEET_UNAVAILABLE, str(exc)
                    )
                break
            # Budget items group apart from fixed-config items (the
            # (home, budget?) key): a controller's feedback loop is not
            # idempotent, so budget groups are never hedged — a hedge
            # would drive two divergent controllers for one identity.
            groups: Dict[Tuple[str, bool], List[_WorkItem]] = {}
            for entry in work:
                entry.rounds += 1
                if entry.rounds > max_rounds:
                    results[entry.index] = error_response(
                        None,
                        ERROR_FLEET_UNAVAILABLE,
                        f"no fleet node answered after {max_rounds} dispatch rounds",
                    )
                    continue
                home = shard_map.assign(entry.digest)
                groups.setdefault((home, entry.budget), []).append(entry)
            if not groups:
                break
            # Phase 1 — dispatch every group concurrently.
            dispatched = []
            for (home, budget), members in sorted(groups.items()):
                node = self._nodes[home]
                pending = node.work.request(
                    {"op": "batch", "items": [m.item for m in members]}
                )
                dispatched.append((home, budget, members, pending))
            # Phase 2 — collect, hedging stragglers.
            work = []
            for home, budget, members, pending in dispatched:
                retry = self._collect_group(
                    shard_map, home, members, pending, results, allow_hedge=not budget
                )
                work.extend(retry)
        return [
            result
            if result is not None
            else error_response(None, ERROR_FLEET_UNAVAILABLE, "item was never answered")
            for result in results
        ]

    def _collect_group(
        self,
        shard_map: ShardMap,
        home: str,
        members: List[_WorkItem],
        pending: _Pending,
        results: List[Optional[dict]],
        allow_hedge: bool = True,
    ) -> List[_WorkItem]:
        """Wait for one group, hedging and failing over; returns retries."""
        deadline = time.monotonic() + self.timeout if self.timeout else None
        hedge_pending: Optional[_Pending] = None
        hedge_label: Optional[str] = None
        if allow_hedge and self.hedge_s is not None and not pending.wait(self.hedge_s):
            hedge_label = self._successor(shard_map, members[0].digest, home)
            if hedge_label is not None:
                self._event("fabric.hedged", len(members))
                hedge_pending = self._nodes[hedge_label].work.request(
                    {"op": "batch", "items": [m.item for m in members]}
                )
        winner_label: Optional[str] = None
        winner: Optional[_Pending] = None
        while True:
            if pending.done() and pending.error is None:
                winner_label, winner = home, pending
                break
            if hedge_pending is not None and hedge_pending.done() and hedge_pending.error is None:
                winner_label, winner = hedge_label, hedge_pending
                break
            home_failed = pending.done() and pending.error is not None
            hedge_failed = hedge_pending is None or (
                hedge_pending.done() and hedge_pending.error is not None
            )
            if home_failed and hedge_failed:
                self._event("fabric.node_errors")
                self._event("fabric.failovers", len(members))
                return members  # the dead channel already marked its node
            if deadline is not None and time.monotonic() > deadline:
                for entry in members:
                    results[entry.index] = error_response(
                        None,
                        ERROR_FLEET_UNAVAILABLE,
                        f"fleet node {home} did not answer within {self.timeout}s",
                    )
                return []
            # Race tick: wait on the likelier channel briefly.
            (hedge_pending if home_failed else pending).wait(self._RACE_TICK_S)
        response = winner.response
        if not response.get("ok"):
            error = response.get("error") or {}
            if error.get("code") == ERROR_DRAINING:
                # "resubmit elsewhere" — the coordinator IS the
                # resubmitter.  Retire the node (it is leaving the
                # fleet) so the shard map rebuilds without it, and
                # fail this group over to the survivors.
                self._retire_node(winner_label)
                self._event("fabric.failovers", len(members))
                return members
            # Any other structured whole-batch refusal (bad items):
            # relay it per item — the node is alive and authoritative.
            self._event("fabric.node_errors")
            for entry in members:
                results[entry.index] = {"ok": False, "error": dict(error)}
            return []
        answers = response.get("results")
        if not isinstance(answers, list) or len(answers) != len(members):
            self._event("fabric.node_errors")
            self._event("fabric.failovers", len(members))
            return members
        # Admission is per item, so a node that started draining
        # mid-batch refuses item-by-item inside an ok envelope.
        retries: List[_WorkItem] = []
        for entry, answer in zip(members, answers):
            if (
                not answer.get("ok")
                and (answer.get("error") or {}).get("code") == ERROR_DRAINING
            ):
                retries.append(entry)
            else:
                results[entry.index] = answer
        if retries:
            self._retire_node(winner_label)
            self._event("fabric.failovers", len(retries))
        if winner_label != home:
            self._replicate_group(winner_label, home, members, answers)
        elif any(entry.budget for entry in members):
            self._replicate_tuner_states(shard_map, winner_label, members, answers)
        return retries

    # ------------------------------------------------------------------
    # Store-entry replication (misrouted answers find their home shard)
    # ------------------------------------------------------------------
    def _replicate_group(
        self,
        source: str,
        home: str,
        members: List[_WorkItem],
        answers: List[dict],
    ) -> None:
        """Copy a group's entries (and references) to the home shard."""
        if not self._nodes[home].alive:
            return
        digests: List[str] = []
        seen = set()
        for entry, answer in zip(members, answers):
            if not answer.get("ok"):
                continue
            # A budget item's routing digest names its controller, not a
            # store entry; the executed probe's digest is in the answer.
            run_digest = (
                (answer.get("result") or {}).get("digest")
                if entry.budget
                else entry.digest
            )
            for digest in (run_digest, entry.ref_digest):
                if digest is not None and digest not in seen:
                    seen.add(digest)
                    digests.append(digest)
        for digest in digests:
            if not self.replicate_entry(digest, source, home):
                self._event("fabric.replication_failures")
            else:
                self._event("fabric.replicated_entries")

    def _replicate_tuner_states(
        self,
        shard_map: ShardMap,
        source: str,
        members: List[_WorkItem],
        answers: List[dict],
    ) -> None:
        """Standby-copy controller states to each identity's successor.

        Budget groups are never hedged, so their answers always come
        from the home shard; replicating the post-observation state to
        the ring successor means a home failover resumes a warm
        controller (the successor adopts whichever snapshot has seen
        more observations) instead of re-exploring from scratch.
        """
        seen = set()
        for entry, answer in zip(members, answers):
            if not entry.budget or not answer.get("ok"):
                continue
            tuner = (answer.get("result") or {}).get("tuner") or {}
            state_digest = tuner.get("state_digest")
            if not state_digest or state_digest in seen:
                continue
            seen.add(state_digest)
            target = self._successor(shard_map, entry.digest, source)
            if target is None:
                continue
            if self.replicate_entry(state_digest, source, target):
                self._event("fabric.replicated_tuner_states")
            else:
                self._event("fabric.replication_failures")

    def replicate_entry(self, digest: str, source: str, target: str) -> bool:
        """Pull ``digest`` from ``source`` and push it to ``target``."""
        try:
            pulled = self._nodes[source].control.roundtrip(
                {"op": OP_STORE_PULL, "digest": digest}, self.timeout
            )
            entry = pulled.get("entry") if pulled.get("ok") else None
            if entry is None:
                return False
            pushed = self._nodes[target].control.roundtrip(
                {"op": OP_STORE_PUSH, "entry": entry}, self.timeout
            )
            return bool(pushed.get("ok")) and bool(pushed.get("stored"))
        except (FleetError, KeyError):
            return False

    # ------------------------------------------------------------------
    # Control-plane fan-out
    # ------------------------------------------------------------------
    def _control_payload(self, op: str, field: str, timeout: float) -> Dict[str, dict]:
        """One control op against every live node; label -> payload/error."""
        payloads: Dict[str, dict] = {}
        for label, node in sorted(self._nodes.items()):
            if not node.alive:
                payloads[label] = {"error": "node is down"}
                continue
            try:
                response = node.control.roundtrip({"op": op}, timeout)
            except FleetError as exc:
                payloads[label] = {"error": str(exc)}
                continue
            if response.get("ok"):
                payloads[label] = response.get(field)
            else:
                payloads[label] = {"error": response.get("error")}
        return payloads

    def fleet_healthz(self, timeout: float = 5.0) -> Dict[str, dict]:
        return self._control_payload("healthz", "healthz", timeout)

    def fleet_metrics(self, timeout: float = 30.0) -> Dict[str, dict]:
        return self._control_payload("metrics", "metrics", timeout)

    def fleet_config(self, timeout: float = 5.0) -> Dict[str, dict]:
        return self._control_payload("config", "config", timeout)

    # ------------------------------------------------------------------
    def close(self) -> None:
        for node in self._nodes.values():
            node.close()
