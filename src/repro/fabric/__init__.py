"""Distributed campaign fabric: shard a RunKey grid over a daemon fleet.

The fabric is the horizontal-scale layer above the PR-4 simulation
daemon (:mod:`repro.service`).  One coordinator process
(``repro fabric serve``) fronts a fleet of ordinary ``repro serve``
nodes, each with its own run store, and makes them answer campaigns as
if they were one daemon:

- :mod:`repro.fabric.hashring` — the consistent-hash :class:`ShardMap`
  assigning every RunKey digest a home node (and a deterministic
  succession order for failover), stable under node join/leave.
- :mod:`repro.fabric.client` — :class:`FleetClient`, the coordinator's
  multi-connection fan-out: one pipelined work channel plus one
  control channel per node, hedged re-dispatch of stragglers, and
  store-entry replication over ``store_pull``/``store_push``.
- :mod:`repro.fabric.coordinator` — :class:`FabricCoordinator`, a TCP
  server speaking a superset of the daemon's NDJSON protocol (so the
  plain :class:`~repro.service.ServiceClient` and harness routing work
  unchanged against it), plus fleet-wide ``/metrics`` aggregation.
- :mod:`repro.fabric.protocol` — the wire-protocol catalog (message
  types, error codes, metric names) that FABRIC.md documents and
  ``tests/test_docs.py`` holds in sync.

Layer map: ``fabric`` sits above ``service`` (it is a client of many
daemons and a server of the same protocol) and below nothing — the
harness reaches it through the ordinary service route
(``repro experiments --via-fleet HOST:PORT``).  Every answer is
bit-identical to the serial harness; FABRIC.md specifies the protocol,
shard map exchange, and failure semantics.
"""

from repro.fabric.client import FleetClient, FleetError, NodeAddress
from repro.fabric.coordinator import FabricConfig, FabricCoordinator
from repro.fabric.hashring import ShardMap
from repro.fabric.protocol import (
    FABRIC_PROTOCOL_VERSION,
    ERROR_CODES,
    MESSAGE_TYPES,
    METRIC_NAMES,
)

__all__ = [
    "FABRIC_PROTOCOL_VERSION",
    "ERROR_CODES",
    "MESSAGE_TYPES",
    "METRIC_NAMES",
    "FabricConfig",
    "FabricCoordinator",
    "FleetClient",
    "FleetError",
    "NodeAddress",
    "ShardMap",
]
