"""The fabric wire-protocol catalog: every message type, error, metric.

The coordinator speaks a **superset** of the daemon protocol
(:mod:`repro.service.protocol`): the same NDJSON framing, the same
``submit``/``batch``/``healthz``/``metrics``/``config`` ops with the
same shapes, plus one coordinator-only op (``shards``, the shard-map
exchange).  That superset design is what lets the plain
:class:`~repro.service.ServiceClient` — and therefore the entire
``--via-service`` harness routing — point at a coordinator unchanged.

Node-facing traffic (coordinator -> daemon) is the plain daemon
protocol plus the two store-exchange ops ``store_pull``/``store_push``
added alongside the fabric.

This module is deliberately data-only: the catalogs below are the
single source of truth for what the fabric emits, and
``tests/test_docs.py`` asserts every entry appears in FABRIC.md — the
spec cannot drift from the code.
"""

from __future__ import annotations

from repro.service.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE,
    ERROR_DRAINING,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    ERROR_UNSUPPORTED,
    ERROR_WORKER_CRASHED,
    OP_STORE_PULL,
    OP_STORE_PUSH,
    PROTOCOL_VERSION,
)

__all__ = [
    "FABRIC_PROTOCOL_VERSION",
    "OP_SHARDS",
    "ERROR_FLEET_UNAVAILABLE",
    "MESSAGE_TYPES",
    "ERROR_CODES",
    "METRIC_NAMES",
]

#: The fabric speaks daemon protocol version N as its baseline; its own
#: version counts the coordinator extensions (shards op, fleet errors).
#: v2 routes budget submits (``qos_budget``) to the app's home shard
#: and replicates online-tuner controller states alongside run entries.
FABRIC_PROTOCOL_VERSION = 2

# Daemon protocol v3 (recover submits) reviewed: the coordinator relays
# submit fields verbatim and ``recover`` items shard by their RunKey
# digest exactly like fixed-config items, so guaranteed-quality mode
# needs no coordinator extension (see FABRIC.md).
assert PROTOCOL_VERSION == 3, "bump FABRIC_PROTOCOL_VERSION review on daemon bumps"

#: Coordinator-only op: the current shard map (nodes, vnodes, hash fn).
OP_SHARDS = "shards"

#: Every node in a key's succession order failed (or none are left).
ERROR_FLEET_UNAVAILABLE = "fleet_unavailable"

#: Every message type the coordinator answers, with the client-facing
#: response field.  Keys are the wire ``op`` values.
MESSAGE_TYPES = {
    "submit": "one simulation request (fixed config, or qos_budget routed "
    "to the app's home shard) -> {ok, result} (daemon-shaped)",
    "batch": "a list of items -> {ok, results} in item order",
    "healthz": "fleet liveness -> {ok, healthz} incl. per-node status",
    "metrics": "merged fleet metrics -> {ok, metrics}",
    "config": "coordinator config -> {ok, config}",
    OP_SHARDS: "the consistent-hash shard map -> {ok, shards}",
    OP_STORE_PULL: "node-facing: raw entry or tuner state for a digest -> {ok, entry}",
    OP_STORE_PUSH: "node-facing: install a raw entry or tuner state -> {ok, stored}",
}

#: Every structured error code a coordinator response may carry.  The
#: daemon codes pass through verbatim when a node's answer is relayed.
ERROR_CODES = {
    ERROR_BAD_REQUEST: "malformed request (relayed or coordinator-side)",
    ERROR_OVERLOADED: "a node's admission queue is full (relayed)",
    ERROR_DEADLINE: "deadline expired (relayed)",
    ERROR_DRAINING: "node or coordinator is shutting down",
    ERROR_WORKER_CRASHED: "a node exhausted its crash-retry budget (relayed)",
    ERROR_INTERNAL: "unexpected coordinator-side failure",
    ERROR_UNSUPPORTED: "a budget item reached a protocol-1 node (relayed; never a hang)",
    ERROR_FLEET_UNAVAILABLE: "every node in the succession order failed",
}

#: Every counter/histogram the coordinator's metrics payload adds on
#: top of the merged per-node registries.
METRIC_NAMES = {
    "fabric.requests_total": "client requests admitted (submit items count 1 each)",
    "fabric.batches_total": "batch ops received",
    "fabric.items_total": "individual simulation items dispatched to nodes",
    "fabric.bad_requests": "requests rejected before dispatch",
    "fabric.hedged": "items re-dispatched to a successor on hedge deadline",
    "fabric.failovers": "items answered by a non-home node after a node error",
    "fabric.node_errors": "node-level transport/protocol failures observed",
    "fabric.replicated_entries": "store entries copied to their home shard",
    "fabric.replicated_tuner_states": "online-tuner states copied to their home shard",
    "fabric.replication_failures": "replication attempts that failed",
    "fabric.latency_ms": "histogram: coordinator-side item latency",
}
