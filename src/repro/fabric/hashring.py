"""Consistent hashing: RunKey digests onto fleet nodes, stably.

A :class:`ShardMap` places every node at ``vnodes`` pseudo-random
points on a ring (SHA-256 of ``"node-label#replica"``), and assigns a
RunKey digest to the first node point at or after the digest's own
ring position.  Two properties make this the right shard function for
a campaign fabric (both pinned by ``tests/test_fabric.py``):

- **Determinism** — placement depends only on node labels and the
  digest, both already canonical SHA-256 material, so every process
  (coordinator, tests, an operator's one-liner) computes the same map.
  No ``PYTHONHASHSEED`` sensitivity, no randomness.
- **Stability** — removing a node reassigns *only* the keys that were
  homed on it; adding a node steals ~1/N of the keyspace from the
  others and moves nothing else.  A fleet resize therefore invalidates
  almost none of the warm per-node stores.

:meth:`ShardMap.succession` yields the distinct-node failover order
for a digest (home first, then successive ring points), which is the
hedge/re-dispatch order of :class:`repro.fabric.client.FleetClient`
and the replication target order documented in FABRIC.md.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["DEFAULT_VNODES", "ShardMap"]

#: Ring points per node.  64 keeps the keyspace share per node within
#: a few percent of 1/N for small fleets while the ring stays tiny
#: (N*64 sorted ints) — see the balance test in tests/test_fabric.py.
DEFAULT_VNODES = 64


def _ring_position(material: str) -> int:
    """A point on the ring: the first 8 bytes of SHA-256, big-endian."""
    return int.from_bytes(
        hashlib.sha256(material.encode("utf-8")).digest()[:8], "big"
    )


class ShardMap:
    """An immutable consistent-hash ring over a set of node labels.

    ``nodes`` are opaque labels (the fabric uses ``"host:port"``
    strings); duplicates are rejected.  The map itself never talks to
    the network — liveness is the caller's concern, the map only
    answers "where does this digest live, and who is next in line".
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = DEFAULT_VNODES) -> None:
        labels = list(nodes)
        if not labels:
            raise ValueError("a ShardMap needs at least one node")
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate node labels: {sorted(labels)}")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.nodes: Tuple[str, ...] = tuple(sorted(labels))
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for label in self.nodes:
            for replica in range(vnodes):
                points.append((_ring_position(f"{label}#{replica}"), label))
        # Ties (astronomically unlikely 64-bit collisions) break by
        # label so the ring order is still a pure function of inputs.
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    # ------------------------------------------------------------------
    def _start_index(self, digest: str) -> int:
        position = _ring_position(digest)
        index = bisect.bisect_left(self._positions, position)
        return index % len(self._points)

    def assign(self, digest: str) -> str:
        """The home node label for a RunKey digest."""
        return self._points[self._start_index(digest)][1]

    def succession(self, digest: str) -> Iterator[str]:
        """Distinct node labels in failover order (home node first)."""
        seen = set()
        start = self._start_index(digest)
        for offset in range(len(self._points)):
            label = self._points[(start + offset) % len(self._points)][1]
            if label not in seen:
                seen.add(label)
                yield label
                if len(seen) == len(self.nodes):
                    return

    def assign_many(self, digests: Sequence[str]) -> Dict[str, List[str]]:
        """Group digests by home node (node label -> digests, in order)."""
        groups: Dict[str, List[str]] = {}
        for digest in digests:
            groups.setdefault(self.assign(digest), []).append(digest)
        return groups

    # ------------------------------------------------------------------
    def without(self, node: str) -> "ShardMap":
        """The map after ``node`` leaves (same vnodes)."""
        if node not in self.nodes:
            raise ValueError(f"{node!r} is not in this map")
        remaining = [label for label in self.nodes if label != node]
        return ShardMap(remaining, vnodes=self.vnodes)

    def with_node(self, node: str) -> "ShardMap":
        """The map after ``node`` joins (same vnodes)."""
        return ShardMap(list(self.nodes) + [node], vnodes=self.vnodes)

    def as_dict(self) -> dict:
        """The wire form served by the coordinator's ``shards`` op."""
        return {
            "nodes": list(self.nodes),
            "vnodes": self.vnodes,
            "hash": "sha256-64bit",
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardMap(nodes={list(self.nodes)}, vnodes={self.vnodes})"
