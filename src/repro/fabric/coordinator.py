"""The campaign coordinator: one daemon-shaped front for a whole fleet.

``repro fabric serve`` boots a :class:`FabricCoordinator`: a TCP
server that speaks the **same NDJSON protocol as a single daemon**
(:mod:`repro.service.protocol`) — ``submit``, ``batch``, ``healthz``,
``metrics``, ``config``, plus the coordinator-only ``shards`` op — and
answers by sharding the work across its fleet through a
:class:`~repro.fabric.client.FleetClient`.  Because the wire surface
is a superset of the daemon's, everything that can talk to
``repro serve`` (the :class:`~repro.service.ServiceClient`,
``repro submit``, harness routing, ``curl``) talks to a coordinator
unchanged; the transport (:class:`~repro.service.server._Handler`) is
reused outright rather than reimplemented.

What the coordinator adds over a lone daemon:

- **Sharding** — every item executes on the home node its RunKey
  digest hashes to, so each node's run store warms exactly its shard
  of the keyspace (FABRIC.md § shard map).
- **Hedging & failover** — stragglers re-dispatch to the ring
  successor after the hedge deadline; dead nodes' keys move (and only
  those keys move) to the survivors.
- **Replication** — entries answered off their home shard are copied
  home over ``store_pull``/``store_push``.
- **Budget routing (protocol v2)** — ``{app, qos_budget}`` submits
  shard on their controller identity (app + budget), so one home
  daemon's online tuner sees every request for that identity; budget
  groups are never hedged, and each answered group's controller state
  is standby-replicated to the ring successor.  A protocol-1 node that
  receives a budget item answers a clean ``unsupported_op`` error,
  which the coordinator relays verbatim.
- **Fleet metrics** — ``/metrics`` merges every node's
  :class:`~repro.observability.metrics.MetricsRegistry` (the PR-2
  monoid: exact integer addition) with the coordinator's own
  ``fabric.*`` counters, and nests per-node gauges.

Results are bit-identical to the serial harness: nodes answer from
the same store/execution code paths the harness uses, and the
coordinator never transforms a result payload, only routes it.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.fabric.client import FleetClient, FleetError, NodeAddress
from repro.fabric.hashring import DEFAULT_VNODES
from repro.fabric.protocol import (
    ERROR_FLEET_UNAVAILABLE,
    FABRIC_PROTOCOL_VERSION,
    OP_SHARDS,
)
from repro.observability.metrics import MetricsRegistry
from repro.service.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DRAINING,
    error_response,
    ok_response,
)
from repro.service.server import _Handler, _TCPServer, _percentile

__all__ = ["DEFAULT_FABRIC_PORT", "FabricConfig", "FabricCoordinator"]

#: One above the daemon's default port: a laptop fleet is
#: ``repro serve --port 7737``, ``--port 7738``, … with the
#: coordinator on the next round number up.
DEFAULT_FABRIC_PORT = 7747


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Validated coordinator configuration (``repro fabric serve``)."""

    nodes: Tuple[str, ...]
    host: str = "127.0.0.1"
    port: int = DEFAULT_FABRIC_PORT
    #: Ring points per node (see :mod:`repro.fabric.hashring`).
    vnodes: int = DEFAULT_VNODES
    #: Straggler hedge deadline; ``0`` hedges immediately, ``None``
    #: never hedges.  Milliseconds, like the daemon's deadline knob.
    hedge_ms: Optional[int] = 15000
    #: Per-dispatch ceiling before an item fails fleet_unavailable.
    timeout_s: float = 300.0
    connect_timeout_s: float = 5.0
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ReproError("fabric: at least one --node is required")
        if len(set(self.nodes)) != len(self.nodes):
            raise ReproError(f"fabric: duplicate nodes: {sorted(self.nodes)}")
        for node in self.nodes:
            try:
                NodeAddress.parse(node)
            except ValueError as exc:
                raise ReproError(f"fabric: {exc}") from None
        if self.port < 0 or self.port > 65535:
            raise ReproError(f"fabric: invalid port {self.port}")
        if self.vnodes < 1:
            raise ReproError("fabric: --vnodes must be >= 1")
        if self.hedge_ms is not None and self.hedge_ms < 0:
            raise ReproError("fabric: --hedge-ms must be >= 0")
        if self.timeout_s <= 0:
            raise ReproError("fabric: timeout must be positive")

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["nodes"] = list(self.nodes)
        return payload


class FabricCoordinator:
    """The resident coordinator behind ``repro fabric serve``.

    Mirrors the daemon's lifecycle surface (:meth:`start`,
    :meth:`initiate_drain`, :meth:`drain`, :meth:`stop`, the ``with``
    statement) so ``repro fabric serve`` reuses the signal-driven
    serve loop of ``repro serve``.  :meth:`handle_message` is the
    transport-free core, exactly like
    :class:`~repro.service.server.SimulationServer`.
    """

    def __init__(self, config: FabricConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._fleet: Optional[FleetClient] = None
        self._tcp: Optional[_TCPServer] = None
        self._tcp_thread: Optional[threading.Thread] = None
        self._draining = False
        self._started_at: Optional[float] = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Connect to every node, then start the listener.

        An unreachable node at boot is a hard error (a typo'd --node
        must not silently shrink the fleet); nodes lost *after* boot
        fail over instead.
        """
        hedge_s = (
            self.config.hedge_ms / 1000.0 if self.config.hedge_ms is not None else None
        )
        self._fleet = FleetClient(
            [NodeAddress.parse(node) for node in self.config.nodes],
            vnodes=self.config.vnodes,
            hedge_s=hedge_s,
            timeout=self.config.timeout_s,
            connect_timeout=self.config.connect_timeout_s,
            on_event=self._inc,
        )
        self._tcp = _TCPServer((self.config.host, self.config.port), _Handler)
        self._tcp.simulation_server = self
        self._tcp_thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-fabric-accept", daemon=True
        )
        self._tcp_thread.start()
        self._started_at = time.monotonic()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._tcp is None:
            raise RuntimeError("coordinator is not started")
        host, port = self._tcp.server_address[:2]
        return host, port

    def initiate_drain(self) -> None:
        self._draining = True

    def drain(self, timeout: Optional[float] = None) -> bool:
        budget = self.config.drain_timeout_s if timeout is None else timeout
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight == 0:
                    return True
            time.sleep(0.02)
        with self._inflight_lock:
            return self._inflight == 0

    def stop(self) -> None:
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
            self._tcp = None
        if self._fleet is not None:
            self._fleet.close()
            self._fleet = None

    def __enter__(self) -> "FabricCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.initiate_drain()
        self.drain(timeout=5)
        self.stop()

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    def _inc(self, name: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self.metrics.counter(name).inc(amount)

    def _observe_latency(self, started_at: float) -> None:
        elapsed_ms = (time.monotonic() - started_at) * 1000.0
        with self._metrics_lock:
            self.metrics.histogram("fabric.latency_ms").observe(int(elapsed_ms))

    # ------------------------------------------------------------------
    # The transport-free request core (duck-typed like SimulationServer)
    # ------------------------------------------------------------------
    def handle_message(self, message: dict) -> dict:
        op = message.get("op")
        request_id = message.get("id")
        if op == "submit":
            return self._handle_submit(message, request_id)
        if op == "batch":
            return self._handle_batch(message, request_id)
        if op == "healthz":
            return ok_response(request_id, "healthz", self.healthz_payload())
        if op == "metrics":
            return ok_response(request_id, "metrics", self.metrics_payload())
        if op == "config":
            return ok_response(request_id, "config", self.config_payload())
        if op == OP_SHARDS:
            return ok_response(request_id, OP_SHARDS, self.shards_payload())
        self._inc("fabric.bad_requests")
        return error_response(request_id, ERROR_BAD_REQUEST, f"unknown op {op!r}")

    def _admitted(self):
        """Draining gate + in-flight accounting for one client request."""
        if self._draining:
            return error_response(
                None, ERROR_DRAINING, "coordinator is draining; resubmit elsewhere"
            )
        if self._fleet is None:
            return error_response(
                None, ERROR_FLEET_UNAVAILABLE, "coordinator is not connected to a fleet"
            )
        return None

    def _handle_submit(self, message: dict, request_id) -> dict:
        started_at = time.monotonic()
        self._inc("fabric.requests_total")
        rejected = self._admitted()
        if rejected is not None:
            return dict(rejected, id=request_id) if request_id is not None else rejected
        item = {
            name: value
            for name, value in message.items()
            if name not in ("op", "id")
        }
        with self._inflight_lock:
            self._inflight += 1
        try:
            answer = self._fleet.submit_items([item])[0]
        finally:
            with self._inflight_lock:
                self._inflight -= 1
        self._observe_latency(started_at)
        response = dict(answer)
        if request_id is not None:
            response["id"] = request_id
        return response

    def _handle_batch(self, message: dict, request_id) -> dict:
        started_at = time.monotonic()
        self._inc("fabric.requests_total")
        self._inc("fabric.batches_total")
        rejected = self._admitted()
        if rejected is not None:
            return dict(rejected, id=request_id) if request_id is not None else rejected
        items = message.get("items")
        if not isinstance(items, list) or not items:
            self._inc("fabric.bad_requests")
            return error_response(
                request_id, ERROR_BAD_REQUEST, "'items' must be a non-empty list"
            )
        with self._inflight_lock:
            self._inflight += 1
        try:
            answers = self._fleet.submit_items(items)
        finally:
            with self._inflight_lock:
                self._inflight -= 1
        self._observe_latency(started_at)
        return ok_response(request_id, "results", answers)

    # ------------------------------------------------------------------
    # Introspection payloads (NDJSON ops and HTTP GET share these)
    # ------------------------------------------------------------------
    def _uptime_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return round(time.monotonic() - self._started_at, 3)

    def healthz_payload(self) -> dict:
        nodes = self._fleet.fleet_healthz() if self._fleet is not None else {}
        alive = [label for label, payload in nodes.items() if "error" not in payload]
        return {
            "status": "draining" if self._draining else "serving",
            "role": "coordinator",
            "protocol": FABRIC_PROTOCOL_VERSION,
            "uptime_s": self._uptime_s(),
            "nodes_alive": len(alive),
            "nodes_total": len(self.config.nodes),
            "nodes": nodes,
        }

    def metrics_payload(self) -> dict:
        """Fleet-wide metrics: the per-node registries merged exactly.

        Counters and histograms are :class:`MetricsRegistry` monoids,
        so the merged numbers equal what one giant daemon would have
        counted; per-node gauges/derived values (queue depth, hit
        ratio) do not form a monoid and are nested per node instead.
        """
        node_payloads = self._fleet.fleet_metrics() if self._fleet is not None else {}
        registries: List[MetricsRegistry] = []
        per_node: Dict[str, dict] = {}
        nodes_merged = 0
        for label, payload in sorted(node_payloads.items()):
            if "error" in payload and "counters" not in payload:
                per_node[label] = payload
                continue
            registries.append(
                MetricsRegistry.from_dict(
                    {
                        "counters": payload.get("counters", {}),
                        "histograms": payload.get("histograms", {}),
                    }
                )
            )
            nodes_merged += 1
            per_node[label] = {
                "gauges": payload.get("gauges", {}),
                "derived": payload.get("derived", {}),
            }
        with self._metrics_lock:
            own = MetricsRegistry.from_dict(self.metrics.as_dict())
            latency_buckets = dict(self.metrics.histogram("fabric.latency_ms").buckets)
        merged = MetricsRegistry.merge(registries + [own]).as_dict()
        counters = merged["counters"]
        hits = counters.get("service.hits", 0)
        misses = counters.get("service.misses", 0)
        answered = hits + misses
        return {
            "counters": counters,
            "histograms": merged["histograms"],
            "gauges": {
                "nodes_total": len(self.config.nodes),
                "nodes_merged": nodes_merged,
                "uptime_s": self._uptime_s(),
                "draining": self._draining,
            },
            "nodes": per_node,
            "derived": {
                "fleet_hit_ratio": round(hits / answered, 6) if answered else None,
                "fabric_latency_ms": {
                    "p50": _percentile(latency_buckets, 0.50),
                    "p99": _percentile(latency_buckets, 0.99),
                },
            },
        }

    def config_payload(self) -> dict:
        payload = self.config.as_dict()
        payload["protocol"] = FABRIC_PROTOCOL_VERSION
        payload["role"] = "coordinator"
        if self._tcp is not None:
            payload["address"] = list(self.address)
        return payload

    def shards_payload(self) -> dict:
        """The live shard map (the ``shards`` op / ``GET /shards``)."""
        if self._fleet is None:
            return {"nodes": [], "vnodes": self.config.vnodes, "alive": {}}
        try:
            shard_map = self._fleet.shard_map()
        except FleetError:
            return {
                "nodes": [],
                "vnodes": self.config.vnodes,
                "alive": {label: False for label in self.config.nodes},
            }
        payload = shard_map.as_dict()
        alive = set(self._fleet.alive_labels())
        payload["alive"] = {label: label in alive for label in self.config.nodes}
        return payload

    def http_payloads(self) -> dict:
        return {
            "/healthz": self.healthz_payload,
            "/metrics": self.metrics_payload,
            "/config": self.config_payload,
            "/shards": self.shards_payload,
        }
