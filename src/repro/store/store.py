"""The persistent, content-addressed run-result store.

Layout under the store root (default ``.repro-cache/``)::

    manifest.json              {"store_schema": 1, "key_schema": 1}
    objects/<dd>/<digest>.json one entry per completed run

``<digest>`` is :attr:`repro.experiments.runkey.RunKey.digest` — a
canonical SHA-256 over app name + source digest, the resolved workload
arguments, the full hardware-config parameter set, both seeds, and the
key-schema version.  ``<dd>`` is its first two hex digits (256-way
sharding keeps directory listings cheap at campaign scale).

Each entry file holds one JSON object::

    {
      "v": 1,                    # entry-schema version
      "digest": "<key digest>",  # self-describing for verify/gc
      "key": {...},              # human-readable key metadata
      "output": <tagged value>,  # repro.store.codec encoding
      "stats": {...},            # RunStats counters
      "trace_summary": null|{...},
      "payload_sha256": "..."    # checksum over output+stats
    }

Guarantees:

* **Bit-identical round trips** — outputs go through the tagged codec
  (tuples stay tuples, floats round-trip via ``repr``), stats rebuild
  into the exact :class:`~repro.runtime.stats.RunStats`.
* **Crash safety** — entries are written to a temporary file and
  published with ``os.replace``; a campaign killed mid-write leaves at
  worst an orphaned ``*.tmp`` file, never a readable-but-wrong entry.
  Readers treat undecodable or checksum-failing entries as misses.
* **Invalidation by construction** — a source or config change yields
  a different digest, so stale entries are never *returned*; they only
  occupy disk until :meth:`RunStore.gc` collects them.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from typing import Dict, Iterator, List, Optional, Tuple

try:  # POSIX advisory locks; publication degrades gracefully without.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.runtime.stats import RunStats
from repro.store import codec

__all__ = [
    "RunStore",
    "StoreEntry",
    "StoreStats",
    "GCResult",
    "StoreError",
    "STORE_SCHEMA_VERSION",
]

#: Version of the entry-file layout (independent of the key schema,
#: which is folded into the digest itself).
STORE_SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"
_OBJECTS = "objects"
_LOCK_FILE = ".lock"


class StoreError(Exception):
    """The store root exists but is not a usable run store."""


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One cached run, decoded: everything ``run_app`` would return."""

    output: object
    stats: RunStats
    trace_summary: Optional[dict] = None


@dataclasses.dataclass(frozen=True)
class StoreStats:
    """Aggregate view for ``repro cache stats``."""

    root: str
    entries: int
    total_bytes: int
    per_app: Dict[str, int]
    with_trace_summary: int
    store_schema: int
    key_schema: int


@dataclasses.dataclass(frozen=True)
class GCResult:
    """Outcome of a garbage-collection pass."""

    removed: int
    kept: int
    reclaimed_bytes: int


def _is_digest(value: object) -> bool:
    """True when ``value`` is a well-formed SHA-256 hex digest."""
    if not isinstance(value, str) or len(value) != 64:
        return False
    return all(ch in "0123456789abcdef" for ch in value)


def _payload_checksum(encoded_output, stats_dict) -> str:
    material = json.dumps(
        {"output": encoded_output, "stats": stats_dict},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class RunStore:
    """A content-addressed, sharded, crash-safe run-result store."""

    def __init__(self, root: str, create: bool = True) -> None:
        from repro.experiments.runkey import KEY_SCHEMA_VERSION

        self.root = os.path.abspath(root)
        self._objects = os.path.join(self.root, _OBJECTS)
        self._memo: Dict[str, StoreEntry] = {}
        self._closed = False
        self._refs = 1
        self._ref_lock = threading.Lock()
        manifest_path = os.path.join(self.root, _MANIFEST)
        if os.path.isfile(manifest_path):
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
                self._manifest = dict(manifest)
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"{self.root}: unreadable store manifest: {exc}"
                ) from exc
            if self._manifest.get("store_schema") != STORE_SCHEMA_VERSION:
                raise StoreError(
                    f"{self.root}: store schema "
                    f"{self._manifest.get('store_schema')!r} is not the "
                    f"supported version {STORE_SCHEMA_VERSION}"
                )
        elif create:
            self._manifest = {
                "store_schema": STORE_SCHEMA_VERSION,
                "key_schema": KEY_SCHEMA_VERSION,
            }
            os.makedirs(self._objects, exist_ok=True)
            self._atomic_write(
                manifest_path, json.dumps(self._manifest, sort_keys=True) + "\n"
            )
        else:
            raise StoreError(f"{self.root}: no run store here (no {_MANIFEST})")

    # ------------------------------------------------------------------
    # Paths and low-level IO
    # ------------------------------------------------------------------
    def _entry_path(self, digest: str) -> str:
        return os.path.join(self._objects, digest[:2], f"{digest}.json")

    @staticmethod
    def _atomic_write(path: str, text: str) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, suffix=".tmp", delete=False, encoding="utf-8"
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"{self.root}: store is closed")

    @contextlib.contextmanager
    def _publication_lock(self):
        """Exclusive advisory lock serialising entry publication.

        ``put`` is a read-modify-write sequence (an existing trace
        summary is preserved across overwrites), so two writers
        publishing the same digest must not interleave.  ``flock``
        locks per open file description: taking it through a fresh
        ``open()`` each time excludes both threads of one process and
        separate worker processes.  Platforms without ``fcntl`` fall
        back to the atomic-rename guarantee alone (identical bytes,
        last writer wins).
        """
        if fcntl is None:
            yield
            return
        with open(os.path.join(self.root, _LOCK_FILE), "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # The content-addressed API
    # ------------------------------------------------------------------
    def get(self, key) -> Optional[StoreEntry]:
        """The cached entry for a :class:`RunKey`, or ``None`` on miss.

        Undecodable, checksum-failing or schema-mismatched entries are
        misses — a corrupted cache degrades to recomputation, never to
        wrong results.
        """
        self._check_open()
        digest = key.digest
        entry = self._memo.get(digest)
        if entry is not None:
            return entry
        payload = self._read_payload(self._entry_path(digest))
        if payload is None:
            return None
        entry = self._decode_entry(payload, expect_digest=digest)
        if entry is not None:
            self._memo[digest] = entry
        return entry

    def put(
        self,
        key,
        output,
        stats: RunStats,
        trace_summary: Optional[dict] = None,
    ) -> Optional[str]:
        """Persist one completed run; returns its digest.

        Returns ``None`` (and stores nothing) when the output falls
        outside the codec's exact-round-trip domain — an uncacheable
        run is not an error.  Re-putting an existing digest overwrites
        with identical content (runs are pure functions of their key),
        except that an existing trace summary is preserved when the new
        write carries none.
        """
        self._check_open()
        try:
            encoded_output = codec.encode(output)
        except codec.UnsupportedValue:
            return None
        digest = key.digest
        stats_dict = dataclasses.asdict(stats)
        with self._publication_lock():
            if trace_summary is None:
                existing = self._memo.get(digest)
                if existing is None:
                    payload = self._read_payload(self._entry_path(digest))
                    if payload is not None:
                        existing = self._decode_entry(payload, expect_digest=digest)
                if existing is not None and existing.trace_summary is not None:
                    trace_summary = existing.trace_summary
            payload = {
                "v": STORE_SCHEMA_VERSION,
                "digest": digest,
                "key": key.metadata(),
                "output": encoded_output,
                "stats": stats_dict,
                "trace_summary": trace_summary,
                "payload_sha256": _payload_checksum(encoded_output, stats_dict),
            }
            try:
                self._atomic_write(
                    self._entry_path(digest), json.dumps(payload) + "\n"
                )
            except OSError:
                # A lost publication race (e.g. a platform where rename
                # cannot replace an existing file): a peer's bytes are
                # identical by construction, so the entry is published
                # either way — unless nothing exists, the failure is real.
                if not os.path.exists(self._entry_path(digest)):
                    raise
        self._memo[digest] = StoreEntry(
            output=output, stats=stats, trace_summary=trace_summary
        )
        return digest

    def contains(self, key) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    @staticmethod
    def _read_payload(path: str) -> Optional[dict]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    @staticmethod
    def _decode_entry(
        payload: dict, expect_digest: Optional[str] = None
    ) -> Optional[StoreEntry]:
        if payload.get("v") != STORE_SCHEMA_VERSION:
            return None
        if expect_digest is not None and payload.get("digest") != expect_digest:
            return None
        try:
            stats_dict = payload["stats"]
            checksum = _payload_checksum(payload["output"], stats_dict)
            if checksum != payload.get("payload_sha256"):
                return None
            output = codec.decode(payload["output"])
            stats = RunStats(**stats_dict)
        except (KeyError, TypeError, ValueError):
            return None
        summary = payload.get("trace_summary")
        if summary is not None and not isinstance(summary, dict):
            return None
        return StoreEntry(output=output, stats=stats, trace_summary=summary)

    # ------------------------------------------------------------------
    # Maintenance: stats / verify / gc
    # ------------------------------------------------------------------
    def _iter_entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self._objects):
            return
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def stats(self) -> StoreStats:
        """Aggregate entry counts and sizes (``repro cache stats``)."""
        self._check_open()
        entries = 0
        total_bytes = 0
        with_summary = 0
        per_app: Dict[str, int] = {}
        for path in self._iter_entry_paths():
            payload = self._read_payload(path)
            if payload is None:
                continue
            entries += 1
            total_bytes += os.path.getsize(path)
            app = (payload.get("key") or {}).get("app", "<unknown>")
            per_app[app] = per_app.get(app, 0) + 1
            if payload.get("trace_summary") is not None:
                with_summary += 1
        return StoreStats(
            root=self.root,
            entries=entries,
            total_bytes=total_bytes,
            per_app=per_app,
            with_trace_summary=with_summary,
            store_schema=self._manifest.get("store_schema", STORE_SCHEMA_VERSION),
            key_schema=self._manifest.get("key_schema", 0),
        )

    def verify(self) -> List[str]:
        """Re-check every entry; returns a list of problem descriptions.

        An empty list means every entry decodes, its checksum matches,
        and its file name agrees with its self-declared digest.
        """
        self._check_open()
        problems: List[str] = []
        for path in self._iter_entry_paths():
            name = os.path.basename(path)[: -len(".json")]
            payload = self._read_payload(path)
            if payload is None:
                problems.append(f"{name}: unreadable or not JSON")
                continue
            if payload.get("digest") != name:
                problems.append(
                    f"{name}: file name does not match stored digest "
                    f"{payload.get('digest')!r}"
                )
                continue
            if self._decode_entry(payload, expect_digest=name) is None:
                problems.append(f"{name}: schema/checksum mismatch or undecodable")
        return problems

    def gc(
        self,
        current_digests: Optional[Dict[str, str]] = None,
        all_entries: bool = False,
    ) -> GCResult:
        """Remove stale entries; returns what was reclaimed.

        ``current_digests`` maps app name -> current source digest
        (defaults to the registered suite).  An entry is stale when it
        is unreadable, uses an old entry schema, or belongs to a known
        app whose sources have changed since the entry was written.
        Entries for apps the registry does not know (e.g. test-local
        specs) are kept unless ``all_entries`` wipes everything.
        """
        self._check_open()
        if current_digests is None:
            current_digests = current_suite_digests()
        removed = 0
        kept = 0
        reclaimed = 0
        for path in self._iter_entry_paths():
            size = os.path.getsize(path)
            if all_entries:
                stale = True
            else:
                payload = self._read_payload(path)
                if payload is None or payload.get("v") != STORE_SCHEMA_VERSION:
                    stale = True
                else:
                    key_meta = payload.get("key") or {}
                    app = key_meta.get("app")
                    current = current_digests.get(app)
                    stale = (
                        current is not None
                        and key_meta.get("source_digest") != current
                    )
            if stale:
                try:
                    os.unlink(path)
                except OSError:
                    kept += 1
                    continue
                removed += 1
                reclaimed += size
            else:
                kept += 1
        self._memo.clear()
        return GCResult(removed=removed, kept=kept, reclaimed_bytes=reclaimed)

    # ------------------------------------------------------------------
    # Raw entry exchange (the fabric's store replication primitive)
    # ------------------------------------------------------------------
    def get_raw(self, digest: str) -> Optional[dict]:
        """The raw wire-safe entry payload for ``digest``, or ``None``.

        Unlike :meth:`get`, no :class:`RunKey` is needed — the digest
        alone names the entry, which is what lets one store hand an
        entry to another (``store_pull``/``store_push`` in the fabric's
        node exchange) without either side re-deriving the key.  The
        payload is validated (digest match + checksum) before being
        returned, so a pulled entry is always installable.
        """
        self._check_open()
        if not _is_digest(digest):
            return None
        payload = self._read_payload(self._entry_path(digest))
        if payload is None:
            return None
        if self._decode_entry(payload, expect_digest=digest) is None:
            return None
        return payload

    def put_raw(self, payload: object) -> bool:
        """Install a raw entry payload produced by :meth:`get_raw`.

        The payload must be self-consistent — schema version, a
        64-hex-digit ``digest``, a matching ``payload_sha256`` checksum,
        and decodable output/stats — or nothing is written and ``False``
        is returned.  Content addressing makes this safe: a validated
        payload's bytes are the same bytes any node would have produced
        for that digest.  An existing entry is kept (first write wins)
        unless the incoming payload adds a trace summary the resident
        entry lacks.
        """
        self._check_open()
        if not isinstance(payload, dict):
            return False
        digest = payload.get("digest")
        if not _is_digest(digest):
            return False
        entry = self._decode_entry(payload, expect_digest=digest)
        if entry is None:
            return False
        with self._publication_lock():
            existing_payload = self._read_payload(self._entry_path(digest))
            if existing_payload is not None:
                existing = self._decode_entry(existing_payload, expect_digest=digest)
                if existing is not None and (
                    existing.trace_summary is not None or entry.trace_summary is None
                ):
                    return True
            try:
                self._atomic_write(
                    self._entry_path(digest), json.dumps(payload) + "\n"
                )
            except OSError:
                if not os.path.exists(self._entry_path(digest)):
                    raise
        self._memo[digest] = entry
        return True

    # ------------------------------------------------------------------
    def clear_memo(self) -> None:
        """Drop the in-process decoded-entry memo (disk is untouched)."""
        self._memo.clear()

    def share(self) -> "RunStore":
        """Take another reference on this handle; returns the handle.

        Each ``share()`` must be balanced by a ``close()``; the handle
        only becomes unusable when the last reference is closed.  A
        long-lived owner (e.g. the simulation daemon) shares the handle
        it installs as the process-wide active store, so a
        ``clear_caches()`` reset — which closes the active store —
        cannot close the owner's handle out from under it.
        """
        with self._ref_lock:
            self._check_open()
            self._refs += 1
        return self

    def close(self) -> None:
        """Drop one reference; the last close marks the handle unusable.

        Idempotent: closing an already-closed handle is a no-op (the
        on-disk store stays valid either way).
        """
        with self._ref_lock:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._memo.clear()
            self._closed = True

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"RunStore({self.root!r}, {state})"


def current_suite_digests() -> Dict[str, str]:
    """App name -> current source digest for the registered suite."""
    from repro.apps import ALL_APPS
    from repro.experiments.runkey import source_digest

    return {spec.name: source_digest(spec) for spec in ALL_APPS}
