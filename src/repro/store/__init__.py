"""Persistent run store + resumable campaign layer (see `store.py`).

The store is *opt-in* and process-wide: exactly one :class:`RunStore`
may be active at a time.  When one is active, the experiment harness
writes every completed run through it and serves repeats from it, so
campaign drivers transparently skip already-completed cells and an
interrupted campaign resumes exactly where it stopped.

Typical programmatic use::

    from repro import store

    with store.activated(".repro-cache"):
        figure5_rows(jobs=4)       # cells cached / served transparently

The CLI equivalents are ``repro experiments ... --cache-dir/--resume``
and the ``repro cache {stats,gc,verify}`` maintenance commands.  No
store is active by default, so library behaviour is unchanged unless a
caller (or the CLI) opts in.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.store.codec import UnsupportedValue
from repro.store.store import (
    STORE_SCHEMA_VERSION,
    GCResult,
    RunStore,
    StoreEntry,
    StoreError,
    StoreStats,
    current_suite_digests,
)

__all__ = [
    "RunStore",
    "StoreEntry",
    "StoreStats",
    "GCResult",
    "StoreError",
    "UnsupportedValue",
    "STORE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "active_store",
    "set_active_store",
    "configure",
    "reset_active_store",
    "activated",
    "current_suite_digests",
]

#: Where the CLI keeps its cache unless told otherwise.
DEFAULT_CACHE_DIR = ".repro-cache"

_ACTIVE: Optional[RunStore] = None


def active_store() -> Optional[RunStore]:
    """The process-wide store consulted by the harness (or ``None``)."""
    return _ACTIVE


def set_active_store(store: Optional[RunStore]) -> Optional[RunStore]:
    """Install ``store`` as the active store; returns the previous one.

    The previous store is *not* closed — callers that want to restore
    it later (see :func:`activated`) own its lifecycle.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = store
    return previous


def configure(cache_dir: str, create: bool = True) -> RunStore:
    """Open (creating if needed) a store at ``cache_dir`` and activate it."""
    store = RunStore(cache_dir, create=create)
    previous = set_active_store(store)
    if previous is not None and previous is not store:
        previous.close()
    return store


def reset_active_store() -> None:
    """Close and deactivate the active store (harness ``clear_caches``).

    Idempotent.  ``close()`` drops one reference: a holder that called
    :meth:`RunStore.share` before installing the store (the simulation
    daemon's lifecycle) keeps a usable handle across the reset.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


@contextlib.contextmanager
def activated(cache_dir: str, create: bool = True) -> Iterator[RunStore]:
    """Context manager: activate a store, restore the previous on exit."""
    store = RunStore(cache_dir, create=create)
    previous = set_active_store(store)
    try:
        yield store
    finally:
        set_active_store(previous)
        store.close()
