"""Fidelity-preserving serialization for stored run results.

Plain JSON cannot round-trip Python values bit-identically: tuples
collapse into lists, dict keys are forced to strings, and ``bytes``
have no representation at all.  The store's determinism contract —
a cached campaign replays *byte-identical* outputs — needs exact
round-trips, so composite values are written in a small tagged form:

====================== =========================================
Python value           encoded as
====================== =========================================
None, bool, int, str   itself
float                  itself (JSON uses ``repr``: exact round
                       trip, including -0.0, inf and nan)
list                   ``{"L": [items]}``
tuple                  ``{"T": [items]}``
dict                   ``{"D": [[key, value], ...]}``
bytes                  ``{"B": "<hex>"}``
complex                ``{"C": [real, imag]}``
====================== =========================================

Because *every* dict is encoded as a ``{"D": ...}`` wrapper, the
single-letter tag keys can never collide with user data.  Anything
else (arbitrary objects, sets, ...) raises :class:`UnsupportedValue` —
callers treat that as "this run is not cacheable", never as an error
that aborts the run itself.
"""

from __future__ import annotations

import json

__all__ = ["encode", "decode", "dumps", "loads", "canonical_dumps", "UnsupportedValue"]

_TAGS = ("L", "T", "D", "B", "C")


class UnsupportedValue(TypeError):
    """A value outside the codec's exact-round-trip domain."""


def encode(value):
    """Translate ``value`` into the tagged JSON-safe representation."""
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, list):
        return {"L": [encode(item) for item in value]}
    if isinstance(value, tuple):
        return {"T": [encode(item) for item in value]}
    if isinstance(value, dict):
        return {"D": [[encode(key), encode(item)] for key, item in value.items()]}
    if isinstance(value, (bytes, bytearray)):
        return {"B": bytes(value).hex()}
    if isinstance(value, complex):
        return {"C": [value.real, value.imag]}
    raise UnsupportedValue(
        f"cannot store a {type(value).__name__} value bit-identically"
    )


def decode(value):
    """Invert :func:`encode`; raises ``ValueError`` on malformed input."""
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, dict):
        if len(value) != 1:
            raise ValueError(f"malformed tagged value: {value!r}")
        tag, payload = next(iter(value.items()))
        if tag == "L":
            return [decode(item) for item in payload]
        if tag == "T":
            return tuple(decode(item) for item in payload)
        if tag == "D":
            return {decode(key): decode(item) for key, item in payload}
        if tag == "B":
            return bytes.fromhex(payload)
        if tag == "C":
            return complex(payload[0], payload[1])
        raise ValueError(f"unknown codec tag {tag!r}")
    raise ValueError(f"malformed stored value: {value!r}")


def dumps(value) -> str:
    """Encode and serialise in one step."""
    return json.dumps(encode(value))


def loads(text: str):
    """Parse and decode in one step."""
    return decode(json.loads(text))


def canonical_dumps(value) -> str:
    """Deterministic serialisation (sorted keys, no whitespace).

    Used for checksummable payload material; ``nan`` is permitted (it
    serialises as the JSON-extension token ``NaN``, which ``json.loads``
    parses back exactly).
    """
    return json.dumps(encode(value), sort_keys=True, separators=(",", ":"))
