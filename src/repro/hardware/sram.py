"""Approximate SRAM (registers and data cache) — paper Section 4.2.

Reducing SRAM supply voltage saves 70–90% of supply power but causes
*read upsets* (a stored bit flips while being read) and *write failures*
(the wrong bit is written).  Both are per-bit, per-access events; soft
errors in quietly stored data are comparatively rare and are not
modelled, following the paper.

Registers and stack-resident locals of approximate type pass through
this unit on every access under instrumented execution.  The unit is
stateless apart from statistics: the faulted value is returned to (or
stored by) the caller.
"""

from __future__ import annotations

from repro.hardware import bits
from repro.hardware.config import HardwareConfig
from repro.hardware.lanes import LaneValues
from repro.hardware.rng import BatchFaultRandom, FaultRandom

__all__ = ["ApproxSRAM", "BatchApproxSRAM"]

#: ``kind -> (word width in bits, bytes per access)`` — precomputed once:
#: every instrumented local access funnels through read()/write(), so
#: per-call width arithmetic is pure hot-path overhead.
_KIND_META = {
    kind: (bits.bits_for_kind(kind), bits.bits_for_kind(kind) // 8 or 1)
    for kind in ("int", "float", "double", "bool")
}


class ApproxSRAM:
    """Simulated SRAM cell array with voltage-scaled approximate access.

    ``tracer`` (a :class:`repro.observability.tracer.Tracer`, optional)
    receives one ``sram.read_upset`` / ``sram.write_failure`` event per
    faulted access; when ``None`` the fault path pays one branch — and
    the access path itself is kept cheaper than the pre-observability
    unit (precomputed kind widths, cached fault probabilities), which
    ``benchmarks/bench_trace_overhead.py`` pins.
    """

    def __init__(self, config: HardwareConfig, rng: FaultRandom, tracer=None) -> None:
        self._config = config
        self._rng = rng
        self._tracer = tracer
        # Hot-path caches: the config is immutable, so its per-access
        # probabilities can be read once instead of per call.
        self._read_upset = config.sram_read_upset
        self._write_failure = config.sram_write_failure
        self.approx_reads = 0
        self.approx_writes = 0
        self.precise_reads = 0
        self.precise_writes = 0
        self.read_upsets = 0
        self.write_failures = 0
        #: Byte-access accounting for Figure 3's SRAM fraction.
        self.approx_byte_accesses = 0
        self.precise_byte_accesses = 0

    # ------------------------------------------------------------------
    def read(self, value, kind: str, approximate: bool):
        """Read a value out of SRAM, possibly suffering read upsets."""
        width, nbytes = _KIND_META[kind]
        if not approximate:
            self.precise_reads += 1
            self.precise_byte_accesses += nbytes
            return value
        self.approx_reads += 1
        self.approx_byte_accesses += nbytes
        return self._corrupt(value, kind, width, self._read_upset, is_read=True)

    def write(self, value, kind: str, approximate: bool):
        """Write a value into SRAM, possibly suffering write failures."""
        width, nbytes = _KIND_META[kind]
        if not approximate:
            self.precise_writes += 1
            self.precise_byte_accesses += nbytes
            return value
        self.approx_writes += 1
        self.approx_byte_accesses += nbytes
        return self._corrupt(value, kind, width, self._write_failure, is_read=False)

    # ------------------------------------------------------------------
    def _corrupt(self, value, kind: str, width: int, probability: float, is_read: bool):
        if probability <= 0.0:
            return value
        flips = self._rng.binomial_hits(width, probability)
        if flips == 0:
            return value
        if is_read:
            self.read_upsets += flips
        else:
            self.write_failures += flips
        pattern = bits.value_to_bits(value, kind)
        if self._tracer is None:
            for _ in range(flips):
                pattern ^= 1 << self._rng.bit_index(width)
            return bits.bits_to_value(pattern, kind)
        # Traced path: same RNG draw sequence, but the positions are kept
        # for the event, so traced runs stay bit-identical to untraced.
        positions = [self._rng.bit_index(width) for _ in range(flips)]
        for position in positions:
            pattern ^= 1 << position
        result = bits.bits_to_value(pattern, kind)
        self._tracer.emit(
            "sram.read_upset" if is_read else "sram.write_failure",
            f"local:{kind}",
            bits=tuple(positions),
            before=value,
            after=result,
        )
        return result


class BatchApproxSRAM(ApproxSRAM):
    """Lane-vectorized SRAM: one access draws faults for every seed lane.

    Control flow is lane-uniform (EnerJ keeps it precise), so the
    access-count statistics stay shared scalars; only the *fault*
    counters and the faulted values are per-lane.  Per lane, the draw
    sequence is exactly the serial unit's — the aggregate binomial coin
    on all lanes, then per-bit position draws only on the lanes whose
    coin fired (:meth:`BatchFaultRandom.binomial_hits`).
    """

    def __init__(
        self,
        config: HardwareConfig,
        rng: BatchFaultRandom,
        tracers=None,
        lanes: int = 1,
    ) -> None:
        super().__init__(config, rng, tracer=None)
        self._tracers = tracers
        self._lanes = lanes
        self.read_upsets = [0] * lanes
        self.write_failures = [0] * lanes

    def _corrupt(self, value, kind: str, width: int, probability: float, is_read: bool):
        if probability <= 0.0:
            return value
        hits = self._rng.binomial_hits(width, probability)
        if not hits:
            return value
        counters = self.read_upsets if is_read else self.write_failures
        event_kind = "sram.read_upset" if is_read else "sram.write_failure"
        if isinstance(value, LaneValues):
            lane_values = list(value.values)
        else:
            lane_values = [value] * self._lanes
        for lane, flips in hits.items():
            counters[lane] += flips
            before = lane_values[lane]
            pattern = bits.value_to_bits(before, kind)
            positions = [
                self._rng.bit_index(width, (lane,))[0] for _ in range(flips)
            ]
            for position in positions:
                pattern ^= 1 << position
            result = bits.bits_to_value(pattern, kind)
            if self._tracers is not None:
                self._tracers[lane].emit(
                    event_kind,
                    f"local:{kind}",
                    bits=tuple(positions),
                    before=before,
                    after=result,
                )
            lane_values[lane] = result
        return LaneValues(lane_values)
