"""Approximate SRAM (registers and data cache) — paper Section 4.2.

Reducing SRAM supply voltage saves 70–90% of supply power but causes
*read upsets* (a stored bit flips while being read) and *write failures*
(the wrong bit is written).  Both are per-bit, per-access events; soft
errors in quietly stored data are comparatively rare and are not
modelled, following the paper.

Registers and stack-resident locals of approximate type pass through
this unit on every access under instrumented execution.  The unit is
stateless apart from statistics: the faulted value is returned to (or
stored by) the caller.
"""

from __future__ import annotations

from repro.hardware import bits
from repro.hardware.config import HardwareConfig
from repro.hardware.rng import FaultRandom

__all__ = ["ApproxSRAM"]


class ApproxSRAM:
    """Simulated SRAM cell array with voltage-scaled approximate access."""

    def __init__(self, config: HardwareConfig, rng: FaultRandom) -> None:
        self._config = config
        self._rng = rng
        self.approx_reads = 0
        self.approx_writes = 0
        self.precise_reads = 0
        self.precise_writes = 0
        self.read_upsets = 0
        self.write_failures = 0
        #: Byte-access accounting for Figure 3's SRAM fraction.
        self.approx_byte_accesses = 0
        self.precise_byte_accesses = 0

    # ------------------------------------------------------------------
    def read(self, value, kind: str, approximate: bool):
        """Read a value out of SRAM, possibly suffering read upsets."""
        width = bits.bits_for_kind(kind)
        if not approximate:
            self.precise_reads += 1
            self.precise_byte_accesses += width // 8 or 1
            return value
        self.approx_reads += 1
        self.approx_byte_accesses += width // 8 or 1
        return self._corrupt(value, kind, width, self._config.sram_read_upset, is_read=True)

    def write(self, value, kind: str, approximate: bool):
        """Write a value into SRAM, possibly suffering write failures."""
        width = bits.bits_for_kind(kind)
        if not approximate:
            self.precise_writes += 1
            self.precise_byte_accesses += width // 8 or 1
            return value
        self.approx_writes += 1
        self.approx_byte_accesses += width // 8 or 1
        return self._corrupt(value, kind, width, self._config.sram_write_failure, is_read=False)

    # ------------------------------------------------------------------
    def _corrupt(self, value, kind: str, width: int, probability: float, is_read: bool):
        if probability <= 0.0:
            return value
        flips = self._rng.binomial_hits(width, probability)
        if flips == 0:
            return value
        if is_read:
            self.read_upsets += flips
        else:
            self.write_failures += flips
        pattern = bits.value_to_bits(value, kind)
        for _ in range(flips):
            pattern ^= 1 << self._rng.bit_index(width)
        return bits.bits_to_value(pattern, kind)
