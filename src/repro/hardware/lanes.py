"""Per-lane value containers for batch fault injection.

The batch engine (DESIGN.md "Batched fault drawing") runs one
instrumented execution for N fault seeds at once.  EnerJ's type system
keeps control flow precise, so all lanes execute the same instruction
stream; values diverge only downstream of a per-lane fault.  A
:class:`LaneValues` wraps the diverged per-lane values of one program
variable and maps arithmetic over the lanes, which is semantically
exact: each lane's serial run would compute the identical pure
operation on its own value.

Contexts that *must* produce one scalar — ``bool()`` for a branch,
``__index__`` for subscripting, ``int()``/``float()``/``hash()`` —
collapse: if every lane agrees the scalar is returned, otherwise
:class:`LaneDivergenceError` aborts the batch and the harness reruns
the lanes serially (correct-by-fallback; see
``repro.experiments.harness.run_keys_batch``).
"""

from __future__ import annotations

import operator
from typing import List, Sequence

from repro.errors import SimulationError

__all__ = ["LaneDivergenceError", "LaneValues", "lane_value", "unlane"]


class LaneDivergenceError(SimulationError):
    """Batch lanes disagree where a single scalar is required.

    Raised when diverged lanes reach precise control flow (a branch, an
    index, a precise conversion).  Recoverable: the batch harness
    catches it and falls back to serial per-seed execution.
    """


def _same(a, b) -> bool:
    # NaN-tolerant agreement: a lane-uniform NaN must still collapse.
    return a == b or (a != a and b != b)


def _binary(op):
    def forward(self, other):
        if isinstance(other, LaneValues):
            return LaneValues([op(a, b) for a, b in zip(self.values, other.values)])
        return LaneValues([op(a, other) for a in self.values])

    return forward


def _rbinary(op):
    def reflected(self, other):
        if isinstance(other, LaneValues):
            return LaneValues([op(b, a) for a, b in zip(self.values, other.values)])
        return LaneValues([op(other, a) for a in self.values])

    return reflected


def _unary(op):
    def forward(self):
        return LaneValues([op(a) for a in self.values])

    return forward


class LaneValues:
    """One program value, diverged across batch lanes.

    ``values[i]`` is the value lane ``i`` holds.  Arithmetic and
    comparisons map per lane (comparisons return LaneValues of bools);
    scalar-demanding protocols collapse or raise
    :class:`LaneDivergenceError`.
    """

    __slots__ = ("values",)

    def __init__(self, values: Sequence[object]) -> None:
        self.values: List[object] = list(values)

    # -- collapse-or-raise scalar protocols ----------------------------
    def collapse(self):
        """The common scalar of all lanes, or LaneDivergenceError."""
        values = self.values
        first = values[0]
        for value in values:
            if not _same(value, first):
                raise LaneDivergenceError(
                    "batch lanes diverged where a single value is required "
                    f"(lane values: {values!r})"
                )
        return first

    def __bool__(self) -> bool:
        return bool(self.collapse())

    def __int__(self) -> int:
        return int(self.collapse())

    def __index__(self) -> int:
        return operator.index(self.collapse())

    def __float__(self) -> float:
        return float(self.collapse())

    def __hash__(self) -> int:
        return hash(self.collapse())

    def __repr__(self) -> str:
        return f"LaneValues({self.values!r})"

    # -- per-lane arithmetic -------------------------------------------
    __add__ = _binary(operator.add)
    __radd__ = _rbinary(operator.add)
    __sub__ = _binary(operator.sub)
    __rsub__ = _rbinary(operator.sub)
    __mul__ = _binary(operator.mul)
    __rmul__ = _rbinary(operator.mul)
    __truediv__ = _binary(operator.truediv)
    __rtruediv__ = _rbinary(operator.truediv)
    __floordiv__ = _binary(operator.floordiv)
    __rfloordiv__ = _rbinary(operator.floordiv)
    __mod__ = _binary(operator.mod)
    __rmod__ = _rbinary(operator.mod)
    __pow__ = _binary(operator.pow)
    __rpow__ = _rbinary(operator.pow)
    __and__ = _binary(operator.and_)
    __rand__ = _rbinary(operator.and_)
    __or__ = _binary(operator.or_)
    __ror__ = _rbinary(operator.or_)
    __xor__ = _binary(operator.xor)
    __rxor__ = _rbinary(operator.xor)
    __lshift__ = _binary(operator.lshift)
    __rlshift__ = _rbinary(operator.lshift)
    __rshift__ = _binary(operator.rshift)
    __rrshift__ = _rbinary(operator.rshift)
    __neg__ = _unary(operator.neg)
    __pos__ = _unary(operator.pos)
    __abs__ = _unary(operator.abs)
    __invert__ = _unary(operator.invert)

    # -- per-lane comparisons (truthiness collapses later) -------------
    __eq__ = _binary(operator.eq)
    __ne__ = _binary(operator.ne)
    __lt__ = _binary(operator.lt)
    __le__ = _binary(operator.le)
    __gt__ = _binary(operator.gt)
    __ge__ = _binary(operator.ge)


def lane_value(value, lane: int):
    """Lane ``lane``'s view of a possibly-diverged value."""
    if isinstance(value, LaneValues):
        return value.values[lane]
    return value


def unlane(obj, lane: int):
    """Deep-project one lane out of a structure of (possibly) LaneValues.

    Used to split a batch run's output into the per-seed outputs the
    serial path would have produced.  Containers are rebuilt (lists,
    tuples, dicts recursed); anything else passes through by reference.
    """
    if isinstance(obj, LaneValues):
        return obj.values[lane]
    if isinstance(obj, list):
        return [unlane(item, lane) for item in obj]
    if isinstance(obj, tuple):
        return tuple(unlane(item, lane) for item in obj)
    if isinstance(obj, dict):
        return {key: unlane(value, lane) for key, value in obj.items()}
    return obj
