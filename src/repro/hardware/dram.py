"""Approximate DRAM (heap storage) — paper Section 4.2.

Lowering the refresh rate of DRAM lines holding approximate data saves
17–24% of memory power at the cost of *data decay*: each bit flips with
a per-second probability (Table 2), independently, as long as it goes
unrefreshed.  Accessing a word effectively refreshes it (the read
rewrites the row), so decay accumulates between accesses.

The unit keeps a last-refresh tick stamp per stored word.  On each read
of an approximate word it draws the number of flipped bits from the
elapsed simulated time, applies them, and resets the stamp.  Writes
reset the stamp without decay (the new value is freshly stored).

Object fields and array elements of approximate type live here under
instrumented execution (the paper's rough classification: heap = DRAM,
stack = SRAM).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.hardware import bits
from repro.hardware.clock import LogicalClock
from repro.hardware.config import HardwareConfig
from repro.hardware.lanes import LaneValues
from repro.hardware.rng import BatchFaultRandom, FaultRandom

__all__ = ["ApproxDRAM", "BatchApproxDRAM"]

#: Key addressing one stored word: (container id, slot).
_Address = Tuple[int, object]


class ApproxDRAM:
    """Simulated DRAM with per-word refresh stamps and decay on read.

    ``tracer`` (a :class:`repro.observability.tracer.Tracer`, optional)
    receives one ``dram.decay`` event per decayed read; ``identity`` on
    :meth:`read` carries the caller's deterministic site name (heap
    ordinals, not ``id()``) so traces are stable across processes.
    """

    def __init__(
        self,
        config: HardwareConfig,
        rng: FaultRandom,
        clock: LogicalClock,
        tracer=None,
    ) -> None:
        self._config = config
        self._rng = rng
        self._clock = clock
        self._tracer = tracer
        self._refresh_stamp: Dict[_Address, int] = {}
        self.approx_reads = 0
        self.approx_writes = 0
        self.precise_reads = 0
        self.precise_writes = 0
        self.decayed_bits = 0

    # ------------------------------------------------------------------
    def write(self, address: _Address, value, kind: str, approximate: bool):
        """Store a word; approximate words get a fresh refresh stamp."""
        if not approximate:
            self.precise_writes += 1
            return value
        self.approx_writes += 1
        self._refresh_stamp[address] = self._clock.ticks
        return value

    def read(self, address: _Address, value, kind: str, approximate: bool, identity=None):
        """Load a word, applying decay proportional to its idle time."""
        if not approximate:
            self.precise_reads += 1
            return value
        self.approx_reads += 1
        probability = self._decay_probability(address)
        self._refresh_stamp[address] = self._clock.ticks
        if probability <= 0.0:
            return value
        width = bits.bits_for_kind(kind)
        flips = self._rng.binomial_hits(width, probability)
        if flips == 0:
            return value
        self.decayed_bits += flips
        pattern = bits.value_to_bits(value, kind)
        if self._tracer is None:
            for _ in range(flips):
                pattern ^= 1 << self._rng.bit_index(width)
            return bits.bits_to_value(pattern, kind)
        # Traced path: same RNG draw sequence, but the positions are kept
        # for the event, so traced runs stay bit-identical to untraced.
        positions = [self._rng.bit_index(width) for _ in range(flips)]
        for position in positions:
            pattern ^= 1 << position
        result = bits.bits_to_value(pattern, kind)
        self._tracer.emit(
            "dram.decay",
            identity if identity is not None else f"dram:{kind}",
            bits=tuple(positions),
            before=value,
            after=result,
        )
        return result

    def forget(self, container_id: int) -> None:
        """Drop refresh stamps for a freed container (array/object)."""
        stale = [key for key in self._refresh_stamp if key[0] == container_id]
        for key in stale:
            del self._refresh_stamp[key]

    # ------------------------------------------------------------------
    def _decay_probability(self, address: _Address) -> float:
        per_second = self._config.dram_flip_per_second
        if per_second <= 0.0:
            return 0.0
        stamp = self._refresh_stamp.get(address)
        if stamp is None:
            # First touch: the word was just allocated; treat as fresh.
            return 0.0
        elapsed = self._clock.seconds_since(stamp)
        if elapsed <= 0.0:
            return 0.0
        # Per-bit flip probability over the idle window: 1-(1-p)^t, with
        # the exact exponential for fractional seconds.
        return 1.0 - (1.0 - per_second) ** elapsed


class BatchApproxDRAM(ApproxDRAM):
    """Lane-vectorized DRAM: one read draws decay for every seed lane.

    Refresh stamps are keyed by (container, slot) and driven by the
    logical clock, both lane-uniform, so the stamp table stays shared;
    only the decayed bit counts and decayed values are per-lane.  The
    per-lane draw order matches the serial unit's exactly (see
    :class:`~repro.hardware.sram.BatchApproxSRAM`).
    """

    def __init__(
        self,
        config: HardwareConfig,
        rng: BatchFaultRandom,
        clock: LogicalClock,
        tracers=None,
        lanes: int = 1,
    ) -> None:
        super().__init__(config, rng, clock, tracer=None)
        self._tracers = tracers
        self._lanes = lanes
        self.decayed_bits = [0] * lanes

    def read(self, address: _Address, value, kind: str, approximate: bool, identity=None):
        if not approximate:
            self.precise_reads += 1
            return value
        self.approx_reads += 1
        probability = self._decay_probability(address)
        self._refresh_stamp[address] = self._clock.ticks
        if probability <= 0.0:
            return value
        width = bits.bits_for_kind(kind)
        hits = self._rng.binomial_hits(width, probability)
        if not hits:
            return value
        if isinstance(value, LaneValues):
            lane_values = list(value.values)
        else:
            lane_values = [value] * self._lanes
        for lane, flips in hits.items():
            self.decayed_bits[lane] += flips
            before = lane_values[lane]
            pattern = bits.value_to_bits(before, kind)
            positions = [
                self._rng.bit_index(width, (lane,))[0] for _ in range(flips)
            ]
            for position in positions:
                pattern ^= 1 << position
            result = bits.bits_to_value(pattern, kind)
            if self._tracers is not None:
                self._tracers[lane].emit(
                    "dram.decay",
                    identity if identity is not None else f"dram:{kind}",
                    bits=tuple(positions),
                    before=before,
                    after=result,
                )
            lane_values[lane] = result
        return LaneValues(lane_values)
