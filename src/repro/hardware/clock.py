"""Deterministic logical clock for the simulator.

The paper's DRAM-decay faults and byte-second storage statistics depend
on wall-clock time inside a JVM.  Re-hosting on a deterministic
simulator, we advance a logical clock by one tick per simulated
instruction and convert ticks to seconds with the configuration's
``seconds_per_tick`` (DESIGN.md substitution 3).  Everything downstream
— decay probabilities, byte-second accounting — reads this clock.
"""

from __future__ import annotations

__all__ = ["LogicalClock"]


class LogicalClock:
    """Monotonic tick counter with a fixed seconds-per-tick rate."""

    def __init__(self, seconds_per_tick: float = 1e-6) -> None:
        if seconds_per_tick <= 0:
            raise ValueError("seconds_per_tick must be positive")
        self.seconds_per_tick = seconds_per_tick
        self._ticks = 0

    @property
    def ticks(self) -> int:
        return self._ticks

    @property
    def seconds(self) -> float:
        return self._ticks * self.seconds_per_tick

    def advance(self, ticks: int = 1) -> int:
        """Advance the clock (one tick per simulated instruction)."""
        if ticks < 0:
            raise ValueError("the logical clock cannot run backwards")
        self._ticks += ticks
        return self._ticks

    def seconds_since(self, past_ticks: int) -> float:
        """Elapsed simulated seconds since an earlier tick stamp."""
        return max(0, self._ticks - past_ticks) * self.seconds_per_tick
