"""Approximate floating-point unit (paper Sections 4.2 and 5.3).

Approximation mechanisms:

* **Mantissa-width reduction** — operands (and the result) keep only the
  configured number of explicit mantissa bits.  A binary32 multiplier
  with 8-bit mantissas uses 78% less energy per operation (Tong et al.,
  cited by the paper).
* **Voltage-scaled timing errors** — with the configured probability the
  operation's output is wrong, according to the active
  :class:`~repro.hardware.config.ErrorMode` (random value, single bit
  flip, or last value computed).

Division by zero never raises on the approximate FPU: the paper's
simulator returns NaN for approximate float division by zero so that
approximation cannot introduce exceptions the precise program lacked.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.hardware import bits
from repro.hardware.config import ErrorMode, HardwareConfig
from repro.hardware.lanes import LaneValues, lane_value
from repro.hardware.rng import BatchFaultRandom, FaultRandom

__all__ = ["ApproxFPU", "BatchApproxFPU", "FLOAT_OPS"]

try:  # pragma: no cover - exercised with and without the [batch] extra
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        # Approximate FP division by zero returns NaN (paper Sec. 5.2),
        # with the IEEE sign conventions irrelevant to the QoS metrics.
        return math.nan
    return a / b


def _fmod(a: float, b: float) -> float:
    if b == 0.0:
        return math.nan
    return math.fmod(a, b)


FLOAT_OPS: Dict[str, Callable[[float, float], float]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _fdiv,
    "mod": _fmod,
}

def _vdiv_lanes(a, b):
    out = a / b
    zero = b == 0.0
    if zero.any():
        out[zero] = _np.nan
    return out


def _vmod_lanes(a, b):
    zero = b == 0.0
    if (_np.isinf(a) & ~zero).any():
        # math.fmod raises for an infinite dividend where np.fmod gives
        # NaN; abort the batch so the serial rerun reproduces the raise.
        raise ValueError("math domain error")
    out = _np.fmod(a, b)
    if zero.any():
        out[zero] = _np.nan
    return out


#: FLOAT_OPS over float64 lane arrays.  IEEE binary64 arithmetic is the
#: same elementwise, so each lane's result is bit-identical to the
#: scalar op; div/mod replicate the NaN-for-zero-divisor convention.
#: Callers wrap these in ``errstate`` — overflow to inf and inf-inf to
#: NaN are silent in Python scalar arithmetic and must stay silent here.
_VECTOR_FLOAT_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _vdiv_lanes,
    "mod": _vmod_lanes,
}

_COMPARE_OPS: Dict[str, Callable[[float, float], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


class ApproxFPU:
    """Simulated floating-point unit with approximate operation support.

    ``tracer`` (a :class:`repro.observability.tracer.Tracer`, optional)
    receives one ``fpu.timing_error`` event per faulted operation and
    one ``fpu.truncation`` event whenever mantissa-width reduction
    changed the numeric result; when ``None`` each site pays one branch.
    """

    def __init__(self, config: HardwareConfig, rng: FaultRandom, tracer=None) -> None:
        self._config = config
        self._rng = rng
        self._tracer = tracer
        self._last_value = 0.0
        #: Number of approximate FP operations executed (for Figure 3).
        self.approx_ops = 0
        #: Number of precise FP operations executed.
        self.precise_ops = 0
        #: Number of operations whose output was corrupted.
        self.faulted_ops = 0

    # ------------------------------------------------------------------
    def precise_binop(self, op: str, a: float, b: float) -> float:
        """A fully precise FP operation (normal Java semantics)."""
        self.precise_ops += 1
        if op in _COMPARE_OPS:
            return _COMPARE_OPS[op](a, b)
        if op == "div" and b == 0.0:
            raise ZeroDivisionError("float division by zero")
        if op == "mod" and b == 0.0:
            raise ZeroDivisionError("float modulo by zero")
        return FLOAT_OPS[op](a, b)

    def approx_binop(self, op: str, a: float, b: float, double: bool = False) -> float:
        """An approximate FP operation.

        Applies mantissa truncation to operands and result, then
        possibly injects a timing-error fault into the result.  Returns
        a Python float (binary64) holding the truncated value.
        """
        self.approx_ops += 1
        keep = self._config.double_mantissa_bits if double else self._config.float_mantissa_bits
        a_t = bits.truncate_mantissa(float(a), keep, double=double)
        b_t = bits.truncate_mantissa(float(b), keep, double=double)
        if op in _COMPARE_OPS:
            result = _COMPARE_OPS[op](a_t, b_t)
            return self._maybe_fault_bool(result, op)
        raw = FLOAT_OPS[op](a_t, b_t)
        result = bits.truncate_mantissa(raw, keep, double=double)
        if self._tracer is not None and result != raw and raw == raw:
            self._tracer.emit(
                "fpu.truncation",
                f"fpu:{op}",
                before=raw,
                after=result,
                extra={"kept_bits": keep},
            )
        result = self._maybe_fault(result, double, op)
        self._last_value = result
        return result

    def approx_unop(self, op: str, a: float, double: bool = False) -> float:
        """Approximate unary negation / absolute value."""
        self.approx_ops += 1
        keep = self._config.double_mantissa_bits if double else self._config.float_mantissa_bits
        a_t = bits.truncate_mantissa(float(a), keep, double=double)
        raw = -a_t if op == "neg" else abs(a_t)
        result = self._maybe_fault(raw, double, op)
        self._last_value = result
        return result

    # ------------------------------------------------------------------
    def _maybe_fault(self, value: float, double: bool, op: str = "?") -> float:
        if not self._rng.coin(self._config.timing_error_prob):
            return value
        self.faulted_ops += 1
        mode = self._config.error_mode
        flipped = ()
        if mode is ErrorMode.LAST_VALUE:
            result = self._last_value
        elif mode is ErrorMode.SINGLE_BIT_FLIP:
            width = bits.DOUBLE_BITS if double else bits.FLOAT_BITS
            position = self._rng.bit_index(width)
            result = bits.flip_bit_float(value, position, double=double)
            flipped = (position,)
        elif double:
            # RANDOM: an arbitrary bit pattern of the right width.
            result = bits.bits64_to_float(self._rng.bits(bits.DOUBLE_BITS))
        else:
            result = bits.bits32_to_float(self._rng.bits(bits.FLOAT_BITS))
        if self._tracer is not None:
            self._tracer.emit(
                "fpu.timing_error",
                f"fpu:{op}",
                bits=flipped,
                before=value,
                after=result,
                extra={"mode": mode.name.lower()},
            )
        return result

    def _maybe_fault_bool(self, value: bool, op: str = "?") -> bool:
        if not self._rng.coin(self._config.timing_error_prob):
            return value
        self.faulted_ops += 1
        if self._config.error_mode is ErrorMode.LAST_VALUE:
            result = bool(self._last_value)
        else:
            result = not value
        if self._tracer is not None:
            self._tracer.emit(
                "fpu.timing_error",
                f"fpu:{op}",
                before=value,
                after=result,
                extra={"mode": self._config.error_mode.name.lower()},
            )
        return result


class BatchApproxFPU(ApproxFPU):
    """Lane-vectorized FPU: one op truncates and draws faults per lane.

    Mantissa truncation is applied through the ``*_lanes`` helpers in
    :mod:`repro.hardware.bits` when operands have diverged; truncation
    events go to each lane's own tracer (all lanes when converged — one
    execution *is* all N serial executions).  The timing-error draw
    order per lane matches :class:`ApproxFPU` word for word.
    """

    def __init__(
        self,
        config: HardwareConfig,
        rng: BatchFaultRandom,
        tracers=None,
        lanes: int = 1,
    ) -> None:
        super().__init__(config, rng, tracer=None)
        self._tracers = tracers
        self._lanes = lanes
        self.faulted_ops = [0] * lanes

    # precise_binop is inherited.  With diverged operands the zero-divisor
    # checks collapse through LaneValues.__bool__: lane-mixed zero
    # divisors raise LaneDivergenceError, which the batch harness turns
    # into a serial rerun.

    def approx_binop(self, op: str, a, b, double: bool = False):
        self.approx_ops += 1
        keep = self._config.double_mantissa_bits if double else self._config.float_mantissa_bits
        if isinstance(a, LaneValues) or isinstance(b, LaneValues):
            return self._approx_binop_lanes(op, a, b, double, keep)
        a_t = bits.truncate_mantissa(float(a), keep, double=double)
        b_t = bits.truncate_mantissa(float(b), keep, double=double)
        if op in _COMPARE_OPS:
            result = _COMPARE_OPS[op](a_t, b_t)
            return self._maybe_fault_bool(result, op)
        raw = FLOAT_OPS[op](a_t, b_t)
        result = bits.truncate_mantissa(raw, keep, double=double)
        if self._tracers is not None and result != raw and raw == raw:
            for tracer in self._tracers:
                tracer.emit(
                    "fpu.truncation",
                    f"fpu:{op}",
                    before=raw,
                    after=result,
                    extra={"kept_bits": keep},
                )
        result = self._maybe_fault(result, double, op)
        self._last_value = result
        return result

    def _approx_binop_lanes(self, op: str, a, b, double: bool, keep: int):
        n = self._lanes
        a_lanes = a.values if isinstance(a, LaneValues) else [a] * n
        b_lanes = b.values if isinstance(b, LaneValues) else [b] * n
        if _np is not None:
            # Vectorized path: truncate both operand vectors in one
            # array pass and run the op lane-parallel.  Elementwise
            # float64 results equal the scalar path bit for bit.
            with _np.errstate(all="ignore"):
                both = bits.truncate_mantissa_array(
                    list(a_lanes) + list(b_lanes), keep, double
                )
                a_t, b_t = both[:n], both[n:]
                if op in _COMPARE_OPS:
                    compared = LaneValues(_COMPARE_OPS[op](a_t, b_t).tolist())
                    return self._maybe_fault_bool(compared, op)
                raw_arr = _VECTOR_FLOAT_OPS[op](a_t, b_t)
                raw = raw_arr.tolist()
                truncated = bits.truncate_mantissa_array(raw_arr, keep, double).tolist()
        else:
            a_t = bits.truncate_mantissa_lanes([float(v) for v in a_lanes], keep, double)
            b_t = bits.truncate_mantissa_lanes([float(v) for v in b_lanes], keep, double)
            if op in _COMPARE_OPS:
                fn = _COMPARE_OPS[op]
                compared = LaneValues([fn(x, y) for x, y in zip(a_t, b_t)])
                return self._maybe_fault_bool(compared, op)
            fn = FLOAT_OPS[op]
            raw = [fn(x, y) for x, y in zip(a_t, b_t)]
            truncated = bits.truncate_mantissa_lanes(raw, keep, double)
        if self._tracers is not None:
            for lane, tracer in enumerate(self._tracers):
                if truncated[lane] != raw[lane] and raw[lane] == raw[lane]:
                    tracer.emit(
                        "fpu.truncation",
                        f"fpu:{op}",
                        before=raw[lane],
                        after=truncated[lane],
                        extra={"kept_bits": keep},
                    )
        result = self._maybe_fault(LaneValues(truncated), double, op)
        self._last_value = result
        return result

    def approx_unop(self, op: str, a, double: bool = False):
        self.approx_ops += 1
        keep = self._config.double_mantissa_bits if double else self._config.float_mantissa_bits
        if isinstance(a, LaneValues):
            a_t = bits.truncate_mantissa_lanes([float(v) for v in a.values], keep, double)
            raw = LaneValues([-v if op == "neg" else abs(v) for v in a_t])
        else:
            a_t = bits.truncate_mantissa(float(a), keep, double=double)
            raw = -a_t if op == "neg" else abs(a_t)
        result = self._maybe_fault(raw, double, op)
        self._last_value = result
        return result

    # ------------------------------------------------------------------
    def _maybe_fault(self, value, double: bool, op: str = "?"):
        fired = self._rng.coin_fired(self._config.timing_error_prob)
        if not fired:
            return value
        mode = self._config.error_mode
        width = bits.DOUBLE_BITS if double else bits.FLOAT_BITS
        if isinstance(value, LaneValues):
            lane_values = list(value.values)
        else:
            lane_values = [value] * self._lanes
        for lane in fired:
            self.faulted_ops[lane] += 1
            before = lane_values[lane]
            flipped = ()
            if mode is ErrorMode.LAST_VALUE:
                result = lane_value(self._last_value, lane)
            elif mode is ErrorMode.SINGLE_BIT_FLIP:
                position = self._rng.bit_index(width, (lane,))[0]
                result = bits.flip_bit_float(before, position, double=double)
                flipped = (position,)
            elif double:
                result = bits.bits64_to_float(self._rng.bits(bits.DOUBLE_BITS, (lane,))[0])
            else:
                result = bits.bits32_to_float(self._rng.bits(bits.FLOAT_BITS, (lane,))[0])
            if self._tracers is not None:
                self._tracers[lane].emit(
                    "fpu.timing_error",
                    f"fpu:{op}",
                    bits=flipped,
                    before=before,
                    after=result,
                    extra={"mode": mode.name.lower()},
                )
            lane_values[lane] = result
        return LaneValues(lane_values)

    def _maybe_fault_bool(self, value, op: str = "?"):
        fired = self._rng.coin_fired(self._config.timing_error_prob)
        if not fired:
            return value
        last_value_mode = self._config.error_mode is ErrorMode.LAST_VALUE
        if isinstance(value, LaneValues):
            lane_values = list(value.values)
        else:
            lane_values = [value] * self._lanes
        for lane in fired:
            self.faulted_ops[lane] += 1
            before = lane_values[lane]
            if last_value_mode:
                result = bool(lane_value(self._last_value, lane))
            else:
                result = not before
            if self._tracers is not None:
                self._tracers[lane].emit(
                    "fpu.timing_error",
                    f"fpu:{op}",
                    before=before,
                    after=result,
                    extra={"mode": self._config.error_mode.name.lower()},
                )
            lane_values[lane] = result
        return LaneValues(lane_values)
