"""Approximate-hardware simulation substrate (paper Section 4).

This package models the approximation-aware architecture the paper
proposes: approximate SRAM (registers + cache), approximate DRAM (heap),
and approximate functional units (integer ALU voltage scaling; FP
mantissa-width reduction), each with the Table 2 Mild / Medium /
Aggressive parameterisations.
"""

from repro.hardware.alu import ApproxALU, BatchApproxALU
from repro.hardware.clock import LogicalClock
from repro.hardware.config import (
    AGGRESSIVE,
    BASELINE,
    MEDIUM,
    MILD,
    STRATEGY_NAMES,
    ErrorMode,
    HardwareConfig,
    Level,
    config_for_level,
)
from repro.hardware.dram import ApproxDRAM, BatchApproxDRAM
from repro.hardware.fpu import ApproxFPU, BatchApproxFPU
from repro.hardware.lanes import LaneDivergenceError, LaneValues
from repro.hardware.rng import BatchFaultRandom, FaultRandom
from repro.hardware.sram import ApproxSRAM, BatchApproxSRAM

__all__ = [
    "ApproxALU",
    "ApproxFPU",
    "ApproxSRAM",
    "ApproxDRAM",
    "BatchApproxALU",
    "BatchApproxFPU",
    "BatchApproxSRAM",
    "BatchApproxDRAM",
    "LaneValues",
    "LaneDivergenceError",
    "LogicalClock",
    "FaultRandom",
    "BatchFaultRandom",
    "HardwareConfig",
    "ErrorMode",
    "Level",
    "BASELINE",
    "MILD",
    "MEDIUM",
    "AGGRESSIVE",
    "STRATEGY_NAMES",
    "config_for_level",
]
