"""Deterministic random sources for fault injection.

All stochastic behaviour in the simulator flows through one
:class:`FaultRandom` instance owned by the active simulation context, so
a run is exactly reproducible from its seed.  This replaces the paper's
nondeterministic physical faults with a seedable equivalent — the same
code path, made deterministic for testing (see DESIGN.md substitutions).

:class:`BatchFaultRandom` is the vectorized counterpart used by the
batch fault-injection engine (DESIGN.md "Batched fault drawing"): one
instance carries N independent lanes, where lane ``i``'s draw stream is
bit-identical to ``FaultRandom(seeds[i])``'s.  Two engines provide the
draws:

* ``numpy`` — a lane-parallel MT19937.  Each lane's generator state is
  lifted straight from ``random.Random(seed).getstate()`` (so seeding
  is exactly CPython's, including ``init_by_array``), and generation
  (twist + temper) is replayed with array operations across all lanes
  at once.  ``coin``/``bit_index``/``bits`` reproduce CPython's word
  consumption exactly — ``random()`` is two tempered words,
  ``getrandbits(k)`` is ``word >> (32 - k)``, ``randrange(n)`` is the
  rejection loop over ``getrandbits(n.bit_length())``.
* ``python`` — N plain :class:`FaultRandom` instances, looped.  The
  fallback when numpy (the ``[batch]`` extra) is not installed;
  bit-identical by construction.

The draw-count discipline is the reproducibility contract: a batch
primitive consumes, per lane, exactly the words the serial primitive
consumes, so lane streams never depend on what other lanes drew.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["FaultRandom", "BatchFaultRandom"]

try:  # pragma: no cover - exercised via both engine parametrizations
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class FaultRandom:
    """A seedable random source with fault-injection helpers."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._random = random.Random(seed)
        self.seed = seed

    def coin(self, probability: float) -> bool:
        """True with the given probability.

        This is the single primitive every fault model uses, which
        keeps the draw count (and thus reproducibility) easy to reason
        about.  The edge-case contract — shared verbatim by
        :class:`BatchFaultRandom` and pinned by
        ``tests/test_batch_differential.py`` — is:

        * ``probability <= 0.0`` (including ``-inf``): never fires and
          consumes **no** draw;
        * ``probability >= 1.0`` (including ``+inf``): always fires and
          consumes **no** draw (note ``1.0 - (1.0 - p) ** n`` can round
          to exactly ``1.0``, so this branch is reachable from
          :meth:`binomial_hits`);
        * ``NaN``: both comparisons above are false, so the draw path
          runs — one ``random()`` is consumed and the ``< NaN``
          comparison makes the coin never fire.  A NaN probability is a
          caller bug, but it must not silently desynchronise the draw
          stream, so the consumed draw is contractual.
        """
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def bit_index(self, width: int) -> int:
        """A uniformly random bit position in ``[0, width)``."""
        return self._random.randrange(width)

    def bits(self, width: int) -> int:
        """A uniformly random ``width``-bit pattern."""
        return self._random.getrandbits(width)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def binomial_hits(self, trials: int, probability: float) -> int:
        """Number of successes in ``trials`` Bernoulli draws.

        Used to decide how many bits of a word flip.  For the tiny
        probabilities in Table 2 this is almost always zero; we sample
        exactly (trials are at most 64) rather than approximating.
        """
        if probability <= 0.0 or trials <= 0:
            return 0
        if probability >= 1.0:
            return trials
        # For small p, short-circuit via one aggregate coin first: the
        # probability that *any* of the trials fires is 1-(1-p)^n.
        any_prob = 1.0 - (1.0 - probability) ** trials
        if not self.coin(any_prob):
            return 0
        hits = 1
        for _ in range(trials - 1):
            if self.coin(probability):
                hits += 1
        return hits

    def spawn(self, label: str) -> "FaultRandom":
        """A child source whose stream is independent of the parent's.

        Each hardware unit (ALU, FPU, SRAM, DRAM) owns its own child so
        that adding draws in one unit does not perturb another unit's
        stream — important for the per-strategy isolation experiments.
        The derivation uses CRC32, not ``hash()``, because Python's
        string hashing is randomised per process and seeds must be
        stable across runs.
        """
        base = self.seed if self.seed is not None else 0
        return FaultRandom(_child_seed(base, label))


def _child_seed(base: int, label: str) -> int:
    """The :meth:`FaultRandom.spawn` seed derivation, shared with batch."""
    return zlib.crc32(f"{base}:{label}".encode("utf-8")) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# Batch lanes
# ----------------------------------------------------------------------

#: MT19937 constants (CPython _randommodule.c).
_MT_N = 624
_MT_M = 397


class _PythonLanes:
    """Fallback engine: one :class:`FaultRandom` per lane, looped.

    Bit-identity with the serial source is by construction — every
    primitive delegates to the lane's own ``FaultRandom``, so the draw
    stream cannot drift.  Used when numpy (the ``[batch]`` extra) is
    absent, and as the oracle in the differential tests.
    """

    name = "python"

    def __init__(self, seeds: Sequence[int]) -> None:
        self._lanes = [FaultRandom(seed) for seed in seeds]

    def _selected(self, lanes: Optional[Sequence[int]]) -> Sequence[int]:
        return range(len(self._lanes)) if lanes is None else lanes

    def coin(self, probability: float, lanes: Optional[Sequence[int]]) -> List[bool]:
        sources = self._lanes
        return [sources[lane].coin(probability) for lane in self._selected(lanes)]

    def coin_fired(
        self, probability: float, lanes: Optional[Sequence[int]]
    ) -> Tuple[int, ...]:
        sources = self._lanes
        return tuple(
            lane for lane in self._selected(lanes) if sources[lane].coin(probability)
        )

    def bit_index(self, width: int, lanes: Optional[Sequence[int]]) -> List[int]:
        sources = self._lanes
        return [sources[lane].bit_index(width) for lane in self._selected(lanes)]

    def bits(self, width: int, lanes: Optional[Sequence[int]]) -> List[int]:
        sources = self._lanes
        return [sources[lane].bits(width) for lane in self._selected(lanes)]

    def uniform(
        self, low: float, high: float, lanes: Optional[Sequence[int]]
    ) -> List[float]:
        sources = self._lanes
        return [sources[lane].uniform(low, high) for lane in self._selected(lanes)]


class _NumpyLanes:
    """Vectorized engine: lane-parallel MT19937 on packed uint32 rows.

    State layout: ``_mt`` is the raw (lanes, 624) generator state,
    ``_buf`` the tempered outputs of the current block, ``_pos`` the
    per-lane cursor into it.  While every draw touches all lanes the
    cursors stay in lockstep and words come from one cheap column
    slice; the first subset draw (a fault path touching only some
    lanes) desynchronises the cursors and subsequent draws gather
    per-lane.  Either way each lane consumes words in exactly the
    serial order, which is the whole reproducibility argument.
    """

    name = "numpy"

    _UPPER = None  # class-level numpy constants, filled lazily below

    def __init__(self, seeds: Sequence[int]) -> None:
        np = _np
        states = []
        positions = []
        for seed in seeds:
            # random.Random(seed).getstate() hands us CPython's exact
            # post-seed MT19937 state — init_by_array included — so the
            # vectorized generator never reimplements seeding.
            words = random.Random(seed).getstate()[1]
            states.append(words[:_MT_N])
            positions.append(words[_MT_N])
        self._mt = np.array(states, dtype=np.uint32)
        # Tempered outputs are stored transposed — (624, lanes) — so the
        # lockstep draw is a contiguous row view rather than a strided
        # column copy (the single hottest line under profiling).
        self._buf = np.ascontiguousarray(self._temper(self._mt.copy()).T)
        self._all = np.arange(len(seeds))
        self._pos = np.array(positions, dtype=np.int64)
        self._synced = bool((self._pos == self._pos[0]).all())
        self._p = int(self._pos[0]) if self._synced else 0

    # -- generation ----------------------------------------------------
    @staticmethod
    def _temper(y):
        y ^= y >> 11
        y ^= (y << 7) & _np.uint32(0x9D2C5680)
        y ^= (y << 15) & _np.uint32(0xEFC60000)
        y ^= y >> 18
        return y

    @staticmethod
    def _twist(mt) -> None:
        """One MT19937 state transition, in place, on (k, 624) rows.

        The C loop reads ``mt[i + M mod N]`` values it already wrote on
        the same pass, so the vectorized replay runs in dependency
        order: ranges whose wrapped reads land in an already-updated
        range, finishing with index N-1 (which reads the fresh
        ``mt[0]``).
        """
        np = _np
        upper = np.uint32(0x80000000)
        lower = np.uint32(0x7FFFFFFF)
        matrix = np.uint32(0x9908B0DF)
        one = np.uint32(1)
        n, m = _MT_N, _MT_M
        for start, stop in ((0, n - m), (n - m, 2 * (n - m)), (2 * (n - m), n - 1)):
            y = (mt[:, start:stop] & upper) | (mt[:, start + 1 : stop + 1] & lower)
            mt[:, start:stop] = (
                mt[:, (start + m) % n : (start + m) % n + (stop - start)]
                ^ (y >> one)
                ^ ((y & one) * matrix)
            )
        y = (mt[:, n - 1] & upper) | (mt[:, 0] & lower)
        mt[:, n - 1] = mt[:, m - 1] ^ (y >> one) ^ ((y & one) * matrix)

    def _refill_all(self) -> None:
        self._twist(self._mt)
        self._buf = _np.ascontiguousarray(self._temper(self._mt.copy()).T)
        if self._synced:
            self._p = 0
        else:
            self._pos[:] = 0

    def _refill_rows(self, rows) -> None:
        block = self._mt[rows]
        self._twist(block)
        self._mt[rows] = block
        self._buf[:, rows] = self._temper(block.copy()).T
        self._pos[rows] = 0

    def _desync(self) -> None:
        if self._synced:
            self._pos[:] = self._p
            self._synced = False

    def _draw_all(self):
        """The next tempered word of every lane (lockstep fast path)."""
        if self._synced:
            if self._p >= _MT_N:
                self._refill_all()
            word = self._buf[self._p]
            self._p += 1
            return word
        return self._draw_rows(self._all)

    def _draw_rows(self, rows):
        """The next tempered word of each lane in ``rows`` (gather path)."""
        self._desync()
        pos = self._pos[rows]
        exhausted = rows[pos >= _MT_N]
        if exhausted.size:
            self._refill_rows(exhausted)
            pos = self._pos[rows]
        words = self._buf[pos, rows]
        self._pos[rows] = pos + 1
        return words

    def _draw(self, lanes):
        if lanes is self._all and self._synced:
            return self._draw_all()
        return self._draw_rows(lanes)

    def _lane_rows(self, lanes: Sequence[int]):
        if lanes is None:
            return self._all
        rows = _np.asarray(lanes, dtype=_np.int64)
        if self._synced and rows.size == self._all.size:
            return self._all
        return rows

    # -- CPython-compatible primitives ---------------------------------
    def _random(self, rows):
        """Per-lane ``random.Random.random()``: two words, 53-bit float."""
        if rows is self._all:
            if self._synced:
                # Lockstep fast path: both words of every lane come from
                # two adjacent buffer rows, no per-draw dispatch.
                p = self._p
                if p + 2 <= _MT_N:
                    self._p = p + 2
                    a = self._buf[p] >> 5
                    b = self._buf[p + 1] >> 6
                    return (
                        a.astype(_np.float64) * 67108864.0 + b.astype(_np.float64)
                    ) * (1.0 / 9007199254740992.0)
            else:
                # Desynced all-lanes path (after any single-lane fault):
                # gather both words per lane in one pass when no lane's
                # cursor straddles the block boundary.
                pos = self._pos
                if int(pos.max()) + 2 <= _MT_N:
                    a = self._buf[pos, self._all] >> 5
                    b = self._buf[pos + 1, self._all] >> 6
                    pos += 2
                    return (
                        a.astype(_np.float64) * 67108864.0 + b.astype(_np.float64)
                    ) * (1.0 / 9007199254740992.0)
        a = self._draw(rows) >> 5
        b = self._draw(rows) >> 6
        return (a.astype(_np.float64) * 67108864.0 + b.astype(_np.float64)) * (
            1.0 / 9007199254740992.0
        )

    def _getrandbits(self, k: int, rows):
        np = _np
        if k <= 32:
            return (self._draw(rows) >> (32 - k)).astype(np.uint64)
        low = self._draw(rows).astype(np.uint64)
        high = self._draw(rows).astype(np.uint64)
        if k < 64:
            high >>= 64 - k
        return low | (high << np.uint64(32))

    def coin(self, probability: float, lanes: Optional[Sequence[int]]) -> List[bool]:
        rows = self._lane_rows(lanes)
        if probability <= 0.0:
            return [False] * int(rows.size)
        if probability >= 1.0:
            return [True] * int(rows.size)
        # NaN falls through (both guards false): the draw is consumed
        # and `< NaN` is elementwise false — the FaultRandom contract.
        return (self._random(rows) < probability).tolist()

    def coin_fired(
        self, probability: float, lanes: Optional[Sequence[int]]
    ) -> Tuple[int, ...]:
        rows = self._lane_rows(lanes)
        if probability <= 0.0:
            return ()
        if probability >= 1.0:
            return tuple(rows.tolist())
        mask = self._random(rows) < probability
        if not mask.any():
            # The overwhelmingly common outcome for Table 2 fault rates;
            # skipping list materialisation here is the batch engine's
            # single biggest win.
            return ()
        return tuple(rows[mask].tolist())

    def bit_index(self, width: int, lanes: Sequence[int]) -> List[int]:
        np = _np
        rows = self._lane_rows(lanes)
        k = width.bit_length()
        out = np.zeros(rows.size, dtype=np.uint64)
        pending = np.ones(rows.size, dtype=bool)
        while pending.any():
            drawn = self._getrandbits(k, rows[pending])
            out[pending] = drawn
            pending[pending] = drawn >= width
        return out.tolist()

    def bits(self, width: int, lanes: Sequence[int]) -> List[int]:
        return self._getrandbits(width, self._lane_rows(lanes)).tolist()

    def uniform(self, low: float, high: float, lanes: Sequence[int]) -> List[float]:
        rows = self._lane_rows(lanes)
        return (low + (high - low) * self._random(rows)).tolist()


class BatchFaultRandom:
    """N independent fault-draw lanes; lane i mirrors FaultRandom(seeds[i]).

    The public methods mirror :class:`FaultRandom`'s but return one
    value per lane.  ``lanes`` arguments restrict a draw to a subset of
    lanes (identified by index), consuming words only on those lanes —
    the batch fault models use this so that, e.g., only lanes whose
    aggregate coin fired pay the per-bit draws, exactly like their
    serial counterparts.

    ``engine`` selects the draw backend: ``"numpy"`` (vectorized MT19937
    lanes), ``"python"`` (looped FaultRandom instances), or ``"auto"``
    (numpy when importable).  Both engines are bit-identical; the
    differential suite runs against each.
    """

    def __init__(self, seeds: Sequence[int], engine: str = "auto") -> None:
        if not seeds:
            raise ValueError("BatchFaultRandom needs at least one lane seed")
        self.seeds: Tuple[int, ...] = tuple(
            seed if seed is not None else 0 for seed in seeds
        )
        self.lanes = len(self.seeds)
        if engine == "auto":
            engine = "numpy" if _np is not None else "python"
        if engine == "numpy":
            if _np is None:
                raise RuntimeError(
                    "BatchFaultRandom(engine='numpy') requires numpy; "
                    "install the [batch] extra or use engine='python'"
                )
            self._engine = _NumpyLanes(self.seeds)
        elif engine == "python":
            self._engine = _PythonLanes(self.seeds)
        else:
            raise ValueError(f"unknown BatchFaultRandom engine {engine!r}")
        self.engine = self._engine.name
        self._all_lanes = tuple(range(self.lanes))

    # ------------------------------------------------------------------
    def coin(self, probability: float, lanes: Optional[Sequence[int]] = None) -> List[bool]:
        """Per-lane coins; the FaultRandom edge-case contract applies."""
        return self._engine.coin(probability, lanes)

    def coin_fired(
        self, probability: float, lanes: Optional[Sequence[int]] = None
    ) -> Tuple[int, ...]:
        """The lane indices whose coin fired (the fault models' shape)."""
        return self._engine.coin_fired(probability, lanes)

    def bit_index(
        self, width: int, lanes: Optional[Sequence[int]] = None
    ) -> List[int]:
        """A uniform bit position in ``[0, width)`` per requested lane."""
        return self._engine.bit_index(width, lanes)

    def bits(self, width: int, lanes: Optional[Sequence[int]] = None) -> List[int]:
        """A uniform ``width``-bit pattern per requested lane."""
        return self._engine.bits(width, lanes)

    def uniform(
        self, low: float, high: float, lanes: Optional[Sequence[int]] = None
    ) -> List[float]:
        return self._engine.uniform(low, high, lanes)

    def binomial_hits(
        self, trials: int, probability: float, lanes: Optional[Sequence[int]] = None
    ) -> Dict[int, int]:
        """Per-lane Bernoulli success counts, as a ``{lane: hits > 0}`` map.

        Mirrors :meth:`FaultRandom.binomial_hits` draw for draw: one
        aggregate any-hit coin on every requested lane, then
        ``trials - 1`` coins on (only) the lanes whose aggregate fired.
        """
        if probability <= 0.0 or trials <= 0:
            return {}
        if probability >= 1.0:
            selected = self._all_lanes if lanes is None else lanes
            return {lane: trials for lane in selected}
        any_prob = 1.0 - (1.0 - probability) ** trials
        fired = self._engine.coin_fired(any_prob, lanes)
        if not fired:
            return {}
        hits = {lane: 1 for lane in fired}
        for _ in range(trials - 1):
            for lane in self._engine.coin_fired(probability, fired):
                hits[lane] += 1
        return hits

    def spawn(self, label: str) -> "BatchFaultRandom":
        """Per-lane child sources (the FaultRandom.spawn derivation)."""
        return BatchFaultRandom(
            [_child_seed(seed, label) for seed in self.seeds], engine=self.engine
        )
