"""Deterministic random source for fault injection.

All stochastic behaviour in the simulator flows through one
:class:`FaultRandom` instance owned by the active simulation context, so
a run is exactly reproducible from its seed.  This replaces the paper's
nondeterministic physical faults with a seedable equivalent — the same
code path, made deterministic for testing (see DESIGN.md substitutions).
"""

from __future__ import annotations

import random
import zlib
from typing import Optional

__all__ = ["FaultRandom"]


class FaultRandom:
    """A seedable random source with fault-injection helpers."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._random = random.Random(seed)
        self.seed = seed

    def coin(self, probability: float) -> bool:
        """True with the given probability.

        Probabilities at or below zero never fire; at or above one they
        always fire.  This is the single primitive every fault model
        uses, which keeps the draw count (and thus reproducibility)
        easy to reason about.
        """
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def bit_index(self, width: int) -> int:
        """A uniformly random bit position in ``[0, width)``."""
        return self._random.randrange(width)

    def bits(self, width: int) -> int:
        """A uniformly random ``width``-bit pattern."""
        return self._random.getrandbits(width)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def binomial_hits(self, trials: int, probability: float) -> int:
        """Number of successes in ``trials`` Bernoulli draws.

        Used to decide how many bits of a word flip.  For the tiny
        probabilities in Table 2 this is almost always zero; we sample
        exactly (trials are at most 64) rather than approximating.
        """
        if probability <= 0.0 or trials <= 0:
            return 0
        if probability >= 1.0:
            return trials
        # For small p, short-circuit via one aggregate coin first: the
        # probability that *any* of the trials fires is 1-(1-p)^n.
        any_prob = 1.0 - (1.0 - probability) ** trials
        if not self.coin(any_prob):
            return 0
        hits = 1
        for _ in range(trials - 1):
            if self.coin(probability):
                hits += 1
        return hits

    def spawn(self, label: str) -> "FaultRandom":
        """A child source whose stream is independent of the parent's.

        Each hardware unit (ALU, FPU, SRAM, DRAM) owns its own child so
        that adding draws in one unit does not perturb another unit's
        stream — important for the per-strategy isolation experiments.
        The derivation uses CRC32, not ``hash()``, because Python's
        string hashing is randomised per process and seeds must be
        stable across runs.
        """
        base = self.seed if self.seed is not None else 0
        child_seed = zlib.crc32(f"{base}:{label}".encode("utf-8")) & 0xFFFFFFFF
        return FaultRandom(child_seed)
