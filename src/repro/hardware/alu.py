"""Approximate integer ALU (paper Sections 4.2 and 5.3).

Voltage-scaled integer units experience *timing errors* with the
configured probability; the erroneous output follows the active
:class:`~repro.hardware.config.ErrorMode`:

* ``RANDOM`` — a uniformly random 32-bit pattern (most realistic per the
  paper, and the default used for Figure 5);
* ``SINGLE_BIT_FLIP`` — one random bit of the correct result flips;
* ``LAST_VALUE`` — the unit outputs the previous result it computed.

Approximate integer division by zero returns zero instead of raising
(paper Section 5.2): approximation must never introduce exceptions.

All arithmetic wraps to 32-bit two's complement like the Java ``int``
the paper simulates; the precise path keeps Python's unbounded ints so
that un-instrumented semantics are unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.hardware import bits
from repro.hardware.config import ErrorMode, HardwareConfig
from repro.hardware.lanes import LaneValues, lane_value
from repro.hardware.rng import BatchFaultRandom, FaultRandom

__all__ = ["ApproxALU", "BatchApproxALU", "INT_OPS"]


def _idiv(a: int, b: int) -> int:
    if b == 0:
        return 0  # approximate integer division-by-zero yields zero
    # Java-style truncating division.
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _idiv(a, b) * b


INT_OPS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _idiv,
    "mod": _imod,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "shr": lambda a, b: a >> (b & 31),
}

_COMPARE_OPS: Dict[str, Callable[[int, int], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


class ApproxALU:
    """Simulated integer ALU with approximate operation support.

    ``tracer`` (a :class:`repro.observability.tracer.Tracer`, optional)
    receives one ``alu.timing_error`` event per faulted operation; when
    ``None`` the fault path pays one branch.
    """

    def __init__(self, config: HardwareConfig, rng: FaultRandom, tracer=None) -> None:
        self._config = config
        self._rng = rng
        self._tracer = tracer
        self._last_value = 0
        self.approx_ops = 0
        self.precise_ops = 0
        self.faulted_ops = 0

    # ------------------------------------------------------------------
    def precise_binop(self, op: str, a: int, b: int):
        """A fully precise integer operation (plain Python semantics).

        Precise execution must match un-instrumented Python exactly —
        including floor division/modulo of negatives — so it does not
        share the Java-style truncating helpers of the approximate path.
        """
        self.precise_ops += 1
        if op in _COMPARE_OPS:
            return _COMPARE_OPS[op](a, b)
        if op == "div":
            return a // b
        if op == "mod":
            return a % b
        return INT_OPS[op](a, b)

    def approx_binop(self, op: str, a: int, b: int):
        """An approximate integer operation on 32-bit wrapped operands."""
        self.approx_ops += 1
        a32 = bits.bits_to_int(bits.int_to_bits(int(a)))
        b32 = bits.bits_to_int(bits.int_to_bits(int(b)))
        if op in _COMPARE_OPS:
            return self._maybe_fault_bool(_COMPARE_OPS[op](a32, b32), op)
        raw = INT_OPS[op](a32, b32)
        result = bits.bits_to_int(bits.int_to_bits(raw))
        result = self._maybe_fault(result, op)
        self._last_value = result
        return result

    def approx_unop(self, op: str, a: int) -> int:
        self.approx_ops += 1
        a32 = bits.bits_to_int(bits.int_to_bits(int(a)))
        raw = -a32 if op == "neg" else (abs(a32) if op == "abs" else ~a32)
        result = bits.bits_to_int(bits.int_to_bits(raw))
        result = self._maybe_fault(result, op)
        self._last_value = result
        return result

    # ------------------------------------------------------------------
    def _maybe_fault(self, value: int, op: str = "?") -> int:
        if not self._rng.coin(self._config.timing_error_prob):
            return value
        self.faulted_ops += 1
        mode = self._config.error_mode
        flipped = ()
        if mode is ErrorMode.LAST_VALUE:
            result = self._last_value
        elif mode is ErrorMode.SINGLE_BIT_FLIP:
            position = self._rng.bit_index(bits.INT_BITS)
            result = bits.flip_bit_int(value, position)
            flipped = (position,)
        else:
            result = bits.bits_to_int(self._rng.bits(bits.INT_BITS))
        if self._tracer is not None:
            self._tracer.emit(
                "alu.timing_error",
                f"alu:{op}",
                bits=flipped,
                before=value,
                after=result,
                extra={"mode": mode.name.lower()},
            )
        return result

    def _maybe_fault_bool(self, value: bool, op: str = "?") -> bool:
        if not self._rng.coin(self._config.timing_error_prob):
            return value
        self.faulted_ops += 1
        if self._config.error_mode is ErrorMode.LAST_VALUE:
            result = bool(self._last_value & 1)
        else:
            result = not value
        if self._tracer is not None:
            self._tracer.emit(
                "alu.timing_error",
                f"alu:{op}",
                before=value,
                after=result,
                extra={"mode": self._config.error_mode.name.lower()},
            )
        return result


class BatchApproxALU(ApproxALU):
    """Lane-vectorized integer ALU: one op draws a fault coin per lane.

    Operands may be scalars (lanes still converged) or
    :class:`LaneValues` (diverged by an earlier fault); either way each
    lane computes exactly what its serial run would, and the timing-error
    coin/draw sequence per lane matches :class:`ApproxALU` word for
    word.  ``_last_value`` is stored as scalar-or-LaneValues, read
    per-lane by the LAST_VALUE error mode.
    """

    def __init__(
        self,
        config: HardwareConfig,
        rng: BatchFaultRandom,
        tracers=None,
        lanes: int = 1,
    ) -> None:
        super().__init__(config, rng, tracer=None)
        self._tracers = tracers
        self._lanes = lanes
        self.faulted_ops = [0] * lanes

    # precise_binop is inherited: plain Python semantics work on
    # LaneValues through its per-lane arithmetic dunders.

    def approx_binop(self, op: str, a, b):
        self.approx_ops += 1
        if isinstance(a, LaneValues) or isinstance(b, LaneValues):
            return self._approx_binop_lanes(op, a, b)
        a32 = bits.bits_to_int(bits.int_to_bits(int(a)))
        b32 = bits.bits_to_int(bits.int_to_bits(int(b)))
        if op in _COMPARE_OPS:
            return self._maybe_fault_bool(_COMPARE_OPS[op](a32, b32), op)
        raw = INT_OPS[op](a32, b32)
        result = bits.bits_to_int(bits.int_to_bits(raw))
        result = self._maybe_fault(result, op)
        self._last_value = result
        return result

    def _approx_binop_lanes(self, op: str, a, b):
        n = self._lanes
        a_lanes = a.values if isinstance(a, LaneValues) else [a] * n
        b_lanes = b.values if isinstance(b, LaneValues) else [b] * n
        a32 = [bits.bits_to_int(bits.int_to_bits(int(v))) for v in a_lanes]
        b32 = [bits.bits_to_int(bits.int_to_bits(int(v))) for v in b_lanes]
        if op in _COMPARE_OPS:
            fn = _COMPARE_OPS[op]
            compared = LaneValues([fn(x, y) for x, y in zip(a32, b32)])
            return self._maybe_fault_bool(compared, op)
        fn = INT_OPS[op]
        raw = [fn(x, y) for x, y in zip(a32, b32)]
        result = LaneValues([bits.bits_to_int(bits.int_to_bits(v)) for v in raw])
        result = self._maybe_fault(result, op)
        self._last_value = result
        return result

    def approx_unop(self, op: str, a):
        self.approx_ops += 1
        if isinstance(a, LaneValues):
            lanes32 = [bits.bits_to_int(bits.int_to_bits(int(v))) for v in a.values]
            raw = [
                -v if op == "neg" else (abs(v) if op == "abs" else ~v)
                for v in lanes32
            ]
            result = LaneValues([bits.bits_to_int(bits.int_to_bits(v)) for v in raw])
        else:
            a32 = bits.bits_to_int(bits.int_to_bits(int(a)))
            raw = -a32 if op == "neg" else (abs(a32) if op == "abs" else ~a32)
            result = bits.bits_to_int(bits.int_to_bits(raw))
        result = self._maybe_fault(result, op)
        self._last_value = result
        return result

    # ------------------------------------------------------------------
    def _maybe_fault(self, value, op: str = "?"):
        fired = self._rng.coin_fired(self._config.timing_error_prob)
        if not fired:
            return value
        mode = self._config.error_mode
        if isinstance(value, LaneValues):
            lane_values = list(value.values)
        else:
            lane_values = [value] * self._lanes
        for lane in fired:
            self.faulted_ops[lane] += 1
            before = lane_values[lane]
            flipped = ()
            if mode is ErrorMode.LAST_VALUE:
                result = lane_value(self._last_value, lane)
            elif mode is ErrorMode.SINGLE_BIT_FLIP:
                position = self._rng.bit_index(bits.INT_BITS, (lane,))[0]
                result = bits.flip_bit_int(before, position)
                flipped = (position,)
            else:
                result = bits.bits_to_int(self._rng.bits(bits.INT_BITS, (lane,))[0])
            if self._tracers is not None:
                self._tracers[lane].emit(
                    "alu.timing_error",
                    f"alu:{op}",
                    bits=flipped,
                    before=before,
                    after=result,
                    extra={"mode": mode.name.lower()},
                )
            lane_values[lane] = result
        return LaneValues(lane_values)

    def _maybe_fault_bool(self, value, op: str = "?"):
        fired = self._rng.coin_fired(self._config.timing_error_prob)
        if not fired:
            return value
        last_value_mode = self._config.error_mode is ErrorMode.LAST_VALUE
        if isinstance(value, LaneValues):
            lane_values = list(value.values)
        else:
            lane_values = [value] * self._lanes
        for lane in fired:
            self.faulted_ops[lane] += 1
            before = lane_values[lane]
            if last_value_mode:
                result = bool(lane_value(self._last_value, lane) & 1)
            else:
                result = not before
            if self._tracers is not None:
                self._tracers[lane].emit(
                    "alu.timing_error",
                    f"alu:{op}",
                    before=before,
                    after=result,
                    extra={"mode": self._config.error_mode.name.lower()},
                )
            lane_values[lane] = result
        return LaneValues(lane_values)
