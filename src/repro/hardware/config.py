"""Hardware approximation configurations (paper Table 2).

The paper simulates four approximation strategies at three
aggressiveness levels:

=============================== ========= ========= ==========
Strategy                        Mild      Medium    Aggressive
=============================== ========= ========= ==========
DRAM per-second bit-flip prob.  1e-9      1e-5      1e-3
Memory power saved              17%       22%       24%
SRAM read-upset probability     10^-16.7  10^-7.4   1e-3
SRAM write-failure probability  10^-5.59  10^-4.94  1e-3
SRAM supply power saved         70%       80%       90%
float mantissa bits             16        8         4
double mantissa bits            32        16        8
FP energy saved per operation   32%       78%       85%
Integer timing-error prob.      1e-6      1e-4      1e-2
Integer energy saved per op.    12%       22%       30%
=============================== ========= ========= ==========

(The Medium column is taken from the literature; starred values in the
paper are the authors' educated guesses.  ``double`` mantissas in the
paper's table read 32/16/8; Python floats are doubles, and EnerPy's
``float`` maps to the paper's ``float`` unless the program opts into
double width explicitly.)

A :class:`HardwareConfig` bundles one level of every strategy plus the
functional-unit error mode and the logical-clock rate.  Per-strategy
ablation (paper Section 6.2) is expressed by
:meth:`HardwareConfig.only` which zeroes out all but one mechanism.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

__all__ = [
    "ErrorMode",
    "Level",
    "HardwareConfig",
    "MILD",
    "MEDIUM",
    "AGGRESSIVE",
    "BASELINE",
    "SOFTWARE",
    "config_for_level",
    "STRATEGY_NAMES",
]


class ErrorMode(enum.Enum):
    """Output-error model for voltage-scaled functional units (Sec. 6.2).

    The paper considers three and reports that ``RANDOM`` (the most
    realistic) roughly doubles QoS loss versus the other two (40% vs
    25% under Aggressive).
    """

    RANDOM = "random"
    SINGLE_BIT_FLIP = "bitflip"
    LAST_VALUE = "lastvalue"


class Level(enum.Enum):
    """Aggressiveness level; ``BASELINE`` disables all approximation."""

    BASELINE = "baseline"
    MILD = "mild"
    MEDIUM = "medium"
    AGGRESSIVE = "aggressive"

    @property
    def bar_label(self) -> str:
        """Figure 4's bar labels: B, 1, 2, 3."""
        return {"baseline": "B", "mild": "1", "medium": "2", "aggressive": "3"}[self.value]


#: Strategy identifiers used by the ablation experiments.
STRATEGY_NAMES = ("dram", "sram_read", "sram_write", "float_width", "timing")


@dataclasses.dataclass(frozen=True)
class HardwareConfig:
    """One full approximate-hardware configuration.

    Fault parameters (probabilities, mantissa widths) drive injection;
    the ``*_saving`` fields drive the Section 5.4 energy model.  A field
    set to its no-fault value (probability 0, full mantissa) simply
    disables that mechanism, which is how :data:`BASELINE` and the
    ablation configs are expressed.
    """

    name: str

    # --- DRAM refresh reduction -------------------------------------
    dram_flip_per_second: float
    dram_power_saving: float

    # --- SRAM supply-voltage reduction ------------------------------
    sram_read_upset: float
    sram_write_failure: float
    sram_power_saving: float

    # --- Floating-point width reduction ------------------------------
    float_mantissa_bits: int
    double_mantissa_bits: int
    fp_op_saving: float

    # --- Integer ALU voltage scaling ---------------------------------
    timing_error_prob: float
    int_op_saving: float

    # --- Cross-cutting knobs -----------------------------------------
    error_mode: ErrorMode = ErrorMode.RANDOM
    #: Logical-clock rate: seconds of simulated wall time per simulated
    #: instruction.  The paper's DRAM decay depends on real seconds; our
    #: deterministic clock advances one tick per instruction and this
    #: constant converts ticks to seconds (DESIGN.md substitution 3).
    seconds_per_tick: float = 1e-6
    #: Approximation granularity of the memory system (Section 4.1).
    #: The paper assumes 64-byte lines and notes finer granularity
    #: would raise the proportion of approximate storage; the
    #: line-size ablation bench sweeps this.
    cache_line_bytes: int = 64
    #: Software-substrate mechanism (Section 4): "a runtime system on
    #: top of commodity hardware can also offer approximate execution
    #: features (e.g., lower floating point precision, elision of
    #: memory operations)".  With this probability an approximate
    #: array load is elided and the last value read from the same
    #: array is returned instead.
    load_elision_prob: float = 0.0

    def __post_init__(self) -> None:
        for field_name in (
            "dram_flip_per_second",
            "sram_read_upset",
            "sram_write_failure",
            "timing_error_prob",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be a probability, got {value}")
        for field_name in (
            "dram_power_saving",
            "sram_power_saving",
            "fp_op_saving",
            "int_op_saving",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{field_name} must be in [0, 1), got {value}")
        if not 1 <= self.float_mantissa_bits <= 24:
            raise ValueError("float mantissa bits must be in [1, 24]")
        if not 1 <= self.double_mantissa_bits <= 52:
            raise ValueError("double mantissa bits must be in [1, 52]")
        if self.cache_line_bytes < 24:
            raise ValueError("cache lines must hold at least a header (24 bytes)")
        if not 0.0 <= self.load_elision_prob <= 1.0:
            raise ValueError("load_elision_prob must be a probability")

    # ------------------------------------------------------------------
    @property
    def approximates_anything(self) -> bool:
        return (
            self.dram_flip_per_second > 0
            or self.sram_read_upset > 0
            or self.sram_write_failure > 0
            or self.float_mantissa_bits < 24
            or self.double_mantissa_bits < 52
            or self.timing_error_prob > 0
        )

    def with_error_mode(self, mode: ErrorMode) -> "HardwareConfig":
        return dataclasses.replace(self, error_mode=mode, name=f"{self.name}:{mode.value}")

    def only(self, strategy: str) -> "HardwareConfig":
        """This config with every mechanism except ``strategy`` disabled.

        Energy savings of the disabled mechanisms are zeroed too, so the
        ablation benches report both isolated QoS impact and isolated
        energy contribution.  Valid strategies: ``dram``, ``sram_read``,
        ``sram_write``, ``float_width``, ``timing``.
        """
        if strategy not in STRATEGY_NAMES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGY_NAMES}")
        disabled = dataclasses.asdict(BASELINE)
        keep = {
            "dram": ("dram_flip_per_second", "dram_power_saving"),
            "sram_read": ("sram_read_upset", "sram_power_saving"),
            "sram_write": ("sram_write_failure", "sram_power_saving"),
            "float_width": ("float_mantissa_bits", "double_mantissa_bits", "fp_op_saving"),
            "timing": ("timing_error_prob", "int_op_saving"),
        }[strategy]
        fields = dict(disabled)
        for field_name in keep:
            fields[field_name] = getattr(self, field_name)
        fields["name"] = f"{self.name}:only-{strategy}"
        fields["error_mode"] = self.error_mode
        fields["seconds_per_tick"] = self.seconds_per_tick
        fields["cache_line_bytes"] = self.cache_line_bytes
        fields["load_elision_prob"] = self.load_elision_prob
        return HardwareConfig(**fields)


def _make(name: str, **kwargs) -> HardwareConfig:
    return HardwareConfig(name=name, **kwargs)


BASELINE = _make(
    "baseline",
    dram_flip_per_second=0.0,
    dram_power_saving=0.0,
    sram_read_upset=0.0,
    sram_write_failure=0.0,
    sram_power_saving=0.0,
    float_mantissa_bits=24,
    double_mantissa_bits=52,
    fp_op_saving=0.0,
    timing_error_prob=0.0,
    int_op_saving=0.0,
)

MILD = _make(
    "mild",
    dram_flip_per_second=1e-9,
    dram_power_saving=0.17,
    sram_read_upset=10.0 ** -16.7,
    sram_write_failure=10.0 ** -5.59,
    sram_power_saving=0.70,
    float_mantissa_bits=16,
    double_mantissa_bits=32,
    fp_op_saving=0.32,
    timing_error_prob=1e-6,
    int_op_saving=0.12,
)

MEDIUM = _make(
    "medium",
    dram_flip_per_second=1e-5,
    dram_power_saving=0.22,
    sram_read_upset=10.0 ** -7.4,
    sram_write_failure=10.0 ** -4.94,
    sram_power_saving=0.80,
    float_mantissa_bits=8,
    double_mantissa_bits=16,
    fp_op_saving=0.78,
    timing_error_prob=1e-4,
    int_op_saving=0.22,
)

AGGRESSIVE = _make(
    "aggressive",
    dram_flip_per_second=1e-3,
    dram_power_saving=0.24,
    sram_read_upset=1e-3,
    sram_write_failure=1e-3,
    sram_power_saving=0.90,
    float_mantissa_bits=4,
    double_mantissa_bits=8,
    fp_op_saving=0.85,
    timing_error_prob=1e-2,
    int_op_saving=0.30,
)

#: The software substrate: approximation on commodity hardware.  No
#: voltage scaling or refresh reduction is available; savings come from
#: reduced floating-point precision and elided approximate memory
#: operations.  Savings estimates are the authors' style of educated
#: guess (cf. the starred entries of Table 2).
SOFTWARE = _make(
    "software",
    dram_flip_per_second=0.0,
    dram_power_saving=0.08,      # elided accesses + prefetch slack
    sram_read_upset=0.0,
    sram_write_failure=0.0,
    sram_power_saving=0.0,
    float_mantissa_bits=10,      # software-truncated single precision
    double_mantissa_bits=22,
    fp_op_saving=0.30,
    timing_error_prob=0.0,
    int_op_saving=0.0,
    load_elision_prob=0.02,
)

_LEVELS = {
    Level.BASELINE: BASELINE,
    Level.MILD: MILD,
    Level.MEDIUM: MEDIUM,
    Level.AGGRESSIVE: AGGRESSIVE,
}


def config_for_level(level: Level, error_mode: Optional[ErrorMode] = None) -> HardwareConfig:
    """The canonical Table 2 configuration for an aggressiveness level."""
    config = _LEVELS[level]
    if error_mode is not None and error_mode is not config.error_mode:
        config = config.with_error_mode(error_mode)
    return config
