"""Bit-level value representations shared by all fault models.

Approximate storage faults act on the *bit pattern* of a value, so this
module defines how EnerPy values map onto hardware words:

* ``int`` — 32-bit two's complement (the paper's Java ``int``).  Python
  integers are unbounded; the simulated hardware wraps them to 32 bits
  exactly as a JVM would before faulting individual bits.
* ``float`` — IEEE-754 binary32; ``double`` — binary64.  Python floats
  are doubles, so binary32 round-trips lose precision exactly like a
  real ``float`` register would.
* ``bool`` — one bit.

The helpers here are pure functions; fault *policies* (when to flip)
live in the ALU/FPU/SRAM/DRAM modules.
"""

from __future__ import annotations

import math
import struct

__all__ = [
    "INT_BITS",
    "FLOAT_BITS",
    "DOUBLE_BITS",
    "BOOL_BITS",
    "int_to_bits",
    "bits_to_int",
    "float_to_bits32",
    "bits32_to_float",
    "float_to_bits64",
    "bits64_to_float",
    "flip_bit_int",
    "flip_bit_float",
    "truncate_mantissa",
    "bits_for_kind",
    "value_to_bits",
    "bits_to_value",
    "truncate_mantissa_lanes",
    "truncate_mantissa_array",
    "flip_bit_int_lanes",
    "flip_bit_float_lanes",
    "value_to_bits_lanes",
    "bits_to_value_lanes",
]

try:  # pragma: no cover - both paths pinned by tests/test_bits.py
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

INT_BITS = 32
FLOAT_BITS = 32
DOUBLE_BITS = 64
BOOL_BITS = 1

_INT_MASK = (1 << INT_BITS) - 1
_INT_SIGN = 1 << (INT_BITS - 1)

#: Mantissa widths of the IEEE formats (explicit bits, excluding the
#: hidden leading one).
FLOAT_MANTISSA = 23
DOUBLE_MANTISSA = 52


def int_to_bits(value: int) -> int:
    """A Python int as a 32-bit two's-complement bit pattern."""
    return int(value) & _INT_MASK


def bits_to_int(bits: int) -> int:
    """A 32-bit two's-complement pattern back to a signed Python int."""
    bits &= _INT_MASK
    if bits & _INT_SIGN:
        return bits - (1 << INT_BITS)
    return bits


def float_to_bits32(value: float) -> int:
    """IEEE binary32 bit pattern of a float (rounded to single)."""
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        # Values outside binary32 range saturate to the right infinity,
        # matching hardware conversion behaviour.
        sign = 0x80000000 if math.copysign(1.0, value) < 0 else 0
        return sign | 0x7F800000


def bits32_to_float(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def float_to_bits64(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits64_to_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & 0xFFFFFFFFFFFFFFFF))[0]


def flip_bit_int(value: int, bit: int) -> int:
    """Flip one bit of a 32-bit integer value."""
    return bits_to_int(int_to_bits(value) ^ (1 << (bit % INT_BITS)))


def flip_bit_float(value: float, bit: int, double: bool = False) -> float:
    """Flip one bit of a float's IEEE pattern (binary32 or binary64)."""
    if double:
        return bits64_to_float(float_to_bits64(value) ^ (1 << (bit % DOUBLE_BITS)))
    return bits32_to_float(float_to_bits32(value) ^ (1 << (bit % FLOAT_BITS)))


def truncate_mantissa(value: float, keep_bits: int, double: bool = False) -> float:
    """Zero all but the top ``keep_bits`` mantissa bits (paper Sec. 4.2).

    Width reduction in FP units ignores the low part of the mantissa.
    ``keep_bits`` counts explicit mantissa bits retained; the exponent
    and sign are untouched.  NaN and infinity pass through unchanged
    (their mantissa encodes identity, not magnitude).
    """
    if math.isnan(value) or math.isinf(value) or value == 0.0:
        return value
    mantissa_width = DOUBLE_MANTISSA if double else FLOAT_MANTISSA
    keep = max(0, min(int(keep_bits), mantissa_width))
    drop = mantissa_width - keep
    if drop <= 0:
        if double:
            return value
        return bits32_to_float(float_to_bits32(value))
    # The mantissa occupies the low bits of the IEEE word, so dropping
    # its low ``drop`` bits is a mask on the whole pattern.
    low_mask = (1 << drop) - 1
    if double:
        return bits64_to_float(float_to_bits64(value) & ~low_mask)
    return bits32_to_float(float_to_bits32(value) & ~low_mask)


def bits_for_kind(kind: str) -> int:
    """Word width in bits for an EnerPy value kind."""
    return {
        "int": INT_BITS,
        "float": FLOAT_BITS,
        "double": DOUBLE_BITS,
        "bool": BOOL_BITS,
    }[kind]


def value_to_bits(value, kind: str) -> int:
    """Encode a value of the given kind as a bit pattern."""
    if kind == "int":
        return int_to_bits(value)
    if kind == "float":
        return float_to_bits32(value)
    if kind == "double":
        return float_to_bits64(value)
    if kind == "bool":
        return 1 if value else 0
    raise ValueError(f"unknown value kind {kind!r}")


def bits_to_value(bits: int, kind: str):
    """Decode a bit pattern back to a value of the given kind."""
    if kind == "int":
        return bits_to_int(bits)
    if kind == "float":
        return bits32_to_float(bits)
    if kind == "double":
        return bits64_to_float(bits)
    if kind == "bool":
        return bool(bits & 1)
    raise ValueError(f"unknown value kind {kind!r}")


# ----------------------------------------------------------------------
# Lane-wise variants (batch fault injection)
# ----------------------------------------------------------------------
# Each `*_lanes` helper maps its scalar counterpart over a sequence of
# per-lane values, returning a plain list of Python scalars so downstream
# code stays dtype-free.  With numpy present the map runs on packed
# uint32/uint64 lanes; without it (the `[batch]` extra absent) a scalar
# loop produces the same results, so the two paths are interchangeable —
# tests/test_bits.py pins them bit-for-bit against each other.


def _lanes_f32(values):
    """Pack float64 lanes into binary32 patterns (overflow saturates)."""
    with _np.errstate(over="ignore", invalid="ignore"):
        return _np.asarray(values, dtype=_np.float64).astype(_np.float32)


def _lanes_f64(values_f32):
    """Widen binary32 lanes back to float64 (quietening NaNs silently)."""
    with _np.errstate(invalid="ignore"):
        return values_f32.astype(_np.float64)


def truncate_mantissa_array(values, keep_bits: int, double: bool = False):
    """Array-in/array-out core of :func:`truncate_mantissa_lanes`.

    Requires numpy.  Accepts a float64 ndarray or any sequence; returns
    a float64 ndarray that never aliases mutable caller state unless it
    is bitwise unchanged from the input.  The batch FPU calls this
    directly to keep operand/result vectors in array form across an
    operation instead of round-tripping through Python lists.
    """
    arr = values if isinstance(values, _np.ndarray) else _np.asarray(values, dtype=_np.float64)
    if arr.dtype != _np.float64:
        arr = arr.astype(_np.float64)
    mantissa_width = DOUBLE_MANTISSA if double else FLOAT_MANTISSA
    keep = max(0, min(int(keep_bits), mantissa_width))
    drop = mantissa_width - keep
    if double:
        if drop <= 0:
            return arr
        mask = _np.uint64(~((1 << drop) - 1) & 0xFFFFFFFFFFFFFFFF)
        out = (arr.view(_np.uint64) & mask).view(_np.float64)
    else:
        # One errstate entry covering both casts (this is a hot path;
        # entering errstate twice via the _lanes helpers measurably
        # slows the batch FPU).
        with _np.errstate(over="ignore", invalid="ignore"):
            patterns = arr.astype(_np.float32).view(_np.uint32)
            if drop > 0:
                patterns &= _np.uint32(~((1 << drop) - 1) & 0xFFFFFFFF)
            out = patterns.view(_np.float32).astype(_np.float64)
    # NaN, infinity and zero pass through *untouched* (original float64
    # pattern), exactly like the scalar helper.
    passthrough = ~_np.isfinite(arr) | (arr == 0.0)
    if passthrough.any():
        out[passthrough] = arr[passthrough]
    return out


def truncate_mantissa_lanes(values, keep_bits: int, double: bool = False) -> list:
    """:func:`truncate_mantissa` over a vector of per-lane values."""
    if _np is None:
        return [truncate_mantissa(value, keep_bits, double) for value in values]
    return truncate_mantissa_array(values, keep_bits, double).tolist()


def flip_bit_int_lanes(values, bit_positions) -> list:
    """:func:`flip_bit_int` with a per-lane bit position per value."""
    if _np is None:
        return [flip_bit_int(v, b) for v, b in zip(values, bit_positions)]
    patterns = (_np.asarray(values, dtype=_np.int64) & _INT_MASK).astype(_np.uint32)
    shifts = (_np.asarray(bit_positions, dtype=_np.int64) % INT_BITS).astype(_np.uint32)
    flipped = patterns ^ (_np.uint32(1) << shifts)
    return flipped.view(_np.int32).astype(_np.int64).tolist()


def flip_bit_float_lanes(values, bit_positions, double: bool = False) -> list:
    """:func:`flip_bit_float` with a per-lane bit position per value."""
    if _np is None:
        return [flip_bit_float(v, b, double) for v, b in zip(values, bit_positions)]
    if double:
        patterns = _np.asarray(values, dtype=_np.float64).view(_np.uint64)
        shifts = (_np.asarray(bit_positions, dtype=_np.int64) % DOUBLE_BITS).astype(
            _np.uint64
        )
        return (patterns ^ (_np.uint64(1) << shifts)).view(_np.float64).tolist()
    patterns = _lanes_f32(values).view(_np.uint32)
    shifts = (_np.asarray(bit_positions, dtype=_np.int64) % FLOAT_BITS).astype(
        _np.uint32
    )
    flipped = patterns ^ (_np.uint32(1) << shifts)
    return _lanes_f64(flipped.view(_np.float32)).tolist()


def value_to_bits_lanes(values, kind: str) -> list:
    """:func:`value_to_bits` over a vector of per-lane values."""
    if _np is None or kind == "bool":
        return [value_to_bits(value, kind) for value in values]
    if kind == "int":
        return (
            (_np.asarray(values, dtype=_np.int64) & _INT_MASK)
            .astype(_np.uint32)
            .tolist()
        )
    if kind == "float":
        return _lanes_f32(values).view(_np.uint32).tolist()
    if kind == "double":
        return _np.asarray(values, dtype=_np.float64).view(_np.uint64).tolist()
    raise ValueError(f"unknown value kind {kind!r}")


def bits_to_value_lanes(patterns, kind: str) -> list:
    """:func:`bits_to_value` over a vector of per-lane bit patterns."""
    if _np is None or kind == "bool":
        return [bits_to_value(pattern, kind) for pattern in patterns]
    if kind == "int":
        return (
            (_np.asarray(patterns, dtype=_np.uint64) & _np.uint64(_INT_MASK))
            .astype(_np.uint32)
            .view(_np.int32)
            .astype(_np.int64)
            .tolist()
        )
    if kind == "float":
        packed = (
            (_np.asarray(patterns, dtype=_np.uint64) & _np.uint64(0xFFFFFFFF))
            .astype(_np.uint32)
            .view(_np.float32)
        )
        return _lanes_f64(packed).tolist()
    if kind == "double":
        return _np.asarray(patterns, dtype=_np.uint64).view(_np.float64).tolist()
    raise ValueError(f"unknown value kind {kind!r}")
