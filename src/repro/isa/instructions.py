"""The approximation-aware instruction set (paper Section 4.1).

The paper proposes ISA extensions where "approximate and precise
registers are distinguished based on the register number" and
"approximate data stored in memory is distinguished from precise data
based on address".  This module defines a small register machine with
exactly that structure:

* 16 precise integer/float registers ``r0..r15`` and 16 approximate
  registers ``a0..a15``;
* precise ALU/FPU instructions (``ADD``, ``FMUL``, ...) and their
  approximate counterparts (``ADD.A``, ``FMUL.A``, ...) — an
  approximate instruction is *a hint*: a substrate that supports no
  approximation executes it precisely and saves nothing (the paper's
  forward-compatibility argument);
* loads/stores whose approximation is decided by the *address* (the
  assembler's ``.approx`` region directive marks memory ranges);
* branches, whose condition register must be precise (the control-flow
  rule of Section 2.4, enforced by the static validator).

The binary layout is deliberately simple — this is an architectural
model, not a performance ISA.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

__all__ = [
    "Register",
    "Opcode",
    "Instruction",
    "NUM_REGISTERS_PER_CLASS",
    "INT_ALU_OPS",
    "FP_ALU_OPS",
]

NUM_REGISTERS_PER_CLASS = 16


@dataclasses.dataclass(frozen=True)
class Register:
    """A register name: class (precise ``r`` / approximate ``a``) + index."""

    approximate: bool
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGISTERS_PER_CLASS:
            raise ValueError(f"register index {self.index} out of range")

    @classmethod
    def parse(cls, text: str) -> "Register":
        text = text.strip().lower()
        if len(text) < 2 or text[0] not in "ra":
            raise ValueError(f"bad register name {text!r}")
        return cls(approximate=text[0] == "a", index=int(text[1:]))

    def __str__(self) -> str:
        prefix = "a" if self.approximate else "r"
        return f"{prefix}{self.index}"


class Opcode(enum.Enum):
    """Instruction opcodes; ``*_A`` are the approximate variants."""

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    ADD_A = "add.a"
    SUB_A = "sub.a"
    MUL_A = "mul.a"
    DIV_A = "div.a"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FADD_A = "fadd.a"
    FSUB_A = "fsub.a"
    FMUL_A = "fmul.a"
    FDIV_A = "fdiv.a"
    # Comparisons (result 0/1 in rd).
    SLT = "slt"
    SEQ = "seq"
    SLT_A = "slt.a"
    SEQ_A = "seq.a"
    # Data movement.
    LI = "li"  # load immediate
    MOV = "mov"  # register move within a class, or precise->approx
    MOV_E = "mov.e"  # endorse: approximate->precise move
    LD = "ld"  # load word from memory
    ST = "st"  # store word to memory
    FLD = "fld"
    FST = "fst"
    # Control.
    BEQZ = "beqz"
    BNEZ = "bnez"
    JMP = "jmp"
    OUT = "out"  # append register to the output stream (precise only)
    HALT = "halt"

    @property
    def is_approximate(self) -> bool:
        return self.value.endswith(".a")

    @property
    def is_fp(self) -> bool:
        return self.value.lstrip("f") != self.value and self.value.startswith("f")

    @property
    def base_op(self) -> str:
        """The ALU/FPU operation name for arithmetic opcodes."""
        name = self.value.split(".")[0]
        if name.startswith("f"):
            name = name[1:]
        return {"slt": "lt", "seq": "eq"}.get(name, name)


#: Integer arithmetic/compare opcodes (precise, approximate).
INT_ALU_OPS = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.ADD_A,
    Opcode.SUB_A,
    Opcode.MUL_A,
    Opcode.DIV_A,
    Opcode.SLT,
    Opcode.SEQ,
    Opcode.SLT_A,
    Opcode.SEQ_A,
}

#: Floating-point arithmetic opcodes.
FP_ALU_OPS = {
    Opcode.FADD,
    Opcode.FSUB,
    Opcode.FMUL,
    Opcode.FDIV,
    Opcode.FADD_A,
    Opcode.FSUB_A,
    Opcode.FMUL_A,
    Opcode.FDIV_A,
}


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Operand use by opcode:

    * arithmetic — ``rd, rs1, rs2``
    * ``LI`` — ``rd, imm``
    * ``MOV``/``MOV.E`` — ``rd, rs1``
    * ``LD``/``FLD`` — ``rd, rs1 (base), imm (offset)``
    * ``ST``/``FST`` — ``rs1 (value), rs2 (base), imm (offset)``
    * branches — ``rs1, label``
    * ``JMP`` — ``label``
    * ``OUT`` — ``rs1``
    """

    opcode: Opcode
    rd: Optional[Register] = None
    rs1: Optional[Register] = None
    rs2: Optional[Register] = None
    imm: Optional[float] = None
    label: Optional[str] = None
    #: Source line, for diagnostics only — not part of equality, so an
    #: assemble/disassemble round trip compares equal.
    line: int = dataclasses.field(default=0, compare=False)

    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands = []
        for reg in (self.rd, self.rs1, self.rs2):
            if reg is not None:
                operands.append(str(reg))
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.label is not None:
            operands.append(self.label)
        return parts[0] + (" " + ", ".join(operands) if operands else "")
