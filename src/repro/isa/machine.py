"""The approximation-aware machine: validator + executor.

The **validator** is the ISA-level shadow of the EnerJ type system:

* branch/``OUT`` registers must be precise (the control-flow and output
  rules of Section 2.4);
* an approximate register may flow into a precise one only through
  ``MOV.E`` (the ISA endorsement);
* approximate arithmetic (``*.A``) must target an approximate register
  (otherwise the hint silently laundered approximation into precise
  state);
* memory addressing registers must be precise (array-index rule).

The **executor** reuses the exact fault models of the EnerPy simulator:
approximate registers suffer SRAM read upsets / write failures,
approximate memory regions suffer DRAM refresh decay, ``*.A``
arithmetic goes through the voltage-scaled ALU / reduced-mantissa FPU,
and every instruction advances the logical clock — so ISA programs and
instrumented EnerPy programs are measured on the same substrate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.errors import ReproError, SimulationError
from repro.hardware.alu import ApproxALU
from repro.hardware.clock import LogicalClock
from repro.hardware.config import BASELINE, HardwareConfig
from repro.hardware.dram import ApproxDRAM
from repro.hardware.fpu import ApproxFPU
from repro.hardware.rng import FaultRandom
from repro.hardware.sram import ApproxSRAM
from repro.isa.assembler import AssembledProgram
from repro.isa.instructions import FP_ALU_OPS, INT_ALU_OPS, Instruction, Opcode, Register

__all__ = ["ValidationError", "validate", "Machine", "MachineResult"]

DEFAULT_MAX_STEPS = 1_000_000


class ValidationError(ReproError):
    """A static isolation violation in an ISA program."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


def validate(program: AssembledProgram) -> None:
    """Statically check the isolation rules of the ISA."""
    for instruction in program.instructions:
        op = instruction.opcode
        line = instruction.line

        if op in (Opcode.BEQZ, Opcode.BNEZ) and instruction.rs1.approximate:
            raise ValidationError(
                "branch condition must be a precise register "
                "(endorse with mov.e first)",
                line,
            )
        if op is Opcode.OUT and instruction.rs1.approximate:
            raise ValidationError(
                "out requires a precise register (program output is precise state)",
                line,
            )
        if op in INT_ALU_OPS or op in FP_ALU_OPS:
            if op.is_approximate and not instruction.rd.approximate:
                raise ValidationError(
                    f"{op.value} must target an approximate register", line
                )
            if not op.is_approximate:
                for source in (instruction.rs1, instruction.rs2):
                    if source is not None and source.approximate:
                        raise ValidationError(
                            f"{op.value} reads approximate register {source}; "
                            "use the .a variant or mov.e",
                            line,
                        )
                if instruction.rd.approximate:
                    # Precise op into approximate register: allowed
                    # (precise-to-approximate subtyping).
                    pass
        if op is Opcode.MOV:
            if instruction.rs1.approximate and not instruction.rd.approximate:
                raise ValidationError(
                    "mov from approximate to precise register; use mov.e",
                    line,
                )
        if op in (Opcode.LD, Opcode.FLD, Opcode.ST, Opcode.FST):
            base = instruction.rs2 if op in (Opcode.ST, Opcode.FST) else instruction.rs1
            if base.approximate:
                raise ValidationError(
                    "memory addressing requires a precise base register", line
                )
        if op in (Opcode.ST, Opcode.FST):
            # Stores to precise memory from approximate registers are an
            # approximate-to-precise flow; they are checked dynamically
            # because the address is data-dependent, but statically we
            # can reject them when the offset lands in no approximate
            # region *and* the base is the zero register (constant
            # address).
            if (
                instruction.rs1.approximate
                and instruction.rs2.index == 0
                and not instruction.rs2.approximate
                and not program.address_is_approx(int(instruction.imm or 0))
            ):
                raise ValidationError(
                    "store of an approximate register to precise memory", line
                )


@dataclasses.dataclass
class MachineResult:
    """Outcome of one execution."""

    output: List[float]
    steps: int
    int_ops_approx: int
    int_ops_precise: int
    fp_ops_approx: int
    fp_ops_precise: int
    faults: int


class Machine:
    """Executes validated programs on the simulated hardware."""

    def __init__(self, config: HardwareConfig = BASELINE, seed: int = 0) -> None:
        self.config = config
        root = FaultRandom(seed)
        self.clock = LogicalClock(config.seconds_per_tick)
        self.alu = ApproxALU(config, root.spawn("isa-alu"))
        self.fpu = ApproxFPU(config, root.spawn("isa-fpu"))
        self.sram = ApproxSRAM(config, root.spawn("isa-sram"))
        self.dram = ApproxDRAM(config, root.spawn("isa-dram"), self.clock)
        self._precise_regs: List[float] = [0] * 16
        self._approx_regs: List[float] = [0] * 16
        self._memory: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _read_reg(self, register: Register, fp: bool) -> float:
        if register.index == 0:
            return 0.0 if fp else 0
        bank = self._approx_regs if register.approximate else self._precise_regs
        value = bank[register.index]
        kind = "float" if fp else "int"
        return self.sram.read(value, kind, register.approximate)

    def _write_reg(self, register: Register, value, fp: bool) -> None:
        if register.index == 0:
            return  # hard zero
        kind = "float" if fp else "int"
        value = self.sram.write(value, kind, register.approximate)
        bank = self._approx_regs if register.approximate else self._precise_regs
        bank[register.index] = value

    # ------------------------------------------------------------------
    def run(
        self,
        program: AssembledProgram,
        max_steps: int = DEFAULT_MAX_STEPS,
        check: bool = True,
    ) -> MachineResult:
        if check:
            validate(program)
        for address, value in program.memory_init.items():
            self._memory[address] = value

        output: List[float] = []
        pc = 0
        steps = 0
        instructions = program.instructions

        while 0 <= pc < len(instructions):
            if steps >= max_steps:
                raise SimulationError("ISA program exceeded the step limit")
            instruction = instructions[pc]
            op = instruction.opcode
            self.clock.advance()
            steps += 1
            pc += 1

            if op is Opcode.HALT:
                break
            if op is Opcode.LI:
                fp = isinstance(instruction.imm, float)
                self._write_reg(instruction.rd, instruction.imm, fp)
            elif op in (Opcode.MOV, Opcode.MOV_E):
                value = self._read_reg(instruction.rs1, fp=False)
                self._write_reg(instruction.rd, value, fp=isinstance(value, float))
            elif op in INT_ALU_OPS:
                left = self._read_reg(instruction.rs1, fp=False)
                right = self._read_reg(instruction.rs2, fp=False)
                if op.is_approximate:
                    result = self.alu.approx_binop(op.base_op, int(left), int(right))
                else:
                    result = self.alu.precise_binop(op.base_op, int(left), int(right))
                if isinstance(result, bool):
                    result = 1 if result else 0
                self._write_reg(instruction.rd, result, fp=False)
            elif op in FP_ALU_OPS:
                left = self._read_reg(instruction.rs1, fp=True)
                right = self._read_reg(instruction.rs2, fp=True)
                if op.is_approximate:
                    result = self.fpu.approx_binop(op.base_op, float(left), float(right))
                else:
                    result = self.fpu.precise_binop(op.base_op, float(left), float(right))
                self._write_reg(instruction.rd, result, fp=True)
            elif op in (Opcode.LD, Opcode.FLD):
                address = int(self._read_reg(instruction.rs1, fp=False)) + int(instruction.imm)
                fp = op is Opcode.FLD
                raw = self._memory.get(address, 0.0 if fp else 0)
                approx = program.address_is_approx(address)
                value = self.dram.read(("isa", address), raw, "float" if fp else "int", approx)
                if value != raw:
                    self._memory[address] = value  # sticky decay
                self._write_reg(instruction.rd, value, fp)
            elif op in (Opcode.ST, Opcode.FST):
                address = int(self._read_reg(instruction.rs2, fp=False)) + int(instruction.imm)
                fp = op is Opcode.FST
                value = self._read_reg(instruction.rs1, fp)
                approx = program.address_is_approx(address)
                value = self.dram.write(("isa", address), value, "float" if fp else "int", approx)
                self._memory[address] = value
            elif op is Opcode.BEQZ:
                if self._read_reg(instruction.rs1, fp=False) == 0:
                    pc = program.labels[instruction.label]
            elif op is Opcode.BNEZ:
                if self._read_reg(instruction.rs1, fp=False) != 0:
                    pc = program.labels[instruction.label]
            elif op is Opcode.JMP:
                pc = program.labels[instruction.label]
            elif op is Opcode.OUT:
                output.append(self._read_reg(instruction.rs1, fp=False))
            else:  # pragma: no cover - exhaustive over Opcode
                raise SimulationError(f"unimplemented opcode {op}")

        return MachineResult(
            output=output,
            steps=steps,
            int_ops_approx=self.alu.approx_ops,
            int_ops_precise=self.alu.precise_ops,
            fp_ops_approx=self.fpu.approx_ops,
            fp_ops_precise=self.fpu.precise_ops,
            faults=self.alu.faulted_ops
            + self.fpu.faulted_ops
            + self.sram.read_upsets
            + self.sram.write_failures
            + self.dram.decayed_bits,
        )
