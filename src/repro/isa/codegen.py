"""Code generation from FEnerJ expressions to the approximation-aware ISA.

EnerJ's promise is that "the system automatically maps approximate
variables to low-power storage [and] uses low-power operations": the
qualifier on an expression decides which *instructions* and *registers*
the compiler emits.  This module demonstrates that pathway end to end
for the arithmetic fragment of FEnerJ: a typed expression compiles to
ISA code where approximate-typed subexpressions live in ``a`` registers
and use ``*.A`` instructions, precise ones in ``r`` registers with
precise instructions, and conditions are compiled from precise
registers only — so generated code passes the ISA validator by
construction.

Supported expressions: int/float literals, binary arithmetic,
comparisons, conditionals, sequences, and ``endorse`` (compiled to
``MOV.E``).  Variables and the heap are out of scope — the point is the
qualifier-directed instruction selection, not a full backend.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.qualifiers import APPROX, PRECISE
from repro.errors import ReproError
from repro.fenerj.syntax import (
    BinOp,
    Endorse,
    Expr,
    FloatLit,
    If,
    IntLit,
    Seq,
)

__all__ = ["CodegenError", "compile_expression"]


class CodegenError(ReproError):
    """Expression outside the compilable FEnerJ fragment."""


_OPCODE_BY_OP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "<": "slt",
    "==": "seq",
}


@dataclasses.dataclass
class _Context:
    lines: List[str] = dataclasses.field(default_factory=list)
    next_precise: int = 1
    next_approx: int = 1
    next_label: int = 0

    def alloc(self, approximate: bool) -> str:
        if approximate:
            if self.next_approx >= 16:
                raise CodegenError("out of approximate registers")
            name = f"a{self.next_approx}"
            self.next_approx += 1
        else:
            if self.next_precise >= 16:
                raise CodegenError("out of precise registers")
            name = f"r{self.next_precise}"
            self.next_precise += 1
        return name

    def label(self, stem: str) -> str:
        self.next_label += 1
        return f"{stem}{self.next_label}"

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, name: str) -> None:
        self.lines.append(f"{name}:")


def _is_float(expr: Expr) -> bool:
    """Whether an expression is float-kinded (literal-structural check)."""
    if isinstance(expr, FloatLit):
        return True
    if isinstance(expr, IntLit):
        return False
    if isinstance(expr, BinOp):
        if expr.op in ("<", "==", "!=", "<=", ">", ">="):
            return False
        return _is_float(expr.left) or _is_float(expr.right)
    if isinstance(expr, Endorse):
        return _is_float(expr.expr)
    if isinstance(expr, If):
        return _is_float(expr.then) or _is_float(expr.orelse)
    if isinstance(expr, Seq):
        return _is_float(expr.second)
    return False


def _is_approx(expr: Expr) -> bool:
    """Whether an expression's qualifier is approximate.

    Literals are precise; approximation enters through explicit casts,
    which the arithmetic fragment spells as ``(approx int) e`` — the
    parser produces :class:`~repro.fenerj.syntax.Cast`; since casts are
    the only qualifier source here, we import lazily to avoid a cycle.
    """
    from repro.fenerj.syntax import Cast

    if isinstance(expr, Cast):
        return expr.type.qualifier is APPROX or _is_approx(expr.expr)
    if isinstance(expr, Endorse):
        return False
    if isinstance(expr, BinOp):
        return _is_approx(expr.left) or _is_approx(expr.right)
    if isinstance(expr, If):
        return _is_approx(expr.then) or _is_approx(expr.orelse)
    if isinstance(expr, Seq):
        return _is_approx(expr.second)
    return False


def _compile(expr: Expr, ctx: _Context) -> Tuple[str, bool, bool]:
    """Compile; returns (register, is_float, is_approx)."""
    from repro.fenerj.syntax import Cast

    if isinstance(expr, IntLit):
        reg = ctx.alloc(False)
        ctx.emit(f"li {reg}, {expr.value}")
        return reg, False, False
    if isinstance(expr, FloatLit):
        reg = ctx.alloc(False)
        value = expr.value if "." in repr(expr.value) else float(expr.value)
        ctx.emit(f"li {reg}, {value!r}")
        return reg, True, False

    if isinstance(expr, Cast):
        reg, fp, approx = _compile(expr.expr, ctx)
        if expr.type.qualifier is APPROX and not approx:
            # Precise -> approximate: move into an approximate register.
            target = ctx.alloc(True)
            ctx.emit(f"mov {target}, {reg}")
            return target, fp, True
        return reg, fp, approx

    if isinstance(expr, Endorse):
        reg, fp, approx = _compile(expr.expr, ctx)
        if approx:
            target = ctx.alloc(False)
            ctx.emit(f"mov.e {target}, {reg}")
            return target, fp, False
        return reg, fp, False

    if isinstance(expr, BinOp):
        if expr.op not in _OPCODE_BY_OP:
            raise CodegenError(f"operator {expr.op} not in the compiled fragment")
        left_reg, left_fp, left_approx = _compile(expr.left, ctx)
        right_reg, right_fp, right_approx = _compile(expr.right, ctx)
        fp = (left_fp or right_fp) and expr.op not in ("<", "==")
        approx = left_approx or right_approx
        mnemonic = _OPCODE_BY_OP[expr.op]
        if fp:
            mnemonic = "f" + mnemonic
        if approx:
            mnemonic += ".a"
        target = ctx.alloc(approx)
        ctx.emit(f"{mnemonic} {target}, {left_reg}, {right_reg}")
        return target, fp, approx

    if isinstance(expr, If):
        cond_reg, _fp, cond_approx = _compile(expr.cond, ctx)
        if cond_approx:
            raise CodegenError(
                "approximate condition cannot be compiled; endorse it first"
            )
        fp = _is_float(expr)
        approx = _is_approx(expr)
        result = ctx.alloc(approx)
        else_label = ctx.label("else")
        end_label = ctx.label("end")
        ctx.emit(f"beqz {cond_reg}, {else_label}")
        then_reg, _t_fp, _t_approx = _compile(expr.then, ctx)
        ctx.emit(f"mov {result}, {then_reg}")
        ctx.emit(f"jmp {end_label}")
        ctx.emit_label(else_label)
        else_reg, _e_fp, _e_approx = _compile(expr.orelse, ctx)
        ctx.emit(f"mov {result}, {else_reg}")
        ctx.emit_label(end_label)
        return result, fp, approx

    if isinstance(expr, Seq):
        _compile(expr.first, ctx)
        return _compile(expr.second, ctx)

    raise CodegenError(f"{type(expr).__name__} not in the compiled fragment")


def compile_expression(expr: Expr) -> str:
    """Compile an FEnerJ expression to an ISA program ending in OUT/HALT.

    Approximate results are endorsed at the boundary (output is precise
    state), matching the ``OUT``-requires-precise validator rule.
    """
    ctx = _Context()
    reg, _fp, approx = _compile(expr, ctx)
    if approx:
        final = ctx.alloc(False)
        ctx.emit(f"mov.e {final}, {reg}")
        reg = final
    ctx.emit(f"out {reg}")
    ctx.emit("halt")
    return "\n".join(ctx.lines) + "\n"
