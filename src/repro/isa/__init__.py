"""The approximation-aware ISA (paper Section 4.1), as a real artifact.

Assembler, static validator (the ISA-level shadow of the type system's
isolation rules), an executor wired to the same fault models as the
EnerPy simulator, and a qualifier-directed code generator from FEnerJ
expressions.
"""

from repro.isa.assembler import AssembledProgram, AssemblyError, assemble, disassemble
from repro.isa.codegen import CodegenError, compile_expression
from repro.isa.instructions import Instruction, Opcode, Register
from repro.isa.machine import Machine, MachineResult, ValidationError, validate

__all__ = [
    "assemble",
    "disassemble",
    "AssembledProgram",
    "AssemblyError",
    "Instruction",
    "Opcode",
    "Register",
    "Machine",
    "MachineResult",
    "validate",
    "ValidationError",
    "compile_expression",
    "CodegenError",
]
