"""Assembler for the approximation-aware ISA.

Syntax::

    ; comment
    .approx 100 50          ; mark memory [100, 150) as approximate
    .word 100 3             ; initialise memory[100] = 3
    loop:                   ; label
        li   r1, 10
        li   a2, 0.5        ; approximate register
        fadd.a a3, a2, a2
        mov.e r2, a3        ; endorse: approximate -> precise
        st   r1, r0, 100    ; memory[r0 + 100] = r1
        beqz r1, done
        jmp  loop
    done:
        out  r2
        halt

Registers ``r0..r15`` are precise, ``a0..a15`` approximate; ``r0`` and
``a0`` read as zero and ignore writes (RISC-style hard zero).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.isa.instructions import Instruction, Opcode, Register

__all__ = ["AssemblyError", "AssembledProgram", "assemble"]


class AssemblyError(ReproError):
    """A syntax or reference error in an assembly program."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclasses.dataclass
class AssembledProgram:
    """Instructions plus memory initialisation and approximation map."""

    instructions: List[Instruction]
    labels: Dict[str, int]
    #: address -> initial value.
    memory_init: Dict[int, float]
    #: (start, length) approximate memory regions.
    approx_regions: List[Tuple[int, int]]

    def address_is_approx(self, address: int) -> bool:
        return any(start <= address < start + length for start, length in self.approx_regions)


_OPCODES = {op.value: op for op in Opcode}

#: opcode -> operand shape: R=register, I=immediate, L=label.
_SHAPES: Dict[Opcode, str] = {}
for _op in Opcode:
    if _op in (Opcode.HALT,):
        _SHAPES[_op] = ""
    elif _op is Opcode.JMP:
        _SHAPES[_op] = "L"
    elif _op in (Opcode.BEQZ, Opcode.BNEZ):
        _SHAPES[_op] = "RL"
    elif _op is Opcode.LI:
        _SHAPES[_op] = "RI"
    elif _op in (Opcode.MOV, Opcode.MOV_E):
        _SHAPES[_op] = "RR"
    elif _op in (Opcode.LD, Opcode.FLD):
        _SHAPES[_op] = "RRI"
    elif _op in (Opcode.ST, Opcode.FST):
        _SHAPES[_op] = "RRI"
    elif _op is Opcode.OUT:
        _SHAPES[_op] = "R"
    else:
        _SHAPES[_op] = "RRR"


def _parse_number(text: str, line: int) -> float:
    try:
        if "." in text or "e" in text.lower():
            return float(text)
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"bad number {text!r}", line) from None


def assemble(source: str) -> AssembledProgram:
    """Assemble source text; raises :class:`AssemblyError` on problems."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    memory_init: Dict[int, float] = {}
    approx_regions: List[Tuple[int, int]] = []

    for line_number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].strip()
        if not text:
            continue

        # Labels (possibly followed by an instruction on the same line).
        while ":" in text.split()[0] if text else False:
            label, _, rest = text.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(f"bad label {label!r}", line_number)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line_number)
            labels[label] = len(instructions)
            text = rest.strip()
        if not text:
            continue

        # Directives.
        if text.startswith("."):
            parts = text.split()
            if parts[0] == ".approx" and len(parts) == 3:
                start = int(_parse_number(parts[1], line_number))
                length = int(_parse_number(parts[2], line_number))
                approx_regions.append((start, length))
            elif parts[0] == ".word" and len(parts) == 3:
                address = int(_parse_number(parts[1], line_number))
                memory_init[address] = _parse_number(parts[2], line_number)
            else:
                raise AssemblyError(f"unknown directive {parts[0]!r}", line_number)
            continue

        # Instructions.
        mnemonic, _, operand_text = text.partition(" ")
        opcode = _OPCODES.get(mnemonic.lower())
        if opcode is None:
            raise AssemblyError(f"unknown instruction {mnemonic!r}", line_number)
        operands = [o.strip() for o in operand_text.split(",") if o.strip()]
        shape = _SHAPES[opcode]
        if len(operands) != len(shape):
            raise AssemblyError(
                f"{opcode.value} expects {len(shape)} operand(s), got {len(operands)}",
                line_number,
            )

        registers: List[Optional[Register]] = []
        imm: Optional[float] = None
        label: Optional[str] = None
        for kind, operand in zip(shape, operands):
            if kind == "R":
                try:
                    registers.append(Register.parse(operand))
                except ValueError as error:
                    raise AssemblyError(str(error), line_number) from None
            elif kind == "I":
                imm = _parse_number(operand, line_number)
            else:  # label
                label = operand

        rd = rs1 = rs2 = None
        if shape.startswith("RRR"):
            rd, rs1, rs2 = registers
        elif opcode in (Opcode.ST, Opcode.FST):
            rs1, rs2 = registers  # value, base
        elif shape.startswith("RR"):
            rd, rs1 = registers
        elif shape.startswith("R"):
            if opcode in (Opcode.BEQZ, Opcode.BNEZ, Opcode.OUT):
                rs1 = registers[0]
            else:
                rd = registers[0]

        instructions.append(
            Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm, label=label, line=line_number)
        )

    # Resolve label references.
    for instruction in instructions:
        if instruction.label is not None and instruction.label not in labels:
            raise AssemblyError(
                f"undefined label {instruction.label!r}", instruction.line
            )

    return AssembledProgram(instructions, labels, memory_init, approx_regions)


def disassemble(program: AssembledProgram) -> str:
    """Concrete syntax for an assembled program (re-assembleable).

    Directives come first, then instructions with labels re-attached at
    their target indices.  ``assemble(disassemble(p))`` reproduces the
    instruction stream, label map, memory image, and region list.
    """
    lines: List[str] = []
    for start, length in program.approx_regions:
        lines.append(f".approx {start} {length}")
    for address in sorted(program.memory_init):
        lines.append(f".word {address} {program.memory_init[address]}")

    labels_at: Dict[int, List[str]] = {}
    for label, index in program.labels.items():
        labels_at.setdefault(index, []).append(label)

    for index, instruction in enumerate(program.instructions):
        for label in sorted(labels_at.get(index, ())):
            lines.append(f"{label}:")
        lines.append(f"    {instruction}")
    # Labels that point one past the last instruction (a bare trailing
    # label is legal assembly: it resolves to the end of the stream).
    for label in sorted(labels_at.get(len(program.instructions), ())):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"
