"""Whole-program approximation-flow analysis (``repro lint`` / ``repro analyze``).

Static analyses layered on top of the checker's facts:

* :mod:`repro.analysis.flowgraph` — the interprocedural
  approximation-flow graph every analysis consumes;
* :mod:`repro.analysis.reliability` — static per-op corruption bounds
  composed from the hardware fault model, plus the dynamic soundness
  check against traced runs;
* :mod:`repro.analysis.lints` — the endorsement audit (AF001–AF006);
* :mod:`repro.analysis.inference` — checker-validated ``@Approx``
  relaxation suggestions;
* :mod:`repro.analysis.profile` — measured DRAM residency spans from
  PR-2 traces (logical-cycle container lifetimes);
* :mod:`repro.analysis.costmodel` — static per-node energy and fault
  exposure for placement search;
* :mod:`repro.analysis.placement` — the profile-guided data-placement
  optimizer with checker-validated annotation patches;
* :mod:`repro.analysis.report` — text/JSON rendering shared by the CLI.

See ANALYSIS.md for the model and the lint catalog.
"""

from repro.analysis.costmodel import NodeCost, PlacementCostModel
from repro.analysis.flowgraph import FlowGraph, FlowNode, build_flow_graph
from repro.analysis.inference import Suggestion, infer_relaxations
from repro.analysis.lints import Finding, LINT_CODES, run_lints
from repro.analysis.placement import (
    PlacementAnalysis,
    PlacementDecision,
    PlacementPlan,
    PlacementVerification,
    placement_mechanisms,
)
from repro.analysis.profile import ResidencyProfile, profile_app
from repro.analysis.reliability import (
    ReliabilityBound,
    SoundnessRecord,
    app_reliability,
    observed_fault_impact,
    reliability_bound,
    soundness_check,
)

__all__ = [
    "FlowGraph",
    "FlowNode",
    "build_flow_graph",
    "Finding",
    "LINT_CODES",
    "run_lints",
    "NodeCost",
    "PlacementCostModel",
    "PlacementAnalysis",
    "PlacementDecision",
    "PlacementPlan",
    "PlacementVerification",
    "placement_mechanisms",
    "ResidencyProfile",
    "profile_app",
    "ReliabilityBound",
    "SoundnessRecord",
    "app_reliability",
    "observed_fault_impact",
    "reliability_bound",
    "soundness_check",
    "Suggestion",
    "infer_relaxations",
]
