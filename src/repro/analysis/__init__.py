"""Whole-program approximation-flow analysis (``repro lint`` / ``repro analyze``).

Static analyses layered on top of the checker's facts:

* :mod:`repro.analysis.flowgraph` — the interprocedural
  approximation-flow graph every analysis consumes;
* :mod:`repro.analysis.reliability` — static per-op corruption bounds
  composed from the hardware fault model, plus the dynamic soundness
  check against traced runs;
* :mod:`repro.analysis.lints` — the endorsement audit (AF001–AF005);
* :mod:`repro.analysis.inference` — checker-validated ``@Approx``
  relaxation suggestions;
* :mod:`repro.analysis.report` — text/JSON rendering shared by the CLI.

See ANALYSIS.md for the model and the lint catalog.
"""

from repro.analysis.flowgraph import FlowGraph, FlowNode, build_flow_graph
from repro.analysis.inference import Suggestion, infer_relaxations
from repro.analysis.lints import Finding, LINT_CODES, run_lints
from repro.analysis.reliability import (
    ReliabilityBound,
    SoundnessRecord,
    app_reliability,
    observed_fault_impact,
    reliability_bound,
    soundness_check,
)

__all__ = [
    "FlowGraph",
    "FlowNode",
    "build_flow_graph",
    "Finding",
    "LINT_CODES",
    "run_lints",
    "ReliabilityBound",
    "SoundnessRecord",
    "app_reliability",
    "observed_fault_impact",
    "reliability_bound",
    "soundness_check",
    "Suggestion",
    "infer_relaxations",
]
