"""Profile-guided data placement: approx-vs-precise memory assignment.

EnerJ takes placement as given: whatever the annotator marked
``Approx`` lives in approximate storage.  This pass closes the loop the
ROADMAP asks for — *which* arrays/fields/locals should keep their
approximate placement under a hardware level, chosen from measured
access patterns:

1. every explicit ``Approx[...]`` annotation (including the element
   qualifier inside ``list[Approx[T]]``) becomes a *placement site*,
   mapped to its flow-graph storage node;
2. the static cost model (:mod:`repro.analysis.costmodel`) scores
   assignments: modeled energy (Section 5.4 over static weights, DRAM
   weighted by profiled residency) versus fault exposure (the PR-5
   reliability bound of the QoS output);
3. a greedy optimizer demotes sites to precise — cheapest exposure
   reduction per unit of lost savings first — until the static bound
   of the output meets the threshold; every demotion is applied as a
   *closure* (the approximate annotated sources feeding the site
   through unlaundered paths must demote with it, or the program would
   no longer type-check) and validated by re-running the checker, the
   same contract as PR-5 ``@Approx`` inference;
4. ``verify`` simulates the suggested placement, asserts the PR-9
   acceptability check passes (demoting further — dynamic repair — if
   a fault still corrupts the output), and compares measured energy
   against the all-precise-DRAM placement.

Everything static is deterministic: sorted traversals, seeded profile
runs, canonical tie-breaking.  Two invocations — serial or fanned out —
emit byte-identical plans.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.costmodel import PlacementCostModel
from repro.analysis.flowgraph import FlowGraph, build_flow_graph
from repro.analysis.profile import ResidencyProfile, profile_app
from repro.analysis.reliability import LEVELS, app_output_id
from repro.core.checker import CheckResult, check_modules

__all__ = [
    "DEFAULT_THRESHOLD",
    "PlacementDecision",
    "PlacementPlan",
    "PlacementVerification",
    "PlacementAnalysis",
    "placement_mechanisms",
]

#: Default static-bound threshold the optimizer drives the QoS output
#: under: one percent per-op corruption probability.  Every bundled
#: app's profiled Medium bound sits at or under this, so the default
#: plan preserves the annotated placement at Medium while demanding
#: real demotions at the Aggressive level.
DEFAULT_THRESHOLD = 1e-2

#: Greedy ratio guard against zero energy cost.
_ENERGY_EPS = 1e-12

#: Modules never rewritten (the PRNG must stay exact).
_SKIP_MODULES = ("rand",)


@dataclasses.dataclass(frozen=True)
class _Site:
    """One rewritable ``Approx[...]`` annotation."""

    ident: str
    module: str
    kind: str  # "local" | "param" | "return" | "field"
    name: str
    #: The ``Approx[...]`` subscript expression (for the rewrite).
    approx_node: ast.expr
    #: Its inner type expression (what remains after demotion).
    inner_node: ast.expr

    @property
    def sort_key(self):
        return (
            self.module,
            self.approx_node.lineno,
            self.approx_node.col_offset,
            self.name,
        )


@dataclasses.dataclass(frozen=True)
class PlacementDecision:
    """One site's final assignment in a placement plan."""

    ident: str
    module: str
    line: int
    column: int
    kind: str
    name: str
    mechanism: str
    action: str  # "keep" | "demote"
    #: The site's share of the output bound while approximate.
    exposure: float
    current: str
    proposed: str

    @property
    def sort_key(self):
        return (self.module, self.line, self.column, self.name)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        arrow = (
            f"{self.current} -> {self.proposed}"
            if self.action == "demote"
            else f"{self.current} (kept)"
        )
        return (
            f"{self.module}:{self.line}:{self.column}: {self.action} "
            f"{self.kind} {self.name} [{self.mechanism}]: {arrow}"
        )


@dataclasses.dataclass(frozen=True)
class PlacementPlan:
    """The static placement suggestion for one app at one level."""

    app: str
    level: str
    threshold: float
    output: str
    #: Whether the demotions drove the static bound under the threshold.
    feasible: bool
    #: Whether every applied demotion closure re-checked cleanly.
    validated: bool
    bound_before: float
    bound_after: float
    energy_modeled_before: float
    energy_modeled_after: float
    energy_modeled_all_precise_dram: float
    decisions: Tuple[PlacementDecision, ...]
    profile: dict

    @property
    def demotions(self) -> Tuple[PlacementDecision, ...]:
        return tuple(d for d in self.decisions if d.action == "demote")

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "level": self.level,
            "threshold": self.threshold,
            "output": self.output,
            "feasible": self.feasible,
            "validated": self.validated,
            "bound_before": self.bound_before,
            "bound_after": self.bound_after,
            "energy_modeled_before": self.energy_modeled_before,
            "energy_modeled_after": self.energy_modeled_after,
            "energy_modeled_all_precise_dram": self.energy_modeled_all_precise_dram,
            "decisions": [d.to_dict() for d in self.decisions],
            "profile": self.profile,
        }


@dataclasses.dataclass(frozen=True)
class PlacementVerification:
    """One dynamic validation of a suggested placement."""

    app: str
    level: str
    fault_seed: int
    workload_seed: int
    #: PR-9 acceptability verdict of the final simulated placement.
    accepted: bool
    check: str
    #: Demotions added by dynamic repair (site idents, in order).
    repair_demotions: Tuple[str, ...]
    rounds: int
    energy_measured: float
    energy_measured_all_precise_dram: float
    energy_modeled: float
    energy_modeled_all_precise_dram: float

    @property
    def beats_measured(self) -> bool:
        return self.energy_measured < self.energy_measured_all_precise_dram

    @property
    def beats_modeled(self) -> bool:
        return self.energy_modeled < self.energy_modeled_all_precise_dram

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["repair_demotions"] = list(self.repair_demotions)
        data["beats_measured"] = self.beats_measured
        data["beats_modeled"] = self.beats_modeled
        return data


# ----------------------------------------------------------------------
# Site collection (the inverse of inference.py's candidate scan)
# ----------------------------------------------------------------------
def _approx_subscript(node: Optional[ast.expr]) -> Optional[ast.Subscript]:
    """The ``Approx[...]`` subscript inside an annotation, if any.

    Handles the two bundled idioms: a top-level ``Approx[T]`` and the
    element qualifier ``list[Approx[T]]``.
    """
    if not isinstance(node, ast.Subscript) or not isinstance(node.value, ast.Name):
        return None
    if node.value.id == "Approx":
        return node
    if node.value.id in ("list", "List"):
        return _approx_subscript(node.slice)
    return None


def _rewritable(approx: ast.Subscript) -> bool:
    """Single-line spans only — the textual rewrite's requirement."""
    inner = approx.slice
    return (
        approx.end_lineno == approx.lineno
        and approx.end_col_offset is not None
        and inner.lineno == approx.lineno
        and inner.end_lineno == approx.lineno
        and inner.end_col_offset is not None
    )


def _collect_sites(modules: Dict[str, ast.Module]) -> Dict[str, _Site]:
    """Every rewritable ``Approx`` site, keyed by flow-graph ident."""
    sites: Dict[str, _Site] = {}

    def add(ident: str, module: str, kind: str, name: str, annotation) -> None:
        approx = _approx_subscript(annotation)
        if approx is None or not _rewritable(approx) or ident in sites:
            return
        sites[ident] = _Site(ident, module, kind, name, approx, approx.slice)

    def visit_function(module: str, fn: ast.FunctionDef, qualname: str) -> None:
        for arg in list(fn.args.posonlyargs) + list(fn.args.args):
            if arg.arg == "self":
                continue
            add(
                f"local:{module}.{qualname}.{arg.arg}",
                module,
                "param",
                arg.arg,
                arg.annotation,
            )
        add(f"return:{module}.{qualname}", module, "return", fn.name, fn.returns)
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                add(
                    f"local:{module}.{qualname}.{stmt.target.id}",
                    module,
                    "local",
                    stmt.target.id,
                    stmt.annotation,
                )

    for module in sorted(modules):
        if module in _SKIP_MODULES:
            continue
        tree = modules[module]
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef):
                visit_function(module, stmt, stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, ast.FunctionDef):
                        visit_function(module, item, f"{stmt.name}.{item.name}")
                    elif isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        add(
                            f"field:{stmt.name}.{item.target.id}",
                            module,
                            "field",
                            item.target.id,
                            item.annotation,
                        )
    return sites


def _demote_sources(
    sources: Dict[str, str], sites: Sequence[_Site]
) -> Dict[str, str]:
    """Rewrite each site ``Approx[T]`` -> ``T`` (``list[Approx[T]]`` ->
    ``list[T]``), bottom-up so earlier spans stay valid."""
    by_module: Dict[str, List[_Site]] = {}
    for site in sites:
        by_module.setdefault(site.module, []).append(site)
    mutated = dict(sources)
    for module, module_sites in by_module.items():
        lines = sources[module].splitlines(keepends=True)
        ordered = sorted(
            module_sites,
            key=lambda s: (-s.approx_node.lineno, -s.approx_node.col_offset),
        )
        for site in ordered:
            approx, inner = site.approx_node, site.inner_node
            row = lines[approx.lineno - 1]
            lines[approx.lineno - 1] = (
                row[: approx.col_offset]
                + row[inner.col_offset : inner.end_col_offset]
                + row[approx.end_col_offset :]
            )
        mutated[module] = "".join(lines)
    return mutated


# ----------------------------------------------------------------------
# The analysis driver
# ----------------------------------------------------------------------
class PlacementAnalysis:
    """Placement planning + dynamic verification for one app.

    Construction does all the deterministic setup (check, flow graph,
    residency profile, cost model, site scan); :meth:`plan` runs the
    greedy optimizer; :meth:`verify` simulates the result.
    """

    def __init__(
        self,
        spec,
        level: str = "medium",
        threshold: float = DEFAULT_THRESHOLD,
        workload_seed: int = 0,
        sources: Optional[Dict[str, str]] = None,
        result: Optional[CheckResult] = None,
        graph: Optional[FlowGraph] = None,
        profile: Optional[ResidencyProfile] = None,
    ) -> None:
        from repro.apps import load_sources

        if level not in LEVELS:
            raise ValueError(f"unknown hardware level {level!r}")
        self.spec = spec
        self.level = level
        self.threshold = float(threshold)
        self.workload_seed = workload_seed
        self.config = LEVELS[level]
        self.sources = sources if sources is not None else load_sources(spec)
        if result is None:
            result = check_modules(self.sources)
        if not result.ok:
            raise ValueError(
                f"{spec.name}: sources do not check: {result.codes()}"
            )
        self.result = result
        self.graph = graph if graph is not None else build_flow_graph(result)
        self.profile = (
            profile if profile is not None else profile_app(spec, workload_seed)
        )
        self.output_id = app_output_id(spec)
        self.model = PlacementCostModel(
            self.graph, self.output_id, self.config, self.profile
        )
        self.sites = _collect_sites(result.modules)
        #: Approx array allocations, keyed by the annotated holder sites
        #: that own their element qualifier: rewriting the holder's
        #: annotation precise makes the allocation precise, so the
        #: model demotes the alloc node together with its owners.
        self._alloc_owners: Dict[str, Tuple[str, ...]] = {}
        self._owned_allocs: Dict[str, List[str]] = {}
        for ident in self.graph.node_ids():
            node = self.graph.nodes.get(ident)
            if node is None or node.kind != "alloc" or not node.may_approx:
                continue
            owners = tuple(
                succ for succ in self.graph.successors(ident) if succ in self.sites
            )
            if owners:
                self._alloc_owners[ident] = owners
                for owner in owners:
                    self._owned_allocs.setdefault(owner, []).append(ident)
        #: The diagnostics budget demotions must not exceed.
        self._base_diagnostics = len(result.diagnostics)
        #: Sites whose demotion closure failed checker validation.
        self._infeasible: Set[str] = set()
        self._plan: Optional[PlacementPlan] = None
        self._demoted: FrozenSet[str] = frozenset()

    # ------------------------------------------------------------------
    # Closures and validation
    # ------------------------------------------------------------------
    def demotion_closure(self, root: str) -> FrozenSet[str]:
        """``root`` plus every site feeding it approximate values.

        Backward traversal that stops at precise (laundering) nodes:
        an endorsed or precise-qualified holder delivers precise values
        regardless of placement, so nothing behind it must demote.
        """
        closure = {root}
        frontier = [root]
        seen = {root}
        while frontier:
            ident = frontier.pop()
            for pred in self.graph.predecessors(ident):
                if pred in seen:
                    continue
                seen.add(pred)
                if not self.graph.nodes[pred].may_approx:
                    continue
                if pred in self.sites:
                    closure.add(pred)
                frontier.append(pred)
        return frozenset(closure)

    def _induce(self, demoted_sites: AbstractSet[str]) -> FrozenSet[str]:
        """The model-level assignment for a demoted *site* set.

        Adds every approximate alloc node all of whose owning
        annotation sites are demoted — the rewrite makes those
        allocations precise, so the cost model must stop treating them
        as approximate seeds.
        """
        induced = set(demoted_sites)
        for alloc, owners in self._alloc_owners.items():
            if all(owner in demoted_sites for owner in owners):
                induced.add(alloc)
        return frozenset(induced)

    def validate(self, demoted: FrozenSet[str]) -> bool:
        """Re-check the program with ``demoted`` rewritten precise."""
        if not demoted:
            return True
        mutated = _demote_sources(
            self.sources, [self.sites[i] for i in sorted(demoted)]
        )
        recheck = check_modules(mutated)
        return recheck.ok and len(recheck.diagnostics) <= self._base_diagnostics

    def _all_precise_dram(self) -> FrozenSet[str]:
        """The reference assignment: every DRAM-resident site precise.

        DRAM exposure lives on field nodes and on array allocations;
        the demotable handle for an allocation is the annotated holder
        that owns it, so the roots are dram-mechanism sites plus every
        alloc owner.
        """
        roots: Set[str] = set()
        for ident in sorted(self.sites):
            node = self.graph.nodes.get(ident)
            if node is not None and node.mechanism == "dram":
                roots.add(ident)
        roots.update(self._owned_allocs)
        demoted: Set[str] = set()
        for ident in sorted(roots):
            demoted |= self.demotion_closure(ident)
        if demoted and not self.validate(frozenset(demoted)):
            # Fall back to demoting every site — always expressible.
            demoted = set(self.sites)
        return frozenset(demoted)

    # ------------------------------------------------------------------
    # The greedy optimizer
    # ------------------------------------------------------------------
    def _optimizer_candidates(self) -> List[str]:
        """Sites the optimizer may pick as demotion roots (in-graph,
        may-approx, not purely closure-only returns)."""
        out = []
        for ident in sorted(self.sites):
            node = self.graph.nodes.get(ident)
            if node is None or not node.may_approx:
                continue
            out.append(ident)
        return out

    def _best_demotion(
        self, demoted: FrozenSet[str], current_bound: float, current_energy: float
    ) -> Optional[Tuple[str, FrozenSet[str], float, float]]:
        """The admissible closure with the best exposure/energy ratio.

        Returns ``(root, closure, new_bound, new_energy)`` or ``None``
        when no remaining site reduces the bound.
        """
        best = None
        best_key = None
        for root in self._optimizer_candidates():
            if root in demoted or root in self._infeasible:
                continue
            closure = self.demotion_closure(root) - demoted
            trial = demoted | closure
            new_bound = self.model.bound(self._induce(trial))
            delta_bound = current_bound - new_bound
            if delta_bound <= 0.0:
                continue
            new_energy = self.model.energy(self._induce(trial))
            delta_energy = max(new_energy - current_energy, _ENERGY_EPS)
            key = (-(delta_bound / delta_energy), root)
            if best_key is None or key < best_key:
                best_key = key
                best = (root, frozenset(closure), new_bound, new_energy)
        return best

    def plan(self) -> PlacementPlan:
        """Run the optimizer once (memoised) and return the plan."""
        if self._plan is not None:
            return self._plan
        demoted: FrozenSet[str] = frozenset()
        validated = True
        bound_before = self.model.bound(frozenset())
        energy_before = self.model.energy(frozenset())
        current_bound, current_energy = bound_before, energy_before
        while current_bound > self.threshold:
            step = self._best_demotion(demoted, current_bound, current_energy)
            if step is None:
                break
            root, closure, new_bound, new_energy = step
            trial = demoted | closure
            if not self.validate(trial):
                self._infeasible.add(root)
                continue
            demoted = trial
            current_bound, current_energy = new_bound, new_energy

        apd = self._all_precise_dram()
        cone = (
            set(self.graph.backward([self.output_id]))
            if self.output_id in self.graph.nodes
            else set()
        )
        decisions = []
        for ident in sorted(self.sites):
            site = self.sites[ident]
            node = self.graph.nodes.get(ident)
            mechanism = node.mechanism if node is not None else "none"
            exposure = 0.0
            if node is not None and node.may_approx and ident in cone:
                exposure = self.model.node_cost(ident).exposure
            # An annotated holder that owns array allocations carries
            # their DRAM placement: report it as the dram handle and
            # charge it the allocations' exposure.
            for alloc in self._owned_allocs.get(ident, ()):
                mechanism = "dram"
                if alloc in cone:
                    exposure += self.model.node_cost(alloc).exposure
            current = self._annotation_text(site)
            demote = ident in demoted
            decisions.append(
                PlacementDecision(
                    ident=ident,
                    module=site.module,
                    line=site.approx_node.lineno,
                    column=site.approx_node.col_offset,
                    kind=site.kind,
                    name=site.name,
                    mechanism=mechanism,
                    action="demote" if demote else "keep",
                    exposure=exposure,
                    current=current,
                    proposed=self._inner_text(site) if demote else current,
                )
            )
        self._demoted = demoted
        self._plan = PlacementPlan(
            app=self.spec.name,
            level=self.level,
            threshold=self.threshold,
            output=self.output_id,
            feasible=current_bound <= self.threshold,
            validated=validated,
            bound_before=bound_before,
            bound_after=current_bound,
            energy_modeled_before=energy_before,
            energy_modeled_after=current_energy,
            energy_modeled_all_precise_dram=self.model.energy(self._induce(apd)),
            decisions=tuple(sorted(decisions, key=lambda d: d.sort_key)),
            profile=self.profile.to_dict(),
        )
        return self._plan

    def _annotation_text(self, site: _Site) -> str:
        row = self.sources[site.module].splitlines()[site.approx_node.lineno - 1]
        return row[site.approx_node.col_offset : site.approx_node.end_col_offset]

    def _inner_text(self, site: _Site) -> str:
        row = self.sources[site.module].splitlines()[site.inner_node.lineno - 1]
        return row[site.inner_node.col_offset : site.inner_node.end_col_offset]

    # ------------------------------------------------------------------
    # Dynamic verification
    # ------------------------------------------------------------------
    def _simulate(self, demoted: FrozenSet[str], fault_seed: int):
        """Run the demoted program once; returns (output, stats)."""
        from repro.core.pipeline import compile_program
        from repro.runtime.context import Simulator

        mutated = _demote_sources(
            self.sources, [self.sites[i] for i in sorted(demoted)]
        )
        program = compile_program(mutated)
        with Simulator(self.config, seed=fault_seed) as simulator:
            output = program.call(
                self.spec.entry_module,
                self.spec.entry_function,
                *self.spec.workload_args(self.workload_seed),
            )
        return output, simulator.stats()

    def verify(
        self, fault_seed: int = 1, repair: bool = True
    ) -> PlacementVerification:
        """Simulate the planned placement; repair until acceptable.

        Repair demotes the highest-exposure remaining site (checker
        validated) and re-simulates, until the PR-9 acceptability check
        passes or no demotion remains — the all-precise program passes
        by construction, so repair terminates accepted whenever every
        approximate source is demotable.
        """
        from repro.energy.model import estimate_energy
        from repro.recovery.checks import check_output

        self.plan()
        demoted = self._demoted
        repairs: List[str] = []
        rounds = 0
        output, stats = self._simulate(demoted, fault_seed)
        verdict = check_output(self.spec, self.workload_seed, output)
        while repair and not verdict.ok:
            current_bound = self.model.bound(self._induce(demoted))
            current_energy = self.model.energy(self._induce(demoted))
            step = self._best_demotion(demoted, current_bound, current_energy)
            if step is None:
                break
            root, closure, _, _ = step
            trial = demoted | closure
            if not self.validate(trial):
                self._infeasible.add(root)
                continue
            demoted = trial
            repairs.append(root)
            rounds += 1
            output, stats = self._simulate(demoted, fault_seed)
            verdict = check_output(self.spec, self.workload_seed, output)

        energy = estimate_energy(stats, self.config).total
        apd = self._all_precise_dram()
        _, apd_stats = self._simulate(apd, fault_seed)
        apd_energy = estimate_energy(apd_stats, self.config).total
        return PlacementVerification(
            app=self.spec.name,
            level=self.level,
            fault_seed=fault_seed,
            workload_seed=self.workload_seed,
            accepted=verdict.ok,
            check=verdict.check,
            repair_demotions=tuple(repairs),
            rounds=rounds,
            energy_measured=energy,
            energy_measured_all_precise_dram=apd_energy,
            energy_modeled=self.model.energy(self._induce(demoted)),
            energy_modeled_all_precise_dram=self.model.energy(self._induce(apd)),
        )


def placement_mechanisms(graph: FlowGraph, output_id: str) -> FrozenSet[str]:
    """Tunable mechanisms with approximate state in the output's cone.

    Maps the flow graph's hardware mechanisms onto the tuner's
    :data:`~repro.tuner.search.TUNABLE` names; a mechanism with no
    may-approximate node in the QoS output's backward cone cannot
    change the output (or buy meaningful energy on it), so the tuner
    can prune its upgrade ladder before any simulation.
    """
    mapping = {"dram": "dram", "sram": "sram", "fpu": "float_width", "alu": "timing"}
    active: Set[str] = set()
    if output_id not in graph.nodes:
        return frozenset()
    for ident in graph.backward([output_id]):
        node = graph.nodes[ident]
        if node.may_approx and node.mechanism in mapping:
            active.add(mapping[node.mechanism])
    return frozenset(active)
